//! Cluster-count scaling sweep — the reproduction of the paper's Table 1
//! scalability argument.
//!
//! The paper's core claim (Section 3) is that cluster-level matrix units let
//! a GPU scale compute by adding *clusters* rather than by growing per-core
//! units. This bench sweeps N ∈ {1, 2, 4, 8} clusters on a fixed-size GEMM
//! for every design point — the whole grid sharded across the sweep
//! service's worker pool and memoized in its report cache — with all
//! clusters contending for the single shared L2/DRAM back-end, and reports
//! the two sides of the tradeoff:
//!
//! * total machine cycles fall as clusters are added (compute scales), and
//! * DRAM-contention stall cycles rise (the shared memory system becomes the
//!   bottleneck), which is why utilization decays toward the bandwidth bound.
//!
//! Besides the human-readable table, the run emits `BENCH_clusters.json` (at
//! the workspace root) and enforces the scaling gate on the Virgo design:
//! cycles must *strictly decrease* from N=1 through N=4 while contention
//! stalls *increase* — the quantitative form of the scaling-vs-bandwidth
//! tradeoff.

use virgo::DesignKind;
use virgo_bench::{print_cache_summary, print_table, sweep_service};
use virgo_kernels::GemmShape;
use virgo_sweep::{SweepOutcome, SweepPoint};

/// Cluster counts swept, per the ISSUE/Table 1 scaling study.
const CLUSTER_COUNTS: [u32; 4] = [1, 2, 4, 8];

struct Point {
    design: DesignKind,
    clusters: u32,
    cycles: u64,
    dram_stall_cycles: u64,
    utilization_pct: f64,
    energy_mj: f64,
    energy_per_mac_pj: f64,
}

impl From<&SweepOutcome> for Point {
    fn from(outcome: &SweepOutcome) -> Point {
        let report = &outcome.report;
        let macs = report.performed_macs().max(1);
        Point {
            design: outcome.point.design,
            clusters: outcome.point.clusters,
            cycles: report.cycles().get(),
            dram_stall_cycles: report.dram_contention_stall_cycles(),
            utilization_pct: report.mac_utilization().as_percent(),
            energy_mj: report.total_energy_mj(),
            energy_per_mac_pj: report.total_energy_mj() * 1e9 / macs as f64,
        }
    }
}

fn main() {
    // A fixed-size problem: the whole point is to watch the same work split
    // across more clusters. 512³ gives every cluster real tile traffic at
    // N=8 while keeping the sweep quick.
    let shape = std::env::var("VIRGO_CLUSTER_GEMM")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(GemmShape::square)
        .unwrap_or(GemmShape::square(512));

    // The full design × cluster-count grid, sharded across the sweep
    // service's worker pool (and memoized, so a re-run answers from cache).
    let grid: Vec<SweepPoint> = DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            CLUSTER_COUNTS
                .into_iter()
                .map(move |clusters| SweepPoint::gemm(design, shape).with_clusters(clusters))
        })
        .collect();
    let outcomes = sweep_service().sweep_streaming(&grid, |outcome| {
        eprintln!(
            "  finished {} in {} cycles{}",
            outcome.point,
            outcome.report.cycles().get(),
            if outcome.from_cache { " (cached)" } else { "" }
        );
    });
    let points: Vec<Point> = outcomes.iter().map(Point::from).collect();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.design.to_string(),
                p.clusters.to_string(),
                p.cycles.to_string(),
                p.dram_stall_cycles.to_string(),
                format!("{:.1}%", p.utilization_pct),
                format!("{:.3}", p.energy_mj),
                format!("{:.2}", p.energy_per_mac_pj),
            ]
        })
        .collect();
    print_table(
        &format!("Cluster scaling on {shape} GEMM (shared L2/DRAM)"),
        &[
            "design",
            "clusters",
            "cycles",
            "dram stall cyc",
            "MAC util",
            "energy mJ",
            "pJ/MAC",
        ],
        &rows,
    );

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"design\": \"{}\", \"clusters\": {}, \"cycles\": {}, ",
                    "\"dram_contention_stall_cycles\": {}, \"mac_utilization_percent\": {:.3}, ",
                    "\"energy_mj\": {:.6}, \"energy_per_mac_pj\": {:.4}}}"
                ),
                p.design,
                p.clusters,
                p.cycles,
                p.dram_stall_cycles,
                p.utilization_pct,
                p.energy_mj,
                p.energy_per_mac_pj,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"clusters_scaling\",\n  \"gemm\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
        shape,
        entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_clusters.json");
    std::fs::write(path, &json).expect("write BENCH_clusters.json");
    println!("\nwrote {path}");

    // ---- Scaling gate (Virgo design, N = 1 → 2 → 4) ------------------------
    // Cycles strictly decrease while DRAM-contention stalls increase: adding
    // clusters buys real speedup and the cost shows up on the shared channel.
    let virgo: Vec<&Point> = points
        .iter()
        .filter(|p| p.design == DesignKind::Virgo && p.clusters <= 4)
        .collect();
    for pair in virgo.windows(2) {
        assert!(
            pair[1].cycles < pair[0].cycles,
            "cycles must strictly decrease with clusters: N={} took {} >= N={}'s {}",
            pair[1].clusters,
            pair[1].cycles,
            pair[0].clusters,
            pair[0].cycles,
        );
        assert!(
            pair[1].dram_stall_cycles > pair[0].dram_stall_cycles,
            "DRAM contention must grow with clusters: N={} stalled {} <= N={}'s {}",
            pair[1].clusters,
            pair[1].dram_stall_cycles,
            pair[0].clusters,
            pair[0].dram_stall_cycles,
        );
    }
    let first = virgo.first().expect("sweep is non-empty");
    let last = virgo.last().expect("sweep is non-empty");
    println!(
        "Virgo N=1 -> N=4: {:.2}x speedup, contention stalls {} -> {} — gate passed",
        first.cycles as f64 / last.cycles as f64,
        first.dram_stall_cycles,
        last.dram_stall_cycles,
    );
    print_cache_summary();
}
