//! Cluster-count scaling sweep — the reproduction of the paper's Table 1
//! scalability argument, plus the DRAM channel-scaling axis that pushes the
//! resulting bandwidth wall out.
//!
//! The paper's core claim (Section 3) is that cluster-level matrix units let
//! a GPU scale compute by adding *clusters* rather than by growing per-core
//! units. This bench sweeps N ∈ {1, 2, 4, 8} clusters on a fixed-size GEMM
//! for every design point — the whole grid sharded across the sweep
//! service's worker pool and memoized in its report cache — with all
//! clusters contending for the shared L2/DRAM back-end, and reports the two
//! sides of the tradeoff:
//!
//! * total machine cycles fall as clusters are added (compute scales), and
//! * DRAM-contention stall cycles rise (the shared memory system becomes the
//!   bottleneck), which is why utilization decays toward the bandwidth bound.
//!
//! A second axis then sweeps the Virgo design over `dram_channels ∈ {1, 2,
//! 4}` address-interleaved DRAM channels at every cluster count: more
//! channels drain the request queues faster, so the N=8 contention wall
//! recedes and utilization recovers toward the compute bound.
//!
//! A third, tall-skinny axis (1920×192×256 on Virgo) exercises the
//! per-cluster load-imbalance metric: its 45 output tiles never divide
//! evenly across the swept cluster counts, so the per-cluster active-cycle
//! spread (`max/mean`) becomes visible where the square shape's even tile
//! grid pins it at 1.0.
//!
//! Besides the human-readable tables, the run emits `BENCH_clusters.json`
//! (at the workspace root) and enforces two gates:
//!
//! * the scaling gate on the Virgo design — cycles must *strictly decrease*
//!   from N=1 through N=4 while contention stalls *increase*, and
//! * the channel gate at N=8 — Virgo's total `dram_stall_cycles` must
//!   *strictly decrease* as the channel count grows 1 → 2 → 4.

use virgo::DesignKind;
use virgo_bench::{print_cache_summary, print_table, sweep_service};
use virgo_kernels::GemmShape;
use virgo_sweep::{Query, SweepOutcome};

/// Cluster counts swept, per the ISSUE/Table 1 scaling study.
const CLUSTER_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// DRAM channel counts swept on the Virgo design.
const DRAM_CHANNELS: [u32; 3] = [1, 2, 4];

struct Point {
    design: DesignKind,
    clusters: u32,
    dram_channels: u32,
    cycles: u64,
    dram_stall_cycles: u64,
    utilization_pct: f64,
    active_spread: f64,
    energy_mj: f64,
    energy_per_mac_pj: f64,
}

impl From<&SweepOutcome> for Point {
    fn from(outcome: &SweepOutcome) -> Point {
        let report = &outcome.report;
        let macs = report.performed_macs().max(1);
        let point = outcome.point().expect("built from a design-space query");
        Point {
            design: point.design,
            clusters: point.clusters,
            dram_channels: point.dram_channels,
            cycles: report.cycles().get(),
            dram_stall_cycles: report.dram_contention_stall_cycles(),
            utilization_pct: report.mac_utilization().as_percent(),
            active_spread: report.load_imbalance().active_spread,
            energy_mj: report.total_energy_mj(),
            energy_per_mac_pj: report.total_energy_mj() * 1e9 / macs as f64,
        }
    }
}

impl Point {
    fn row(&self) -> Vec<String> {
        vec![
            self.design.to_string(),
            self.clusters.to_string(),
            self.dram_channels.to_string(),
            self.cycles.to_string(),
            self.dram_stall_cycles.to_string(),
            format!("{:.1}%", self.utilization_pct),
            format!("{:.3}", self.active_spread),
            format!("{:.3}", self.energy_mj),
            format!("{:.2}", self.energy_per_mac_pj),
        ]
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"design\": \"{}\", \"clusters\": {}, \"dram_channels\": {}, ",
                "\"cycles\": {}, \"dram_contention_stall_cycles\": {}, ",
                "\"mac_utilization_percent\": {:.3}, \"active_spread\": {:.4}, ",
                "\"energy_mj\": {:.6}, \"energy_per_mac_pj\": {:.4}}}"
            ),
            self.design,
            self.clusters,
            self.dram_channels,
            self.cycles,
            self.dram_stall_cycles,
            self.utilization_pct,
            self.active_spread,
            self.energy_mj,
            self.energy_per_mac_pj,
        )
    }
}

const HEADERS: [&str; 9] = [
    "design",
    "clusters",
    "dram ch",
    "cycles",
    "dram stall cyc",
    "MAC util",
    "act spread",
    "energy mJ",
    "pJ/MAC",
];

fn main() {
    // A fixed-size problem: the whole point is to watch the same work split
    // across more clusters. 512³ gives every cluster real tile traffic at
    // N=8 while keeping the sweep quick.
    let shape = std::env::var("VIRGO_CLUSTER_GEMM")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(GemmShape::square)
        .unwrap_or(GemmShape::square(512));

    // The full design × cluster-count grid at one DRAM channel, followed by
    // the Virgo × channel-count grid for channels > 1, all sharded across
    // the sweep service's worker pool. The channels=1 rows of the second
    // axis are exactly the design grid's Virgo points, so they are not
    // re-submitted (a multi-worker pool could otherwise simulate a
    // duplicate point twice before the first fills the cache).
    let grid: Vec<Query> = DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            CLUSTER_COUNTS
                .into_iter()
                .map(move |clusters| Query::new(design, shape).clusters(clusters))
        })
        .chain(
            DRAM_CHANNELS
                .into_iter()
                .filter(|&channels| channels > 1)
                .flat_map(|channels| {
                    CLUSTER_COUNTS.into_iter().map(move |clusters| {
                        Query::new(DesignKind::Virgo, shape)
                            .clusters(clusters)
                            .dram_channels(channels)
                    })
                }),
        )
        .collect();
    let outcomes = sweep_service().run_streaming(&grid, |outcome| {
        eprintln!(
            "  finished {} in {} cycles{}",
            outcome.query,
            outcome.report.cycles().get(),
            if outcome.from_cache { " (cached)" } else { "" }
        );
    });
    let points: Vec<Point> = outcomes.iter().map(Point::from).collect();
    let design_grid_len = DesignKind::all().len() * CLUSTER_COUNTS.len();
    let (design_points, multi_channel_points) = points.split_at(design_grid_len);

    // The channel axis as reported: the design grid's Virgo rows (channels
    // = 1, DesignKind::all puts Virgo last so they stay in cluster order)
    // followed by the channels > 1 rows.
    let channel_points: Vec<&Point> = design_points
        .iter()
        .filter(|p| p.design == DesignKind::Virgo)
        .chain(multi_channel_points.iter())
        .collect();

    print_table(
        &format!("Cluster scaling on {shape} GEMM (shared L2/DRAM, 1 channel)"),
        &HEADERS,
        &design_points.iter().map(Point::row).collect::<Vec<_>>(),
    );
    print_table(
        &format!("DRAM channel scaling on {shape} GEMM (Virgo)"),
        &HEADERS,
        &channel_points.iter().map(|p| p.row()).collect::<Vec<_>>(),
    );

    // ---- Tall-skinny axis: a shape that stresses the imbalance metric ------
    // 1920×192×256 has 15×3 = 45 output tiles: no swept cluster count
    // divides 45, so the contiguous partition hands some clusters an extra
    // tile and the per-cluster active-cycle spread (max/mean) separates from
    // 1.0 — where the square shape's 64-tile grid divides evenly everywhere
    // and pins the spread at exactly 1.0.
    let tall = GemmShape {
        m: 1920,
        n: 192,
        k: 256,
    };
    let tall_grid: Vec<Query> = CLUSTER_COUNTS
        .into_iter()
        .map(|clusters| Query::new(DesignKind::Virgo, tall).clusters(clusters))
        .collect();
    let tall_outcomes = sweep_service().run_streaming(&tall_grid, |outcome| {
        eprintln!(
            "  finished {} in {} cycles{}",
            outcome.query,
            outcome.report.cycles().get(),
            if outcome.from_cache { " (cached)" } else { "" }
        );
    });
    let tall_points: Vec<Point> = tall_outcomes.iter().map(Point::from).collect();
    print_table(
        &format!("Tall-skinny {tall} GEMM (Virgo): per-cluster load imbalance"),
        &HEADERS,
        &tall_points.iter().map(Point::row).collect::<Vec<_>>(),
    );
    for p in &tall_points {
        // 45 tiles never divide evenly across N > 1 clusters, so the metric
        // must register the uneven deal; N = 1 is trivially balanced.
        if p.clusters > 1 {
            assert!(
                p.active_spread > 1.0,
                "N={}: active spread {} must expose the uneven tile deal",
                p.clusters,
                p.active_spread,
            );
        } else {
            assert_eq!(p.active_spread, 1.0, "N=1 is one cluster, spread is 1");
        }
    }

    let entries: Vec<String> = points.iter().map(Point::json).collect();
    let tall_entries: Vec<String> = tall_points.iter().map(Point::json).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"clusters_scaling\",\n  \"gemm\": \"{}\",\n",
            "  \"points\": [\n{}\n  ],\n",
            "  \"tall_skinny_gemm\": \"{}\",\n  \"tall_skinny_points\": [\n{}\n  ]\n}}\n"
        ),
        shape,
        entries.join(",\n"),
        tall,
        tall_entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_clusters.json");
    std::fs::write(path, &json).expect("write BENCH_clusters.json");
    println!("\nwrote {path}");

    // ---- Scaling gate (Virgo design, N = 1 → 2 → 4) ------------------------
    // Cycles strictly decrease while DRAM-contention stalls increase: adding
    // clusters buys real speedup and the cost shows up on the shared channel.
    let virgo: Vec<&Point> = design_points
        .iter()
        .filter(|p| p.design == DesignKind::Virgo && p.clusters <= 4)
        .collect();
    for pair in virgo.windows(2) {
        assert!(
            pair[1].cycles < pair[0].cycles,
            "cycles must strictly decrease with clusters: N={} took {} >= N={}'s {}",
            pair[1].clusters,
            pair[1].cycles,
            pair[0].clusters,
            pair[0].cycles,
        );
        assert!(
            pair[1].dram_stall_cycles > pair[0].dram_stall_cycles,
            "DRAM contention must grow with clusters: N={} stalled {} <= N={}'s {}",
            pair[1].clusters,
            pair[1].dram_stall_cycles,
            pair[0].clusters,
            pair[0].dram_stall_cycles,
        );
    }
    let first = virgo.first().expect("sweep is non-empty");
    let last = virgo.last().expect("sweep is non-empty");
    println!(
        "Virgo N=1 -> N=4: {:.2}x speedup, contention stalls {} -> {} — gate passed",
        first.cycles as f64 / last.cycles as f64,
        first.dram_stall_cycles,
        last.dram_stall_cycles,
    );

    // ---- Channel gate (Virgo design, N = 8, channels 1 → 2 → 4) -----------
    // Interleaving the back-end over more channels must strictly drain the
    // N=8 contention wall the first gate just demonstrated.
    let wall: Vec<&Point> = channel_points
        .iter()
        .copied()
        .filter(|p| p.clusters == 8)
        .collect();
    assert_eq!(
        wall.len(),
        DRAM_CHANNELS.len(),
        "one N=8 point per channel count"
    );
    for pair in wall.windows(2) {
        assert!(
            pair[1].dram_stall_cycles < pair[0].dram_stall_cycles,
            "N=8 contention must strictly drain with channels: ch={} stalled {} >= ch={}'s {}",
            pair[1].dram_channels,
            pair[1].dram_stall_cycles,
            pair[0].dram_channels,
            pair[0].dram_stall_cycles,
        );
    }
    println!(
        "Virgo N=8 channels 1 -> 4: contention stalls {} -> {}, utilization {:.1}% -> {:.1}% — gate passed",
        wall.first().expect("non-empty").dram_stall_cycles,
        wall.last().expect("non-empty").dram_stall_cycles,
        wall.first().expect("non-empty").utilization_pct,
        wall.last().expect("non-empty").utilization_pct,
    );
    print_cache_summary();
}
