//! Inter-cluster DSM scaling study — the producer-consumer split-K GEMM on
//! N ∈ {2, 4, 8} clusters, with the partial-sum reduction either crossing
//! the DSM fabric (direct scratchpad-to-scratchpad pushes) or taking the
//! DRAM round trip (spill to global memory, reload on the consumer).
//!
//! The run prints the A/B table, emits `BENCH_dsm.json` at the workspace
//! root and enforces the DSM gate: at N ≥ 4 the DSM path must move
//! *strictly* fewer DRAM bytes **and** finish in strictly fewer total cycles
//! than its DRAM-path twin — if keeping the reduction on chip ever stops
//! paying at scale, the model (or the fabric's arbitration) has regressed.

use virgo::{Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::{print_table, MAX_CYCLES};
use virgo_kernels::{build_split_k_gemm, GemmShape};

/// Cluster counts swept.
const CLUSTER_COUNTS: [u32; 3] = [2, 4, 8];

struct Point {
    clusters: u32,
    dsm: bool,
    cycles: u64,
    dram_bytes: u64,
    dram_stall_cycles: u64,
    dsm_bytes: u64,
    dsm_stall_cycles: u64,
    dsm_hop_flits: u64,
    utilization_pct: f64,
    energy_mj: f64,
}

impl Point {
    fn of(clusters: u32, dsm: bool, report: &SimReport) -> Point {
        Point {
            clusters,
            dsm,
            cycles: report.cycles().get(),
            dram_bytes: report.dram_bytes(),
            dram_stall_cycles: report.dram_contention_stall_cycles(),
            dsm_bytes: report.dsm_bytes(),
            dsm_stall_cycles: report.dsm_stats().stall_cycles,
            dsm_hop_flits: report.dsm_stats().hop_flits,
            utilization_pct: report.mac_utilization().as_percent(),
            energy_mj: report.total_energy_mj(),
        }
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.clusters.to_string(),
            if self.dsm { "dsm" } else { "dram" }.to_string(),
            self.cycles.to_string(),
            self.dram_bytes.to_string(),
            self.dram_stall_cycles.to_string(),
            self.dsm_bytes.to_string(),
            self.dsm_stall_cycles.to_string(),
            format!("{:.1}%", self.utilization_pct),
            format!("{:.3}", self.energy_mj),
        ]
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"clusters\": {}, \"dsm\": {}, \"cycles\": {}, ",
                "\"dram_bytes\": {}, \"dram_contention_stall_cycles\": {}, ",
                "\"dsm_bytes\": {}, \"dsm_stall_cycles\": {}, \"dsm_hop_flits\": {}, ",
                "\"mac_utilization_percent\": {:.3}, \"energy_mj\": {:.6}}}"
            ),
            self.clusters,
            self.dsm,
            self.cycles,
            self.dram_bytes,
            self.dram_stall_cycles,
            self.dsm_bytes,
            self.dsm_stall_cycles,
            self.dsm_hop_flits,
            self.utilization_pct,
            self.energy_mj,
        )
    }
}

const HEADERS: [&str; 9] = [
    "clusters",
    "path",
    "cycles",
    "dram bytes",
    "dram stall cyc",
    "dsm bytes",
    "dsm stall cyc",
    "MAC util",
    "energy mJ",
];

fn main() {
    // A K-heavy shape: 2×4 output tiles over 8 K-tiles, so every cluster
    // count in the sweep gets a non-empty K-slice and the reduction carries
    // real tile traffic. Overridable for smoke runs; K is clamped so even
    // the smallest legal override (128) keeps the N=8 point's 8 K-tiles.
    let max_clusters = *CLUSTER_COUNTS.iter().max().expect("non-empty sweep");
    let shape = std::env::var("VIRGO_SPLITK_GEMM")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(|n| GemmShape {
            m: n,
            n,
            k: (4 * n).max(128 * max_clusters),
        })
        .unwrap_or(GemmShape {
            m: 256,
            n: 256,
            k: 1024,
        });

    let mut points = Vec::new();
    for clusters in CLUSTER_COUNTS {
        for dsm in [false, true] {
            let mut config = GpuConfig::virgo().with_clusters(clusters);
            if dsm {
                config = config.with_dsm_enabled();
            }
            let kernel = build_split_k_gemm(&config, shape);
            let report = Gpu::new(config)
                .run_with_mode(&kernel, MAX_CYCLES, SimMode::FastForward)
                .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name));
            eprintln!(
                "  finished {} in {} cycles",
                kernel.info.name,
                report.cycles().get()
            );
            points.push(Point::of(clusters, dsm, &report));
        }
    }

    print_table(
        &format!("Split-K GEMM {shape}: DSM fabric vs DRAM round trip"),
        &HEADERS,
        &points.iter().map(Point::row).collect::<Vec<_>>(),
    );

    let entries: Vec<String> = points.iter().map(Point::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"dsm_scaling\",\n  \"gemm\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
        shape,
        entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsm.json");
    std::fs::write(path, &json).expect("write BENCH_dsm.json");
    println!("\nwrote {path}");

    // ---- DSM gate (N >= 4): strictly less DRAM traffic AND fewer cycles ----
    for clusters in CLUSTER_COUNTS.into_iter().filter(|&n| n >= 4) {
        let find = |dsm: bool| {
            points
                .iter()
                .find(|p| p.clusters == clusters && p.dsm == dsm)
                .expect("swept point")
        };
        let dram = find(false);
        let dsm = find(true);
        assert!(
            dsm.dram_bytes < dram.dram_bytes,
            "N={clusters}: DSM path must move strictly fewer DRAM bytes \
             ({} >= {})",
            dsm.dram_bytes,
            dram.dram_bytes,
        );
        assert!(
            dsm.cycles < dram.cycles,
            "N={clusters}: DSM path must finish in strictly fewer cycles \
             ({} >= {})",
            dsm.cycles,
            dram.cycles,
        );
        println!(
            "N={clusters}: DSM saves {:.1}% DRAM bytes ({} -> {}), {:.2}x cycles ({} -> {}) — gate passed",
            100.0 * (dram.dram_bytes - dsm.dram_bytes) as f64 / dram.dram_bytes as f64,
            dram.dram_bytes,
            dsm.dram_bytes,
            dram.cycles as f64 / dsm.cycles as f64,
            dram.cycles,
            dsm.cycles,
        );
    }
}
