//! Inter-cluster DSM scaling study — the producer-consumer split-K GEMM on
//! N ∈ {2, 4, 8} clusters, with the partial-sum reduction either crossing
//! the DSM fabric (direct scratchpad-to-scratchpad pushes) or taking the
//! DRAM round trip (spill to global memory, reload on the consumer).
//!
//! Two sweeps run back to back:
//!
//! * the historical **contiguous** sweep (single consumer, cluster 0 owns
//!   every output tile) — the all-to-one baseline, unchanged so its numbers
//!   stay comparable release over release;
//! * the **rotated** sweep — ownership of the output tiles rotates over all
//!   N clusters, so the partial-tile traffic spreads across every DSM
//!   ingress link instead of funnelling into one port, plus a joint
//!   `dsm x dram_channels` sweep at N = 8 that shows the rotation is what
//!   unlocks the extra DRAM bandwidth.
//!
//! The table surfaces the per-link [`DsmLinkStats`] max/mean utilization and
//! the per-cluster ingress spread, so a hotspot (one link saturated, the
//! rest idle) is visible straight from the CI log.
//!
//! The run prints the A/B tables, emits `BENCH_dsm.json` at the workspace
//! root and enforces three gates:
//!
//! * at N ≥ 4 the contiguous DSM path must move *strictly* fewer DRAM bytes
//!   **and** finish in strictly fewer total cycles than its DRAM-path twin;
//! * at N ≥ 4 the rotated DSM path must finish in strictly fewer cycles
//!   than the contiguous (single-consumer) DSM path on the same machine;
//! * at N = 8 the rotated DSM path must reach ≥ 45% MAC utilization at some
//!   swept DRAM channel count — roughly 2x the all-to-one baseline.

use virgo::{Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::{print_table, MAX_CYCLES};
use virgo_isa::PartitionStrategy;
use virgo_kernels::{build_split_k_gemm, build_split_k_gemm_with_strategy, GemmShape};

/// Cluster counts swept.
const CLUSTER_COUNTS: [u32; 3] = [2, 4, 8];

/// DRAM channel counts for the joint `dsm x dram_channels` sweep at N = 8.
/// Channel count 1 is already covered by the per-N sweeps.
const JOINT_DRAM_CHANNELS: [u32; 2] = [2, 4];

/// The cluster count the joint sweep and the utilization gate run at.
const JOINT_CLUSTERS: u32 = 8;

/// The rotated N = 8 DSM path must reach this MAC utilization somewhere in
/// the joint sweep (the contiguous all-to-one baseline peaks at ~22.7%).
const ROTATED_UTILIZATION_GATE_PCT: f64 = 45.0;

struct Point {
    clusters: u32,
    dsm: bool,
    strategy: PartitionStrategy,
    dram_channels: u32,
    cycles: u64,
    dram_bytes: u64,
    dram_stall_cycles: u64,
    dsm_bytes: u64,
    dsm_stall_cycles: u64,
    dsm_hop_flits: u64,
    utilization_pct: f64,
    energy_mj: f64,
    link_max_util_pct: f64,
    link_mean_util_pct: f64,
    active_spread: f64,
    dsm_ingress_spread: f64,
}

impl Point {
    fn of(
        clusters: u32,
        dsm: bool,
        strategy: PartitionStrategy,
        dram_channels: u32,
        link_bandwidth: u64,
        report: &SimReport,
    ) -> Point {
        // Per-link utilization: ingress bytes over the link's byte capacity
        // for the whole run. The max/mean pair makes a hotspot legible — the
        // all-to-one reduction shows max = N x mean.
        let capacity = (report.cycles().get() * link_bandwidth) as f64;
        let utils: Vec<f64> = report
            .dsm_link_stats()
            .iter()
            .map(|l| {
                if capacity > 0.0 {
                    100.0 * l.bytes as f64 / capacity
                } else {
                    0.0
                }
            })
            .collect();
        let link_max = utils.iter().cloned().fold(0.0f64, f64::max);
        let link_mean = if utils.is_empty() {
            0.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        };
        let imbalance = report.load_imbalance();
        Point {
            clusters,
            dsm,
            strategy,
            dram_channels,
            cycles: report.cycles().get(),
            dram_bytes: report.dram_bytes(),
            dram_stall_cycles: report.dram_contention_stall_cycles(),
            dsm_bytes: report.dsm_bytes(),
            dsm_stall_cycles: report.dsm_stats().stall_cycles,
            dsm_hop_flits: report.dsm_stats().hop_flits,
            utilization_pct: report.mac_utilization().as_percent(),
            energy_mj: report.total_energy_mj(),
            link_max_util_pct: link_max,
            link_mean_util_pct: link_mean,
            active_spread: imbalance.active_spread,
            dsm_ingress_spread: imbalance.dsm_ingress_spread,
        }
    }

    fn strategy_tag(&self) -> &'static str {
        match self.strategy {
            PartitionStrategy::Contiguous => "contig",
            PartitionStrategy::Interleaved => "int",
            PartitionStrategy::Rotated => "rot",
        }
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.clusters.to_string(),
            self.strategy_tag().to_string(),
            if self.dsm { "dsm" } else { "dram" }.to_string(),
            self.dram_channels.to_string(),
            self.cycles.to_string(),
            self.dram_bytes.to_string(),
            self.dram_stall_cycles.to_string(),
            self.dsm_bytes.to_string(),
            format!("{:.1}%", self.link_max_util_pct),
            format!("{:.1}%", self.link_mean_util_pct),
            format!("{:.2}", self.dsm_ingress_spread),
            format!("{:.1}%", self.utilization_pct),
            format!("{:.3}", self.energy_mj),
        ]
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"clusters\": {}, \"dsm\": {}, \"strategy\": \"{}\", ",
                "\"dram_channels\": {}, \"cycles\": {}, ",
                "\"dram_bytes\": {}, \"dram_contention_stall_cycles\": {}, ",
                "\"dsm_bytes\": {}, \"dsm_stall_cycles\": {}, \"dsm_hop_flits\": {}, ",
                "\"dsm_link_max_util_percent\": {:.3}, ",
                "\"dsm_link_mean_util_percent\": {:.3}, ",
                "\"active_spread\": {:.4}, \"dsm_ingress_spread\": {:.4}, ",
                "\"mac_utilization_percent\": {:.3}, \"energy_mj\": {:.6}}}"
            ),
            self.clusters,
            self.dsm,
            self.strategy_tag(),
            self.dram_channels,
            self.cycles,
            self.dram_bytes,
            self.dram_stall_cycles,
            self.dsm_bytes,
            self.dsm_stall_cycles,
            self.dsm_hop_flits,
            self.link_max_util_pct,
            self.link_mean_util_pct,
            self.active_spread,
            self.dsm_ingress_spread,
            self.utilization_pct,
            self.energy_mj,
        )
    }
}

const HEADERS: [&str; 13] = [
    "clusters",
    "strat",
    "path",
    "dram ch",
    "cycles",
    "dram bytes",
    "dram stall cyc",
    "dsm bytes",
    "link max",
    "link mean",
    "ingress spread",
    "MAC util",
    "energy mJ",
];

fn main() {
    // A K-heavy shape: 2×4 output tiles over 8 K-tiles, so every cluster
    // count in the sweep gets a non-empty K-slice and the reduction carries
    // real tile traffic. Overridable for smoke runs; K is clamped so even
    // the smallest legal override (128) keeps the N=8 point's 8 K-tiles.
    let max_clusters = *CLUSTER_COUNTS.iter().max().expect("non-empty sweep");
    let shape = std::env::var("VIRGO_SPLITK_GEMM")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(|n| GemmShape {
            m: n,
            n,
            k: (4 * n).max(128 * max_clusters),
        })
        .unwrap_or(GemmShape {
            m: 256,
            n: 256,
            k: 1024,
        });

    let run_point = |clusters: u32, dsm: bool, strategy: PartitionStrategy, channels: u32| {
        let mut config = GpuConfig::virgo()
            .with_clusters(clusters)
            .with_dram_channels(channels);
        if dsm {
            config = config.with_dsm_enabled();
        }
        let kernel = match strategy {
            PartitionStrategy::Contiguous => build_split_k_gemm(&config, shape),
            other => build_split_k_gemm_with_strategy(&config, shape, other),
        };
        let link_bandwidth = config.dsm.link_bandwidth;
        let report = Gpu::new(config)
            .run_with_mode(&kernel, MAX_CYCLES, SimMode::FastForward)
            .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name));
        eprintln!(
            "  finished {} (ch={channels}) in {} cycles",
            kernel.info.name,
            report.cycles().get()
        );
        Point::of(clusters, dsm, strategy, channels, link_bandwidth, &report)
    };

    // ---- Sweep 1: the historical contiguous single-consumer A/B ----
    let mut points = Vec::new();
    for clusters in CLUSTER_COUNTS {
        for dsm in [false, true] {
            points.push(run_point(clusters, dsm, PartitionStrategy::Contiguous, 1));
        }
    }

    // ---- Sweep 2: rotated ownership on the DSM path, per cluster count ----
    for clusters in CLUSTER_COUNTS {
        points.push(run_point(clusters, true, PartitionStrategy::Rotated, 1));
    }

    // ---- Sweep 3: joint dsm x dram_channels at N = 8, both strategies ----
    // The rotation removes the single-ingress-port ceiling, so extra DRAM
    // channels translate into utilization; on the contiguous kernel they
    // mostly cannot.
    for channels in JOINT_DRAM_CHANNELS {
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::Rotated] {
            points.push(run_point(JOINT_CLUSTERS, true, strategy, channels));
        }
    }

    print_table(
        &format!("Split-K GEMM {shape}: DSM fabric vs DRAM round trip, contiguous vs rotated"),
        &HEADERS,
        &points.iter().map(Point::row).collect::<Vec<_>>(),
    );

    let entries: Vec<String> = points.iter().map(Point::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"dsm_scaling\",\n  \"gemm\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
        shape,
        entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsm.json");
    std::fs::write(path, &json).expect("write BENCH_dsm.json");
    println!("\nwrote {path}");

    let find = |clusters: u32, dsm: bool, strategy: PartitionStrategy, channels: u32| {
        points
            .iter()
            .find(|p| {
                p.clusters == clusters
                    && p.dsm == dsm
                    && p.strategy == strategy
                    && p.dram_channels == channels
            })
            .expect("swept point")
    };

    // ---- DSM gate (N >= 4): strictly less DRAM traffic AND fewer cycles ----
    for clusters in CLUSTER_COUNTS.into_iter().filter(|&n| n >= 4) {
        let dram = find(clusters, false, PartitionStrategy::Contiguous, 1);
        let dsm = find(clusters, true, PartitionStrategy::Contiguous, 1);
        assert!(
            dsm.dram_bytes < dram.dram_bytes,
            "N={clusters}: DSM path must move strictly fewer DRAM bytes \
             ({} >= {})",
            dsm.dram_bytes,
            dram.dram_bytes,
        );
        assert!(
            dsm.cycles < dram.cycles,
            "N={clusters}: DSM path must finish in strictly fewer cycles \
             ({} >= {})",
            dsm.cycles,
            dram.cycles,
        );
        println!(
            "N={clusters}: DSM saves {:.1}% DRAM bytes ({} -> {}), {:.2}x cycles ({} -> {}) — gate passed",
            100.0 * (dram.dram_bytes - dsm.dram_bytes) as f64 / dram.dram_bytes as f64,
            dram.dram_bytes,
            dsm.dram_bytes,
            dram.cycles as f64 / dsm.cycles as f64,
            dram.cycles,
            dsm.cycles,
        );
    }

    // ---- Rotation gate (N >= 4): distributing the reduction must pay ----
    for clusters in CLUSTER_COUNTS.into_iter().filter(|&n| n >= 4) {
        let contiguous = find(clusters, true, PartitionStrategy::Contiguous, 1);
        let rotated = find(clusters, true, PartitionStrategy::Rotated, 1);
        assert!(
            rotated.cycles < contiguous.cycles,
            "N={clusters}: rotated reduction must finish in strictly fewer \
             cycles than the single-consumer DSM path ({} >= {})",
            rotated.cycles,
            contiguous.cycles,
        );
        println!(
            "N={clusters}: rotation {:.2}x cycles ({} -> {}), ingress spread {:.2} -> {:.2} — gate passed",
            contiguous.cycles as f64 / rotated.cycles as f64,
            contiguous.cycles,
            rotated.cycles,
            contiguous.dsm_ingress_spread,
            rotated.dsm_ingress_spread,
        );
    }

    // ---- Utilization gate: rotated N = 8 must clear 45% somewhere in the
    // joint sweep (the all-to-one baseline is DRAM- and port-bound at ~23%) ----
    let best = std::iter::once(1)
        .chain(JOINT_DRAM_CHANNELS)
        .map(|ch| find(JOINT_CLUSTERS, true, PartitionStrategy::Rotated, ch))
        .max_by(|a, b| {
            a.utilization_pct
                .partial_cmp(&b.utilization_pct)
                .expect("finite utilization")
        })
        .expect("non-empty joint sweep");
    assert!(
        best.utilization_pct >= ROTATED_UTILIZATION_GATE_PCT,
        "N={JOINT_CLUSTERS}: rotated split-K peaked at {:.1}% MAC utilization \
         (ch={}), below the {ROTATED_UTILIZATION_GATE_PCT}% gate",
        best.utilization_pct,
        best.dram_channels,
    );
    println!(
        "N={JOINT_CLUSTERS}: rotated split-K reaches {:.1}% MAC utilization at \
         {} DRAM channel(s) — gate passed",
        best.utilization_pct, best.dram_channels,
    );
}
