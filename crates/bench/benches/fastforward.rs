//! Naive vs fast-forward simulation-loop benchmark.
//!
//! Demonstrates the two halves of the fast-forward engine's contract on
//! stall-heavy workloads:
//!
//! 1. **Equivalence** — both modes produce bit-identical report digests.
//! 2. **Speed** — skipping quiescent cycles cuts simulated-run wall-clock by
//!    well over the 3× target on DRAM/DMA-bound kernels.
//!
//! Besides the human-readable table, the run emits `BENCH_fastforward.json`
//! (in the current directory) so the speedup can be tracked over time by CI
//! and perf dashboards.

use std::sync::Arc;

use virgo::{DesignKind, Gpu, GpuConfig, SimMode};
use virgo_bench::{microbench, print_table, ReportDigest};
use virgo_isa::{
    DataType, DeviceId, DmaCopyCmd, Kernel, KernelInfo, MemLoc, MmioCommand, ProgramBuilder,
    WarpAssignment, WarpOp,
};
use virgo_kernels::GemmShape;

/// A deliberately stall-heavy kernel: one warp repeatedly programs a large
/// DRAM-to-shared DMA tile load and fences on it, so nearly every simulated
/// cycle is a quiescent DMA wait — the pattern that dominates the paper's
/// large GEMM tile loads.
fn dma_stall_kernel(tiles: u64, tile_bytes: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    b.repeat(tiles, |b| {
        let cmd = MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(0u64),
            MemLoc::shared(0u64),
            tile_bytes,
        ));
        b.op(WarpOp::MmioWrite {
            device: DeviceId::DMA0,
            cmd,
        });
        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
    });
    Kernel::new(
        KernelInfo::new("dma-stall-tiles", 0, DataType::Fp16),
        vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
    )
}

struct Comparison {
    name: &'static str,
    cycles: u64,
    naive_ms: f64,
    fast_ms: f64,
    identical: bool,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.fast_ms.max(1e-9)
    }
}

fn compare_kernel(name: &'static str, config: &GpuConfig, kernel: &Kernel) -> Comparison {
    const BUDGET: u64 = 2_000_000_000;
    let naive = Gpu::new(config.clone())
        .run_with_mode(kernel, BUDGET, SimMode::Naive)
        .expect("naive run finishes");
    let fast = Gpu::new(config.clone())
        .run_with_mode(kernel, BUDGET, SimMode::FastForward)
        .expect("fast-forward run finishes");
    let identical = ReportDigest::of(&naive) == ReportDigest::of(&fast);

    // Five measured iterations (min-of-N): the dense-GEMM comparisons sit
    // near 1.0x by design, so the >= 1.0 gate below needs low-noise minima.
    let naive_time = microbench::time(name, 5, || {
        Gpu::new(config.clone()).run_with_mode(kernel, BUDGET, SimMode::Naive)
    });
    let fast_time = microbench::time(name, 5, || {
        Gpu::new(config.clone()).run_with_mode(kernel, BUDGET, SimMode::FastForward)
    });
    Comparison {
        name,
        cycles: naive.cycles().get(),
        naive_ms: naive_time.min_ms(),
        fast_ms: fast_time.min_ms(),
        identical,
    }
}

fn compare_gemm(name: &'static str, design: DesignKind, size: u32) -> Comparison {
    let config = GpuConfig::for_design(design);
    let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(size));
    compare_kernel(name, &config, &kernel)
}

fn main() {
    let virgo = GpuConfig::virgo();
    let stall_kernel = dma_stall_kernel(16, 512 * 1024);

    let comparisons = [
        compare_kernel("dma_stall_16x512KiB", &virgo, &stall_kernel),
        compare_gemm("virgo_gemm_256", DesignKind::Virgo, 256),
        compare_gemm("ampere_gemm_128", DesignKind::AmpereStyle, 128),
    ];

    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.cycles.to_string(),
                format!("{:.2}", c.naive_ms),
                format!("{:.2}", c.fast_ms),
                format!("{:.1}x", c.speedup()),
                if c.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fast-forward engine: naive vs cycle-skipping driver",
        &[
            "workload",
            "sim cycles",
            "naive ms",
            "ff ms",
            "speedup",
            "bit-identical",
        ],
        &rows,
    );

    let entries: Vec<String> = comparisons
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"simulated_cycles\": {}, ",
                    "\"naive_ms\": {:.3}, \"fastforward_ms\": {:.3}, ",
                    "\"speedup\": {:.2}, \"bit_identical\": {}}}"
                ),
                c.name,
                c.cycles,
                c.naive_ms,
                c.fast_ms,
                c.speedup(),
                c.identical
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fastforward\",\n  \"comparisons\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fastforward.json");
    std::fs::write(path, &json).expect("write BENCH_fastforward.json");
    println!("\nwrote {path}");

    let stall = &comparisons[0];
    assert!(
        comparisons.iter().all(|c| c.identical),
        "fast-forward reports must be bit-identical to the naive loop"
    );
    assert!(
        stall.speedup() >= 3.0,
        "stall-heavy speedup regressed below 3x: {:.2}x",
        stall.speedup()
    );
    // No workload may be *slower* under fast-forward: the adaptive bailout
    // falls back to naive stepping in compute-dense regions, so the worst
    // case is naive speed plus a bounded number of horizon probes
    // (ampere_gemm_128 regressed to 0.93x before the bailout existed). The
    // semantic target is 1.0x, but the dense comparisons sit *at* 1.0x by
    // design, so the gate leaves a small margin for wall-clock jitter on
    // shared CI runners — a real regression (like the pre-bailout 0.93x)
    // still trips it.
    const NOISE_MARGIN: f64 = 0.97;
    for c in &comparisons {
        assert!(
            c.speedup() >= NOISE_MARGIN,
            "{} is slower under fast-forward than naive: {:.2}x (floor {NOISE_MARGIN})",
            c.name,
            c.speedup()
        );
    }
    println!(
        "stall-heavy speedup: {:.1}x (target >= 3x), all workloads >= {NOISE_MARGIN}x — all reports bit-identical",
        stall.speedup()
    );
}
