//! Naive vs fast-forward simulation-loop benchmark.
//!
//! Demonstrates the two halves of the fast-forward engine's contract on
//! stall-heavy workloads:
//!
//! 1. **Equivalence** — both modes produce bit-identical report digests.
//! 2. **Speed** — skipping quiescent cycles cuts simulated-run wall-clock by
//!    well over the 3× target on DRAM/DMA-bound kernels.
//!
//! Besides the human-readable table, the run emits `BENCH_fastforward.json`
//! (in the current directory) so the speedup can be tracked over time by CI
//! and perf dashboards.

use std::sync::Arc;

use virgo::{DesignKind, Gpu, GpuConfig, SchedStats, SimMode};
use virgo_bench::{microbench, print_table, ReportDigest};
use virgo_isa::{
    DataType, DeviceId, DmaCopyCmd, Kernel, KernelInfo, MemLoc, MmioCommand, ProgramBuilder,
    WarpAssignment, WarpOp,
};
use virgo_kernels::GemmShape;

/// A deliberately stall-heavy kernel: one warp repeatedly programs a large
/// DRAM-to-shared DMA tile load and fences on it, so nearly every simulated
/// cycle is a quiescent DMA wait — the pattern that dominates the paper's
/// large GEMM tile loads.
fn dma_stall_kernel(tiles: u64, tile_bytes: u64) -> Kernel {
    let mut b = ProgramBuilder::new();
    b.repeat(tiles, |b| {
        let cmd = MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(0u64),
            MemLoc::shared(0u64),
            tile_bytes,
        ));
        b.op(WarpOp::MmioWrite {
            device: DeviceId::DMA0,
            cmd,
        });
        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
    });
    Kernel::new(
        KernelInfo::new("dma-stall-tiles", 0, DataType::Fp16),
        vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
    )
}

struct Comparison {
    name: &'static str,
    cycles: u64,
    naive_ms: f64,
    fast_ms: f64,
    identical: bool,
    /// Scheduler counters of the fast-forward run: how many cycles were
    /// processed vs jumped, and which component class pinned each event.
    sched: SchedStats,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.fast_ms.max(1e-9)
    }

    /// Compact horizon-attribution column: the non-zero event classes, most
    /// frequent first, so a regression names the component that stopped the
    /// skip at a glance.
    fn attribution(&self) -> String {
        let s = &self.sched;
        let mut classes = [
            ("simt", s.simt_events),
            ("gemmini", s.gemmini_events),
            ("tensor", s.tensor_events),
            ("dma", s.dma_events),
            ("dsm", s.dsm_events),
            ("dram", s.dram_events),
        ];
        classes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let parts: Vec<String> = classes
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" · ")
        }
    }
}

fn compare_kernel(name: &'static str, config: &GpuConfig, kernel: &Kernel) -> Comparison {
    const BUDGET: u64 = 2_000_000_000;
    let naive = Gpu::new(config.clone())
        .run_with_mode(kernel, BUDGET, SimMode::Naive)
        .expect("naive run finishes");
    let fast = Gpu::new(config.clone())
        .run_with_mode(kernel, BUDGET, SimMode::FastForward)
        .expect("fast-forward run finishes");
    let identical = ReportDigest::of(&naive) == ReportDigest::of(&fast);

    // Five measured iterations (min-of-N): the dense-GEMM comparisons sit
    // near 1.0x by design, so the >= 1.0 gate below needs low-noise minima.
    let naive_time = microbench::time(name, 5, || {
        Gpu::new(config.clone()).run_with_mode(kernel, BUDGET, SimMode::Naive)
    });
    let fast_time = microbench::time(name, 5, || {
        Gpu::new(config.clone()).run_with_mode(kernel, BUDGET, SimMode::FastForward)
    });
    Comparison {
        name,
        cycles: naive.cycles().get(),
        naive_ms: naive_time.min_ms(),
        fast_ms: fast_time.min_ms(),
        identical,
        sched: *fast.sched_stats(),
    }
}

fn compare_gemm(name: &'static str, design: DesignKind, size: u32) -> Comparison {
    let config = GpuConfig::for_design(design);
    let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(size));
    compare_kernel(name, &config, &kernel)
}

fn main() {
    let virgo = GpuConfig::virgo();
    let stall_kernel = dma_stall_kernel(16, 512 * 1024);

    let comparisons = [
        compare_kernel("dma_stall_16x512KiB", &virgo, &stall_kernel),
        compare_gemm("virgo_gemm_256", DesignKind::Virgo, 256),
        compare_gemm("ampere_gemm_128", DesignKind::AmpereStyle, 128),
    ];

    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.cycles.to_string(),
                format!("{:.2}", c.naive_ms),
                format!("{:.2}", c.fast_ms),
                format!("{:.1}x", c.speedup()),
                if c.identical { "yes" } else { "NO" }.to_string(),
                format!(
                    "{}/{}",
                    c.sched.processed_cycles,
                    c.sched.processed_cycles + c.sched.skipped_cycles
                ),
                c.attribution(),
            ]
        })
        .collect();
    print_table(
        "Fast-forward engine: naive vs cycle-skipping driver",
        &[
            "workload",
            "sim cycles",
            "naive ms",
            "ff ms",
            "speedup",
            "bit-identical",
            "proc/total",
            "horizon pinned by",
        ],
        &rows,
    );

    let entries: Vec<String> = comparisons
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"simulated_cycles\": {}, ",
                    "\"naive_ms\": {:.3}, \"fastforward_ms\": {:.3}, ",
                    "\"speedup\": {:.2}, \"bit_identical\": {},\n",
                    "     \"processed_cycles\": {}, \"skipped_cycles\": {}, ",
                    "\"simt_events\": {}, \"gemmini_events\": {}, ",
                    "\"tensor_events\": {}, \"dma_events\": {}, ",
                    "\"dsm_events\": {}, \"dram_events\": {}, ",
                    "\"bailout_engagements\": {}}}"
                ),
                c.name,
                c.cycles,
                c.naive_ms,
                c.fast_ms,
                c.speedup(),
                c.identical,
                c.sched.processed_cycles,
                c.sched.skipped_cycles,
                c.sched.simt_events,
                c.sched.gemmini_events,
                c.sched.tensor_events,
                c.sched.dma_events,
                c.sched.dsm_events,
                c.sched.dram_events,
                c.sched.bailout_engagements,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fastforward\",\n  \"comparisons\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fastforward.json");
    std::fs::write(path, &json).expect("write BENCH_fastforward.json");
    println!("\nwrote {path}");

    let stall = &comparisons[0];
    assert!(
        comparisons.iter().all(|c| c.identical),
        "fast-forward reports must be bit-identical to the naive loop"
    );
    assert!(
        stall.speedup() >= 3.0,
        "stall-heavy speedup regressed below 3x: {:.2}x",
        stall.speedup()
    );
    // Dense-GEMM speedup gates. With batched Gemmini operand streaming the
    // virgo kernel is almost entirely quiescent between block boundaries and
    // the driver jumps it in a handful of events — comfortably past 2x. The
    // ampere kernel is different in kind: its warps issue an HMMA/ALU/load
    // instruction nearly every cycle, so ~86k of its ~192k core-cycles are
    // *active* ticks that both modes must execute instruction-by-instruction.
    // Measured on this workload, a fast-forward pass with zero scheduler
    // overhead would still pay those ticks, capping the honest ceiling near
    // 1.4x; the gate pins the achieved ratio (≈1.3x after the in-tick horizon
    // fold removed the per-tick `next_activity` probes) with margin for CI
    // jitter, and the real protection is the floor staying well above the
    // pre-horizon 0.9x regressions.
    let gemm_floor = |name: &str| match name {
        "virgo_gemm_256" => Some(2.0),
        "ampere_gemm_128" => Some(1.15),
        _ => None,
    };
    for c in &comparisons {
        if let Some(floor) = gemm_floor(c.name) {
            assert!(
                c.speedup() >= floor,
                "{} fast-forward speedup regressed below {floor}x: {:.2}x",
                c.name,
                c.speedup()
            );
        }
        // Batched streaming gives every matrix unit a real (block-boundary)
        // horizon, so the adaptive naive-stepping bailout must never engage
        // on these workloads — if it does, a horizon regressed to `now`-pins.
        assert_eq!(
            c.sched.bailout_engagements, 0,
            "{}: the fast-forward bailout engaged — a component's next_activity is pinning the horizon",
            c.name
        );
    }
    println!(
        "stall-heavy speedup: {:.1}x (target >= 3x), dense gates met, zero bailouts — all reports bit-identical",
        stall.speedup()
    );
}
