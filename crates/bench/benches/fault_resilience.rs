//! Fault-injection resilience study — the producer-consumer split-K GEMM on
//! N = 8 clusters over the DSM fabric, run clean and then with a ring link
//! killed mid-run (a permanent [`FaultKind::DsmLinkDown`] window opening at
//! a quarter of the clean run's cycle count).
//!
//! The run prints the A/B table, emits `BENCH_faults.json` at the workspace
//! root and enforces the resilience gates:
//!
//! * the degraded machine must still **complete** (traffic reroutes the
//!   long way around the ring instead of deadlocking),
//! * the reroute must actually engage (`dsm_rerouted_transfers > 0`),
//! * the cycle overhead of losing a link must stay ≤ 2.5× the clean run,
//! * the degraded run must stay **bit-identical across simulation modes**
//!   (naive vs fast-forward), the determinism contract of the fault layer.
//!
//! Every counter in the artifact is deterministic, so the committed
//! `BENCH_faults.json` doubles as a regression pin: `bench_diff` fails CI
//! if the degraded machine's behavior drifts at all.

use virgo::{FaultKind, FaultPlan, Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::{print_table, ReportDigest, MAX_CYCLES};
use virgo_kernels::{build_split_k_gemm, GemmShape};
use virgo_mem::DsmConfig;
use virgo_sim::fault::PERMANENT;

/// Cluster count: the paper's largest scale-out point, and the one where a
/// ring-link loss forces the longest detour.
const CLUSTERS: u32 = 8;

/// Ring segment killed (between clusters 2 and 3 — interior, so both the
/// short and long detours carry real traffic).
const KILLED_LINK: u32 = 2;

/// Hard ceiling on the cycle cost of losing one of eight ring links.
const MAX_OVERHEAD: f64 = 2.5;

struct Point {
    label: &'static str,
    cycles: u64,
    dram_bytes: u64,
    dsm_bytes: u64,
    dsm_stall_cycles: u64,
    rerouted: u64,
    degraded: u64,
    utilization_pct: f64,
}

impl Point {
    fn of(label: &'static str, report: &SimReport) -> Point {
        let fault = report.fault_stats();
        Point {
            label,
            cycles: report.cycles().get(),
            dram_bytes: report.dram_bytes(),
            dsm_bytes: report.dsm_bytes(),
            dsm_stall_cycles: report.dsm_stats().stall_cycles,
            rerouted: fault.dsm_rerouted_transfers,
            degraded: fault.degraded_cycles,
            utilization_pct: report.mac_utilization().as_percent(),
        }
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.label.to_string(),
            self.cycles.to_string(),
            self.dram_bytes.to_string(),
            self.dsm_bytes.to_string(),
            self.dsm_stall_cycles.to_string(),
            self.rerouted.to_string(),
            self.degraded.to_string(),
            format!("{:.1}%", self.utilization_pct),
        ]
    }
}

fn run(config: &GpuConfig, shape: GemmShape, mode: SimMode) -> SimReport {
    let kernel = build_split_k_gemm(config, shape);
    Gpu::new(config.clone())
        .run_with_mode(&kernel, MAX_CYCLES, mode)
        .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name))
}

fn main() {
    // Same K-heavy family as the dsm_scaling bench so the reduction carries
    // real inter-cluster traffic; overridable for smoke runs, with K clamped
    // so every cluster keeps a non-empty K-slice.
    let shape = std::env::var("VIRGO_SPLITK_GEMM")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map(|n| GemmShape {
            m: n,
            n,
            k: (4 * n).max(128 * CLUSTERS),
        })
        .unwrap_or(GemmShape {
            m: 256,
            n: 256,
            k: 1024,
        });

    // The *ring* fabric: the topology with an alternate route, so a dead
    // segment is survivable (on the crossbar a dead ingress port can only
    // park traffic until the window closes).
    let clean_config = GpuConfig::virgo()
        .with_clusters(CLUSTERS)
        .with_dsm(DsmConfig::enabled_ring());
    let clean = run(&clean_config, shape, SimMode::FastForward);
    eprintln!("  clean run: {} cycles", clean.cycles().get());

    // Kill the link a quarter of the way into the clean run's schedule:
    // late enough that the ring has carried traffic over the doomed
    // segment, early enough that most of the reduction reroutes.
    let kill_at = clean.cycles().get() / 4;
    let plan = FaultPlan::seeded(0xFA17).with_event(
        FaultKind::DsmLinkDown { link: KILLED_LINK },
        kill_at,
        PERMANENT,
    );
    let fault_config = clean_config.clone().with_faults(plan);
    let degraded = run(&fault_config, shape, SimMode::FastForward);
    eprintln!("  degraded run: {} cycles", degraded.cycles().get());
    let degraded_naive = run(&fault_config, shape, SimMode::Naive);

    print_table(
        &format!(
            "Split-K GEMM {shape}, N={CLUSTERS}: ring link {KILLED_LINK} down at cycle {kill_at}"
        ),
        &[
            "machine",
            "cycles",
            "dram bytes",
            "dsm bytes",
            "dsm stall cyc",
            "rerouted",
            "degraded cyc",
            "MAC util",
        ],
        &[
            Point::of("clean", &clean).row(),
            Point::of("link down", &degraded).row(),
        ],
    );

    // ---- Resilience gates ----
    let fault = degraded.fault_stats();
    let overhead = degraded.cycles().get() as f64 / clean.cycles().get() as f64;
    let bit_identical = ReportDigest::of(&degraded) == ReportDigest::of(&degraded_naive);
    assert!(
        degraded.faults_injected(),
        "the fault window must be recorded in the report"
    );
    assert!(
        fault.dsm_rerouted_transfers > 0,
        "killing ring link {KILLED_LINK} mid-run must engage the reroute path"
    );
    assert!(
        overhead <= MAX_OVERHEAD,
        "losing one of {CLUSTERS} ring links costs {overhead:.2}x cycles \
         (limit {MAX_OVERHEAD}x)"
    );
    assert!(
        bit_identical,
        "degraded-mode runs must stay bit-identical across naive and \
         fast-forward simulation modes"
    );
    println!(
        "link-down overhead {overhead:.3}x (limit {MAX_OVERHEAD}x), \
         {} transfers rerouted, modes bit-identical — gates passed",
        fault.dsm_rerouted_transfers
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fault_resilience\",\n",
            "  \"gemm\": \"{}\",\n",
            "  \"clusters\": {},\n",
            "  \"killed_link\": {},\n",
            "  \"kill_at_cycle\": {},\n",
            "  \"baseline_cycles\": {},\n",
            "  \"link_kill\": {{\n",
            "    \"cycles\": {},\n",
            "    \"cycle_overhead_ratio\": {:.6},\n",
            "    \"faults_injected\": {},\n",
            "    \"degraded_cycles\": {},\n",
            "    \"rerouted_transfers\": {},\n",
            "    \"dsm_blocked_cycles\": {},\n",
            "    \"restriped_accesses\": {},\n",
            "    \"recovery_cycles\": {},\n",
            "    \"dram_bytes\": {},\n",
            "    \"dsm_bytes\": {},\n",
            "    \"mac_utilization_percent\": {:.3},\n",
            "    \"bit_identical\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        shape,
        CLUSTERS,
        KILLED_LINK,
        kill_at,
        clean.cycles().get(),
        degraded.cycles().get(),
        overhead,
        fault.injected,
        fault.degraded_cycles,
        fault.dsm_rerouted_transfers,
        fault.dsm_blocked_cycles,
        fault.dram_restriped_accesses,
        fault.recovery_cycles,
        degraded.dram_bytes(),
        degraded.dsm_bytes(),
        degraded.mac_utilization().as_percent(),
        bit_identical,
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("wrote {path}");
}
