//! Figure 10: active power breakdown within the SIMT cores for the GEMM
//! kernel (issue, ALU, FPU, LSU, writeback, other), with the matrix unit and
//! accumulator memory shown alongside for comparison.

use virgo_bench::{mw, print_table, run_gemm_all_designs};
use virgo_energy::{Component, CoreStage};
use virgo_kernels::GemmShape;

fn breakdown_size() -> GemmShape {
    let n = std::env::var("VIRGO_BREAKDOWN_SIZE")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(512);
    GemmShape::square(n)
}

fn main() {
    let shape = breakdown_size();
    let results = run_gemm_all_designs(shape);

    let mut rows = Vec::new();
    for (design, report) in &results {
        for stage in CoreStage::all() {
            rows.push(vec![
                design.name().to_string(),
                stage.component().name().to_string(),
                mw(report.power().component_power_mw(stage.component())),
            ]);
        }
        for extra in [Component::AccumMem, Component::MatrixUnit] {
            rows.push(vec![
                design.name().to_string(),
                extra.name().to_string(),
                mw(report.power().component_power_mw(extra)),
            ]);
        }
        rows.push(vec![
            design.name().to_string(),
            "Core total".to_string(),
            mw(report.power().core_power_mw()),
        ]);
    }
    print_table(
        &format!("Figure 10: core active power breakdown, GEMM {shape}"),
        &["Design", "Stage", "Active power"],
        &rows,
    );
    println!("\nPaper reference (Figure 10, 1024^3 GEMM): issue and ALU power dominate the");
    println!("Volta/Ampere-style cores (fine-grained HMMA sequencing, per-load address");
    println!("generation, register-file operand staging); the Hopper-style core keeps");
    println!("non-trivial issue power from register-file accumulation; Virgo's core power is");
    println!("minimal and the energy moves into the disaggregated matrix unit.");
}
