//! Figure 11: active energy breakdown of the matrix units themselves.

use virgo_bench::{print_table, run_gemm_all_designs, uj};
use virgo_kernels::GemmShape;

fn breakdown_size() -> GemmShape {
    let n = std::env::var("VIRGO_BREAKDOWN_SIZE")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(512);
    GemmShape::square(n)
}

fn main() {
    let shape = breakdown_size();
    let results = run_gemm_all_designs(shape);

    let mut rows = Vec::new();
    for (design, report) in &results {
        for (sub, energy) in report.power().matrix_energy_breakdown_uj() {
            if *energy > 0.0 {
                rows.push(vec![
                    design.name().to_string(),
                    sub.name().to_string(),
                    uj(*energy),
                ]);
            }
        }
        rows.push(vec![
            design.name().to_string(),
            "TOTAL".to_string(),
            uj(report.power().matrix_total_energy_uj()),
        ]);
    }
    print_table(
        &format!("Figure 11: matrix unit active energy breakdown, GEMM {shape}"),
        &["Design", "Subcomponent", "Active energy"],
        &rows,
    );
    println!("\nPaper reference (Figure 11, 1024^3 GEMM): the processing-element energy is");
    println!("similar across all designs (slightly lower for Virgo's fused-multiply-add");
    println!("systolic PEs than for the tree-reduction dot-product units); the differences in");
    println!("system-level energy therefore come from outside the matrix unit.");
}
