//! Figure 12 and Section 6.2: FlashAttention-3 power, energy and utilization
//! on Virgo versus the Ampere-style baseline, plus the Section 4.5.1
//! synchronization-overhead measurement.

use virgo::DesignKind;
use virgo_bench::{mw, pct, print_table, sweep_service, uj};
use virgo_energy::Component;
use virgo_kernels::AttentionShape;
use virgo_sweep::Query;

fn main() {
    let designs = [DesignKind::AmpereStyle, DesignKind::Virgo];
    let queries: Vec<Query> = designs
        .into_iter()
        .map(|design| Query::new(design, AttentionShape::paper_default()))
        .collect();
    let results: Vec<_> = sweep_service()
        .run_all(&queries)
        .into_iter()
        .map(|outcome| {
            let design = outcome.point().expect("built from a point").design;
            (design, outcome.report)
        })
        .collect();

    let groups = [
        ("L2 Cache", vec![Component::L2Cache]),
        ("L1 Cache", vec![Component::L1Cache]),
        ("Shared Mem", vec![Component::SharedMem]),
        (
            "Vortex Core",
            vec![
                Component::CoreIssue,
                Component::CoreAlu,
                Component::CoreFpu,
                Component::CoreLsu,
                Component::CoreWriteback,
                Component::CoreOther,
            ],
        ),
        ("Accum Mem", vec![Component::AccumMem]),
        ("Matrix Unit", vec![Component::MatrixUnit]),
        ("DMA & Other", vec![Component::DmaOther]),
    ];

    let mut rows = Vec::new();
    for (design, report) in &results {
        for (label, components) in &groups {
            let power: f64 = components
                .iter()
                .map(|&c| report.power().component_power_mw(c))
                .sum();
            let energy: f64 = components
                .iter()
                .map(|&c| report.power().component_energy(c))
                .sum();
            rows.push(vec![
                design.name().to_string(),
                (*label).to_string(),
                mw(power),
                uj(energy),
            ]);
        }
        rows.push(vec![
            design.name().to_string(),
            "TOTAL".to_string(),
            mw(report.active_power_mw()),
            uj(report.power().total_energy_uj()),
        ]);
    }
    print_table(
        "Figure 12: FlashAttention-3 active power and energy breakdown",
        &["Design", "Component", "Power", "Energy"],
        &rows,
    );

    let util_rows: Vec<Vec<String>> = results
        .iter()
        .map(|(design, report)| {
            vec![
                design.name().to_string(),
                pct(report.mac_utilization().as_fraction()),
                report.cycles().get().to_string(),
                report.instructions_retired().to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 6.2: FlashAttention-3 MAC utilization",
        &["Design", "MAC util", "Cycles", "Instructions"],
        &util_rows,
    );

    let virgo = &results
        .iter()
        .find(|(d, _)| *d == DesignKind::Virgo)
        .unwrap()
        .1;
    let ampere = &results
        .iter()
        .find(|(d, _)| *d == DesignKind::AmpereStyle)
        .unwrap()
        .1;
    println!(
        "\nVirgo vs Ampere-style: energy -{:.1}% (paper: -50.6%), utilization {} vs {} (paper: 65.7% vs 35.1%)",
        (1.0 - virgo.total_energy_mj() / ampere.total_energy_mj()) * 100.0,
        pct(virgo.mac_utilization().as_fraction()),
        pct(ampere.mac_utilization().as_fraction()),
    );

    // Section 4.5.1: synchronization overhead of the virgo_fence polling.
    let fences = virgo.cluster_stats().async_ops_launched.max(1);
    println!(
        "\nSection 4.5.1 synchronization overhead (Virgo): {} fence-wait cycles over {} cycles ({:.1}% of runtime, ~{} cycles per asynchronous operation; paper: ~260 cycles, 2.4% of runtime)",
        virgo.fence_wait_cycles(),
        virgo.cycles().get(),
        virgo.fence_wait_cycles() as f64 / virgo.cycles().get() as f64 * 100.0,
        virgo.fence_wait_cycles() / fences,
    );
}
