//! Figure 7: SoC area breakdown of the evaluated GPU designs.

use virgo::{DesignKind, GpuConfig};
use virgo_bench::print_table;
use virgo_energy::{AreaModel, Component};

fn main() {
    let model = AreaModel::default_16nm();
    let designs = [
        DesignKind::VoltaStyle,
        DesignKind::HopperStyle,
        DesignKind::Virgo,
    ];
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for design in designs {
        let config = GpuConfig::for_design(design);
        let report = model.estimate(&config.area_params());
        totals.push((design, report.total_mm2()));
        for (component, mm2) in report.breakdown() {
            if *mm2 > 0.0 {
                let label = if *component == Component::CoreIssue {
                    "Vortex Core".to_string()
                } else {
                    component.name().to_string()
                };
                rows.push(vec![
                    design.name().to_string(),
                    label,
                    format!("{mm2:.3}"),
                    format!("{:.1}%", report.fraction(*component) * 100.0),
                ]);
            }
        }
    }
    print_table(
        "Figure 7: SoC area breakdown",
        &["Design", "Component", "Area (mm^2)", "Share"],
        &rows,
    );

    let volta = totals[0].1;
    println!("\nTotals:");
    for (design, total) in &totals {
        println!(
            "  {:>14}: {:.3} mm^2 ({:+.1}% vs Volta-style)",
            design.name(),
            total,
            (total / volta - 1.0) * 100.0
        );
    }
    println!("\nPaper reference (Figure 7): Virgo is 0.1% smaller than the Volta-style SoC and");
    println!("3.0% larger than the Hopper-style SoC; the L1 caches and Vortex cores dominate.");
}
