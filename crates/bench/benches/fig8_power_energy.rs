//! Figure 8: SoC active power and active energy of the GEMM kernel across
//! the four designs, at 512³ and 1024³.

use virgo::DesignKind;
use virgo_bench::{mw, print_table, run_gemm_all_designs};
use virgo_kernels::GemmShape;

fn main() {
    let sizes: Vec<GemmShape> = match std::env::var("VIRGO_GEMM_SIZES") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<u32>().ok())
            .map(GemmShape::square)
            .collect(),
        Err(_) => vec![GemmShape::square(512), GemmShape::square(1024)],
    };

    for shape in sizes {
        let results = run_gemm_all_designs(shape);
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(design, report)| {
                vec![
                    design.name().to_string(),
                    mw(report.active_power_mw()),
                    format!("{:.2} mJ", report.total_energy_mj()),
                    report.cycles().get().to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 8: SoC active power and energy, GEMM {shape}"),
            &["Design", "Active power", "Active energy", "Cycles"],
            &rows,
        );

        let get = |kind: DesignKind| {
            results
                .iter()
                .find(|(d, _)| *d == kind)
                .map(|(_, r)| r)
                .expect("design present")
        };
        let virgo = get(DesignKind::Virgo);
        let ampere = get(DesignKind::AmpereStyle);
        let hopper = get(DesignKind::HopperStyle);
        println!(
            "\nVirgo vs Ampere-style: power -{:.1}%, energy -{:.1}%",
            (1.0 - virgo.active_power_mw() / ampere.active_power_mw()) * 100.0,
            (1.0 - virgo.total_energy_mj() / ampere.total_energy_mj()) * 100.0
        );
        println!(
            "Virgo vs Hopper-style: power -{:.1}%, energy -{:.1}%",
            (1.0 - virgo.active_power_mw() / hopper.active_power_mw()) * 100.0,
            (1.0 - virgo.total_energy_mj() / hopper.total_energy_mj()) * 100.0
        );
    }
    println!("\nPaper reference (Figure 8 / Section 6.1.2): Virgo reduces active power by 67.3%");
    println!("vs the Ampere-style design and 24.2% vs the Hopper-style design, and active");
    println!("energy by 80.3% and 32.5% respectively.");
}
