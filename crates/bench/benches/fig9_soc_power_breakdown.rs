//! Figure 9: active power breakdown by SoC component for the GEMM kernel.

use virgo_bench::{mw, print_table, run_gemm_all_designs};
use virgo_energy::Component;
use virgo_kernels::GemmShape;

/// Reads the breakdown GEMM size from `VIRGO_BREAKDOWN_SIZE` (default 512;
/// the paper uses 1024).
fn breakdown_size() -> GemmShape {
    let n = std::env::var("VIRGO_BREAKDOWN_SIZE")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(512);
    GemmShape::square(n)
}

fn main() {
    let shape = breakdown_size();
    let results = run_gemm_all_designs(shape);

    // Figure 9 grouping: core stages merged into "Vortex Core".
    let groups = [
        ("L2 Cache", vec![Component::L2Cache]),
        ("L1 Cache", vec![Component::L1Cache]),
        ("Shared Mem", vec![Component::SharedMem]),
        (
            "Vortex Core",
            vec![
                Component::CoreIssue,
                Component::CoreAlu,
                Component::CoreFpu,
                Component::CoreLsu,
                Component::CoreWriteback,
                Component::CoreOther,
            ],
        ),
        ("Accum Mem", vec![Component::AccumMem]),
        ("Matrix Unit", vec![Component::MatrixUnit]),
        ("DMA & Other", vec![Component::DmaOther]),
    ];

    let mut rows = Vec::new();
    for (design, report) in &results {
        for (label, components) in &groups {
            let power: f64 = components
                .iter()
                .map(|&c| report.power().component_power_mw(c))
                .sum();
            rows.push(vec![
                design.name().to_string(),
                (*label).to_string(),
                mw(power),
            ]);
        }
        rows.push(vec![
            design.name().to_string(),
            "TOTAL".to_string(),
            mw(report.active_power_mw()),
        ]);
    }
    print_table(
        &format!("Figure 9: SoC active power breakdown, GEMM {shape}"),
        &["Design", "Component", "Active power"],
        &rows,
    );
    println!("\nPaper reference (Figure 9, 1024^3 GEMM): the Vortex core dominates the");
    println!("core-coupled designs' power; Virgo's core power collapses because instruction");
    println!("processing and register-file traffic are removed, leaving the matrix unit and");
    println!("memories as the main consumers.");
    println!("(Set VIRGO_BREAKDOWN_SIZE=1024 to reproduce the paper's exact problem size.)");
}
