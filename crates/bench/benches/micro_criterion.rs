//! Micro-benchmarks of the simulator substrates themselves: shared-memory
//! arbitration, cache lookups, program-cursor traversal and a small
//! end-to-end GEMM simulation. These measure the cost of simulation, not the
//! modelled hardware.
//!
//! Historical note: this target originally used Criterion; the workspace now
//! builds without registry dependencies, so it runs on the dependency-free
//! [`virgo_bench::microbench`] harness instead (same bench names, plain
//! min/mean reporting).

use std::sync::Arc;

use virgo::{DesignKind, GpuConfig};
use virgo_bench::{microbench, run_gemm};
use virgo_isa::{ProgramBuilder, WarpOp};
use virgo_kernels::GemmShape;
use virgo_mem::{Cache, CacheConfig, SharedMemory, SmemConfig};
use virgo_sim::Cycle;

fn bench_smem() -> Vec<microbench::Measurement> {
    let simt = {
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let mut cycle = 0u64;
        microbench::time("smem_simt_access_8_lanes", 100_000, move || {
            let access = smem.access_simt(Cycle::new(cycle), &addrs, false);
            cycle += 1;
            access
        })
    };
    let wide = {
        let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
        let mut cycle = 0u64;
        microbench::time("smem_wide_access_64b", 100_000, move || {
            let access = smem.access_wide(Cycle::new(cycle), (cycle * 64) % 32768, 64, false);
            cycle += 1;
            access
        })
    };
    vec![simt, wide]
}

fn bench_cache() -> microbench::Measurement {
    let mut cache = Cache::new(CacheConfig::l1_16k());
    let mut addr = 0u64;
    microbench::time("l1_cache_streaming_access", 100_000, move || {
        let outcome = cache.access(addr);
        addr = addr.wrapping_add(32);
        outcome
    })
}

fn bench_cursor() -> microbench::Measurement {
    let mut builder = ProgramBuilder::new();
    builder.repeat(64, |b| {
        b.repeat(16, |b| {
            b.op(WarpOp::Nop);
            b.op(WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            });
        });
    });
    let program = Arc::new(builder.build());
    microbench::time("program_cursor_nested_loops", 1_000, move || {
        let mut cursor = program.cursor();
        let mut count = 0u64;
        while cursor.next_op().is_some() {
            count += 1;
        }
        count
    })
}

fn bench_end_to_end() -> Vec<microbench::Measurement> {
    let gemm = microbench::time("virgo_gemm_128_simulation", 10, || {
        run_gemm(DesignKind::Virgo, GemmShape::square(128))
    });
    let config = GpuConfig::virgo();
    let kernel_gen = microbench::time("kernel_generation_virgo_1024", 10, move || {
        virgo_kernels::build_gemm(&config, GemmShape::square(1024))
    });
    vec![gemm, kernel_gen]
}

fn main() {
    println!("=== simulator micro-benchmarks ===");
    let mut all = bench_smem();
    all.push(bench_cache());
    all.push(bench_cursor());
    all.extend(bench_end_to_end());
    for m in &all {
        println!("{}", m.summary());
    }
}
