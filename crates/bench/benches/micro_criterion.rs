//! Criterion micro-benchmarks of the simulator substrates themselves:
//! shared-memory arbitration, cache lookups, program-cursor traversal and a
//! small end-to-end GEMM simulation. These measure the cost of simulation,
//! not the modelled hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use virgo::{DesignKind, GpuConfig};
use virgo_bench::run_gemm;
use virgo_isa::{ProgramBuilder, WarpOp};
use virgo_kernels::GemmShape;
use virgo_mem::{Cache, CacheConfig, SharedMemory, SmemConfig};
use virgo_sim::Cycle;

fn bench_smem(c: &mut Criterion) {
    c.bench_function("smem_simt_access_8_lanes", |b| {
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let mut cycle = 0u64;
        b.iter(|| {
            let access = smem.access_simt(Cycle::new(cycle), &addrs, false);
            cycle += 1;
            access
        });
    });
    c.bench_function("smem_wide_access_64b", |b| {
        let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
        let mut cycle = 0u64;
        b.iter(|| {
            let access = smem.access_wide(Cycle::new(cycle), (cycle * 64) % 32768, 64, false);
            cycle += 1;
            access
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_streaming_access", |b| {
        let mut cache = Cache::new(CacheConfig::l1_16k());
        let mut addr = 0u64;
        b.iter(|| {
            let outcome = cache.access(addr);
            addr = addr.wrapping_add(32);
            outcome
        });
    });
}

fn bench_cursor(c: &mut Criterion) {
    c.bench_function("program_cursor_nested_loops", |b| {
        let mut builder = ProgramBuilder::new();
        builder.repeat(64, |b| {
            b.repeat(16, |b| {
                b.op(WarpOp::Nop);
                b.op(WarpOp::Alu { rf_reads: 2, rf_writes: 1 });
            });
        });
        let program = Arc::new(builder.build());
        b.iter(|| {
            let mut cursor = program.cursor();
            let mut count = 0u64;
            while cursor.next_op().is_some() {
                count += 1;
            }
            count
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("virgo_gemm_128_simulation", |b| {
        b.iter(|| run_gemm(DesignKind::Virgo, GemmShape::square(128)))
    });
    group.bench_function("kernel_generation_virgo_1024", |b| {
        let config = GpuConfig::virgo();
        b.iter(|| virgo_kernels::build_gemm(&config, GemmShape::square(1024)))
    });
    group.finish();
}

criterion_group!(benches, bench_smem, bench_cache, bench_cursor, bench_end_to_end);
criterion_main!(benches);
