//! Section 6.3: two heterogeneous matrix units in one cluster, running two
//! differently-sized GEMMs in parallel versus serially.

use virgo::{Gpu, GpuConfig};
use virgo_bench::{pct, print_table, MAX_CYCLES};
use virgo_kernels::{build_heterogeneous_parallel, build_heterogeneous_serial};

fn main() {
    let config = GpuConfig::virgo_heterogeneous();
    let peak = config.peak_macs_per_cycle() as f64;

    // Parallel: both GEMMs run concurrently on their own matrix units.
    let parallel_kernel = build_heterogeneous_parallel(&config);
    let parallel = Gpu::new(config.clone())
        .run(&parallel_kernel, MAX_CYCLES)
        .expect("parallel heterogeneous run");

    // Serial: the two GEMMs run back to back on the same configuration.
    let (large, small) = build_heterogeneous_serial(&config);
    let mut gpu = Gpu::new(config);
    let serial_large = gpu.run(&large, MAX_CYCLES).expect("serial large GEMM");
    let serial_small = gpu.run(&small, MAX_CYCLES).expect("serial small GEMM");

    let parallel_cycles = parallel.cycles().get();
    let serial_cycles = serial_large.cycles().get() + serial_small.cycles().get();
    let total_macs = (large.info.total_macs + small.info.total_macs) as f64;

    let parallel_util = total_macs / (parallel_cycles as f64 * peak);
    let serial_util = total_macs / (serial_cycles as f64 * peak);

    let parallel_energy = parallel.power().total_energy_uj();
    let serial_energy =
        serial_large.power().total_energy_uj() + serial_small.power().total_energy_uj();
    // Power normalized per FLOP: energy per MAC is the size-independent view.
    let parallel_energy_per_mac = parallel_energy / total_macs;
    let serial_energy_per_mac = serial_energy / total_macs;

    let rows = vec![
        vec![
            "Parallel".to_string(),
            parallel_cycles.to_string(),
            pct(parallel_util),
            format!("{:.3} pJ/MAC", parallel_energy_per_mac * 1e6),
        ],
        vec![
            "Serial".to_string(),
            serial_cycles.to_string(),
            pct(serial_util),
            format!("{:.3} pJ/MAC", serial_energy_per_mac * 1e6),
        ],
    ];
    print_table(
        "Section 6.3: heterogeneous matrix units (256^3 GEMM on 16x16 unit + 128^3 GEMM on 8x8 unit)",
        &["Schedule", "Cycles", "MAC utilization", "Energy per MAC"],
        &rows,
    );
    println!(
        "\nPower-per-FLOP overhead of the parallel schedule: {:+.1}% (paper: +4.3%)",
        (parallel_energy_per_mac / serial_energy_per_mac - 1.0) * 100.0
    );
    println!("Paper reference (Section 6.3): 59.5% utilization in parallel vs 59.7% serial —");
    println!("running both units concurrently costs almost nothing, demonstrating scalability.");
}
