//! Request-level serving benchmark: offered-load sweep × arbitration
//! policy, clean vs faulted.
//!
//! Two tenants — an interactive one issuing small one-cluster requests and
//! a batch one issuing larger two-cluster GEMMs — offer load against a
//! 4-cluster Virgo machine at three inter-arrival rates. Each load point is
//! served four ways: the serial whole-machine FIFO baseline (the "one
//! kernel owns the GPU" model the job table replaces) and continuous
//! batching under FIFO, shortest-job and tenant-fair arbitration. One extra
//! arm replays the highest load against a throttled DRAM channel.
//!
//! The run emits `BENCH_serve.json` at the workspace root for the
//! `bench_diff` gate and hard-asserts the tentpole claim: at overlapping
//! load, continuous batching beats serial FIFO on both p99 latency and
//! goodput.

use virgo::{GpuConfig, SimMode};
use virgo_kernels::{AttentionShape, GemmShape};
use virgo_serve::{
    generate_trace, ArbitrationPolicy, BatchingMode, RequestClass, ServeConfig, ServeReport,
    Server, TenantSpec,
};
use virgo_sim::fault::{FaultKind, FaultPlan, PERMANENT};

const CLUSTERS: u32 = 4;
const SEED: u64 = 0x5E27E;
const PER_TENANT: usize = 12;
/// Offered-load sweep: mean inter-arrival gap per tenant, in cycles.
/// Calibrated around the service times of the request mix so the first
/// point queues heavily, the second overlaps and the third is nearly idle.
const LOADS: [u64; 3] = [20_000, 80_000, 320_000];

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("interactive", 1).with_classes(vec![
            RequestClass::Gemm(GemmShape::square(128)),
            RequestClass::Attention(AttentionShape {
                seq_len: 128,
                head_dim: 64,
                heads: 1,
                batch: 1,
            }),
        ]),
        TenantSpec::new("batch", 1)
            .with_classes(vec![RequestClass::Gemm(GemmShape::square(256))])
            .with_clusters(2),
    ]
}

fn serve(
    gpu: &GpuConfig,
    mean_interarrival: u64,
    policy: ArbitrationPolicy,
    batching: BatchingMode,
) -> ServeReport {
    let specs: Vec<TenantSpec> = tenants()
        .into_iter()
        .map(|mut t| {
            t.mean_interarrival = mean_interarrival;
            t
        })
        .collect();
    let trace = generate_trace(&specs, PER_TENANT, SEED);
    Server::new(
        ServeConfig::new(gpu.clone())
            .with_mode(SimMode::FastForward)
            .with_policy(policy)
            .with_batching(batching),
    )
    .run(&trace)
}

fn arm_json(report: &ServeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "        \"completed\": {},\n",
            "        \"timed_out\": {},\n",
            "        \"makespan_cycles\": {},\n",
            "        \"p50_latency_cycles\": {},\n",
            "        \"p99_latency_cycles\": {},\n",
            "        \"p999_latency_cycles\": {},\n",
            "        \"goodput_rps\": {:.3},\n",
            "        \"active_energy_mj\": {:.6},\n",
            "        \"static_energy_mj\": {:.6},\n",
            "        \"energy_per_request_mj\": {:.6}\n",
            "      }}"
        ),
        report.completed(),
        report.timed_out(),
        report.makespan_cycles,
        report.p50_latency_cycles,
        report.p99_latency_cycles,
        report.p999_latency_cycles,
        report.goodput_rps,
        report.active_energy_mj,
        report.static_energy_mj,
        report.energy_per_request_mj,
    )
}

fn print_arm(label: &str, report: &ServeReport) {
    println!(
        "  {label:<18} p50 {:>9}  p99 {:>9}  goodput {:>9.1} req/s  e/req {:>8.4} mJ  ({} ok, {} timeout)",
        report.p50_latency_cycles,
        report.p99_latency_cycles,
        report.goodput_rps,
        report.energy_per_request_mj,
        report.completed(),
        report.timed_out(),
    );
}

fn main() {
    let gpu = GpuConfig::virgo().with_clusters(CLUSTERS);
    println!(
        "Serving simulator: {CLUSTERS}-cluster Virgo, 2 tenants x {PER_TENANT} requests, seed {SEED:#x}"
    );

    let mut sweep_entries = Vec::new();
    let mut gate: Option<(u64, u64, f64, f64)> = None;
    for &load in &LOADS {
        println!("offered load: mean inter-arrival {load} cycles/tenant");
        let serial_fifo = serve(&gpu, load, ArbitrationPolicy::Fifo, BatchingMode::Serial);
        let continuous_fifo = serve(
            &gpu,
            load,
            ArbitrationPolicy::Fifo,
            BatchingMode::Continuous,
        );
        let continuous_sjf = serve(
            &gpu,
            load,
            ArbitrationPolicy::ShortestJob,
            BatchingMode::Continuous,
        );
        let continuous_fair = serve(
            &gpu,
            load,
            ArbitrationPolicy::TenantFair,
            BatchingMode::Continuous,
        );
        print_arm("serial fifo", &serial_fifo);
        print_arm("continuous fifo", &continuous_fifo);
        print_arm("continuous sjf", &continuous_sjf);
        print_arm("continuous fair", &continuous_fair);
        if load == LOADS[0] {
            gate = Some((
                continuous_fifo.p99_latency_cycles,
                serial_fifo.p99_latency_cycles,
                continuous_fifo.goodput_rps,
                serial_fifo.goodput_rps,
            ));
        }
        sweep_entries.push(format!(
            concat!(
                "    {{\n",
                "      \"mean_interarrival\": {},\n",
                "      \"serial_fifo\": {},\n",
                "      \"continuous_fifo\": {},\n",
                "      \"continuous_sjf\": {},\n",
                "      \"continuous_fair\": {}\n",
                "    }}"
            ),
            load,
            arm_json(&serial_fifo),
            arm_json(&continuous_fifo),
            arm_json(&continuous_sjf),
            arm_json(&continuous_fair),
        ));
    }

    // The tentpole gate: with requests overlapping, sharing the machine
    // must beat owning it whole — on the tail and on throughput.
    let (cont_p99, serial_p99, cont_goodput, serial_goodput) =
        gate.expect("sweep ran at least one load point");
    assert!(
        cont_p99 < serial_p99,
        "continuous batching must cut p99 latency at overlapping load \
         (continuous {cont_p99} vs serial {serial_p99})"
    );
    assert!(
        cont_goodput > serial_goodput,
        "continuous batching must raise goodput at overlapping load \
         (continuous {cont_goodput:.1} vs serial {serial_goodput:.1})"
    );
    println!(
        "gate passed: p99 {cont_p99} < {serial_p99}, goodput {cont_goodput:.1} > {serial_goodput:.1}"
    );

    // Faulted replay: the same highest-load trace against a DRAM channel
    // answering 4x slowly. Everything must still complete — slower, not
    // wedged — and the artifact pins by how much.
    let faulted_gpu = gpu
        .clone()
        .with_faults(FaultPlan::seeded(0xDEAD).with_event(
            FaultKind::DramChannelThrottle {
                channel: 0,
                latency_multiplier: 4,
            },
            0,
            PERMANENT,
        ));
    let faulted = serve(
        &faulted_gpu,
        LOADS[0],
        ArbitrationPolicy::Fifo,
        BatchingMode::Continuous,
    );
    println!("faulted (DRAM channel 0 throttled 4x):");
    print_arm("continuous fifo", &faulted);
    assert_eq!(
        faulted.timed_out(),
        0,
        "a throttled DRAM channel must degrade, not wedge, the serving path"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving\",\n",
            "  \"clusters\": {},\n",
            "  \"tenants\": 2,\n",
            "  \"requests_per_tenant\": {},\n",
            "  \"sweep\": [\n{}\n  ],\n",
            "  \"faulted_dram_throttle\": {{\n",
            "    \"mean_interarrival\": {},\n",
            "    \"latency_multiplier\": 4,\n",
            "    \"continuous_fifo\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        CLUSTERS,
        PER_TENANT,
        sweep_entries.join(",\n"),
        LOADS[0],
        arm_json(&faulted),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
