//! CI smoke gate for the shared report store: sweep a small grid through a
//! `virgo-store` server and require a *separate* process to answer from it.
//!
//! Two ways to run:
//!
//! * **CI (two processes)** — a `virgo-store` server is started out-of-band
//!   and named via `VIRGO_SWEEP_STORE=host:port`; this bench is then run
//!   twice. The first invocation (`VIRGO_STORE_SMOKE_EXPECT=cold`) computes
//!   every point and write-through PUTs the reports; the second
//!   (`VIRGO_STORE_SMOKE_EXPECT=warm`) is a fresh process with an empty
//!   memory layer and must answer ≥ 90% of the grid straight from the store.
//! * **Standalone** — with no `VIRGO_SWEEP_STORE`, the bench spawns an
//!   in-process server on an ephemeral port and runs both phases itself, so
//!   `cargo bench --bench store_smoke` exercises the same contract locally.
//!
//! Both modes use memory+remote services only (no disk layer), so every
//! warm answer provably crossed the wire.

use std::time::Instant;

use virgo::DesignKind;
use virgo_kernels::GemmShape;
use virgo_store::{EntryDir, StoreServer};
use virgo_sweep::{Query, StoreConfig, SweepService};

/// The sharded 256³ GEMM grid: every design at N ∈ {1, 2, 4} clusters —
/// the same grid `sweep_smoke` gates the disk layer with.
fn grid() -> Vec<Query> {
    let shape = GemmShape::square(256);
    DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            [1u32, 2, 4]
                .into_iter()
                .map(move |n| Query::new(design, shape).clusters(n))
        })
        .collect()
}

/// A fresh process-equivalent: empty memory layer over the remote store
/// only, so every hit must have come over the wire.
fn service_for(addr: &str) -> SweepService {
    SweepService::from_config(
        &StoreConfig::in_memory(StoreConfig::DEFAULT_MEMORY_CAPACITY)
            .with_remote_addr(Some(addr.to_string())),
    )
}

/// Sweeps the grid against `addr` and gates the phase's contract.
fn run_phase(addr: &str, phase: &str) {
    let points = grid();
    let service = service_for(addr);
    let start = Instant::now();
    let outcomes = service.run_all(&points);
    let seconds = start.elapsed().as_secs_f64();
    let hits = outcomes.iter().filter(|o| o.from_cache).count();
    let stats = service.cache_stats();
    println!(
        "store-smoke [{phase}]: {hits}/{} from the store in {seconds:.3}s \
         ({} remote hits, {} misses, {} unreachable ops)",
        points.len(),
        stats.remote_hits,
        stats.misses,
        stats.store_unreachable
    );
    assert_eq!(
        stats.store_unreachable, 0,
        "store at {addr} must be reachable for the whole {phase} phase"
    );
    match phase {
        "cold" => assert_eq!(
            hits, 0,
            "cold phase expects an empty store; found pre-existing entries"
        ),
        "warm" => {
            let rate = stats.remote_hits as f64 / points.len() as f64;
            assert!(
                rate >= 0.9,
                "warm phase must answer >= 90% of the grid from the store: \
                 {:.0}% ({}/{})",
                rate * 100.0,
                stats.remote_hits,
                points.len()
            );
        }
        other => panic!("unknown VIRGO_STORE_SMOKE_EXPECT phase {other:?}"),
    }
    println!("store-smoke [{phase}] gate passed");
}

fn main() {
    let configured = std::env::var("VIRGO_SWEEP_STORE")
        .ok()
        .filter(|v| !v.is_empty() && !v.eq_ignore_ascii_case("off"));
    match configured {
        Some(addr) => {
            // CI mode: the server lives in another process; which side of
            // the contract to gate comes from the environment.
            let phase =
                std::env::var("VIRGO_STORE_SMOKE_EXPECT").unwrap_or_else(|_| "cold".to_string());
            run_phase(&addr, &phase);
        }
        None => {
            // Standalone mode: spawn an in-process server and run both
            // phases against it with fresh process-equivalent services.
            let dir =
                std::env::temp_dir().join(format!("virgo-store-smoke-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir))
                .expect("bind in-process report store")
                .spawn()
                .expect("spawn in-process report store");
            let addr = store.addr().to_string();
            println!("store-smoke: in-process store serving on {addr}");
            run_phase(&addr, "cold");
            run_phase(&addr, "warm");
            store.stop();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
