//! Sweep-engine performance benchmark: worker-pool scaling and cold-vs-warm
//! report-cache timings on the full design × shape grid.
//!
//! Two questions, one per layer of the sweep engine:
//!
//! 1. **Sharding** — how does wall-clock scale with the pool size? The same
//!    grid is swept cold with 1, 2, 4 and 8 workers (each run on a fresh
//!    memory-only service so caching cannot help). Pool sizes are clamped to
//!    the host's cores, so the scaling gate (pool-4 ≥ 2.5× faster than
//!    pool-1) only applies when the host actually has ≥ 4 CPUs; the JSON
//!    records `host_parallelism` so dashboards can tell the difference.
//! 2. **Caching** — how much does memoization buy? The grid is swept once
//!    cold and once warm on the same service; the warm pass must answer
//!    every point from cache and be ≥ 5× faster (in practice it is orders of
//!    magnitude faster — a map lookup versus a simulation).
//!
//! Emits `BENCH_sweep.json` at the workspace root for CI/perf tracking.
//! `VIRGO_GEMM_SIZES` shrinks the grid for smoke runs, as with the table
//! benches.

use std::time::Instant;

use virgo::DesignKind;
use virgo_bench::{gemm_sizes_from_env, print_table};
use virgo_sweep::{host_parallelism, SweepPoint, SweepService};

/// Pool sizes requested by the scaling satellite of the sweep-engine issue.
const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for shape in gemm_sizes_from_env() {
        for design in DesignKind::all() {
            points.push(SweepPoint::gemm(design, shape));
        }
    }
    points
}

struct PoolRun {
    pool_size: usize,
    workers: usize,
    seconds: f64,
}

fn main() {
    let points = grid();
    let host = host_parallelism();
    println!(
        "sweeping {} points (designs x sizes) on a {host}-CPU host",
        points.len()
    );

    // ---- Worker-pool scaling (always cold: fresh memory-only service) ----
    let mut runs: Vec<PoolRun> = Vec::new();
    for pool_size in POOL_SIZES {
        let service = SweepService::in_memory(pool_size);
        let start = Instant::now();
        let outcomes = service.sweep(&points);
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(outcomes.len(), points.len());
        assert!(
            outcomes.iter().all(|o| !o.from_cache),
            "scaling runs must be cold"
        );
        runs.push(PoolRun {
            pool_size,
            workers: service.pool().workers(),
            seconds,
        });
    }
    let pool1 = runs[0].seconds;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.pool_size.to_string(),
                r.workers.to_string(),
                format!("{:.3}", r.seconds),
                format!("{:.2}x", pool1 / r.seconds.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Sweep worker-pool scaling (cold cache)",
        &["pool size", "workers", "seconds", "vs pool=1"],
        &rows,
    );

    // ---- Cold vs warm cache on one service ------------------------------
    let service = SweepService::in_memory(host.max(4));
    let start = Instant::now();
    let cold = service.sweep(&points);
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = service.sweep(&points);
    let warm_seconds = start.elapsed().as_secs_f64();
    assert!(
        warm.iter().all(|o| o.from_cache),
        "warm pass must fully hit"
    );
    assert_eq!(cold.len(), warm.len());
    let stats = service.cache_stats();
    let warm_speedup = cold_seconds / warm_seconds.max(1e-9);
    print_table(
        "Sweep cache: cold vs warm",
        &["pass", "seconds", "hits", "misses"],
        &[
            vec![
                "cold".into(),
                format!("{cold_seconds:.3}"),
                "0".into(),
                stats.misses.to_string(),
            ],
            vec![
                "warm".into(),
                format!("{warm_seconds:.6}"),
                stats.hits.to_string(),
                "0".into(),
            ],
        ],
    );
    println!("warm-cache speedup: {warm_speedup:.0}x");

    // ---- Machine-readable artifact --------------------------------------
    let scaling_entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"pool_size\": {}, \"workers\": {}, \"seconds\": {:.6}, \"speedup_vs_pool1\": {:.4}}}",
                r.pool_size,
                r.workers,
                r.seconds,
                pool1 / r.seconds.max(1e-9)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"grid_points\": {},\n",
            "  \"pool_scaling\": [\n{}\n  ],\n",
            "  \"cache\": {{\"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}, ",
            "\"warm_speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}\n",
            "}}\n"
        ),
        host,
        points.len(),
        scaling_entries.join(",\n"),
        cold_seconds,
        warm_seconds,
        warm_speedup,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("\nwrote {path}");

    // ---- Gates -----------------------------------------------------------
    assert!(
        warm_speedup >= 5.0,
        "warm cache must be >= 5x faster than cold: {warm_speedup:.2}x"
    );
    let pool4 = runs.iter().find(|r| r.pool_size == 4).expect("pool=4 run");
    if host >= 4 {
        let scaling = pool1 / pool4.seconds.max(1e-9);
        assert!(
            scaling >= 2.5,
            "pool=4 must be >= 2.5x faster than pool=1 on a {host}-CPU host: {scaling:.2}x"
        );
        println!("pool scaling gate passed: {scaling:.2}x with 4 workers");
    } else {
        println!(
            "pool scaling gate skipped: host has {host} CPU(s), pool=4 clamps to {} worker(s)",
            pool4.workers
        );
    }
    println!("warm-cache gate passed: {warm_speedup:.0}x (target >= 5x)");
}
