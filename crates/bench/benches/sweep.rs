//! Sweep-engine performance benchmark: worker-pool scaling, cold-vs-warm
//! report-cache timings and the shared report store's hit/degrade behavior
//! on the full design × shape grid.
//!
//! Three questions, one per layer of the sweep engine:
//!
//! 1. **Sharding** — how does wall-clock scale with the pool size? The same
//!    grid is swept cold with 1, 2, 4 and 8 workers (each run on a fresh
//!    memory-only service so caching cannot help). Pool sizes are clamped to
//!    the host's cores, so the scaling gate (pool-4 ≥ 2.5× faster than
//!    pool-1) only applies when the host actually has ≥ 4 CPUs; the JSON
//!    records `host_parallelism` so dashboards can tell the difference.
//! 2. **Caching** — how much does memoization buy? The grid is swept once
//!    cold and once warm on the same service; the warm pass must answer
//!    every point from cache and be ≥ 5× faster (in practice it is orders of
//!    magnitude faster — a map lookup versus a simulation).
//! 3. **Sharing** — does a *fresh* service answer entirely from a warmed
//!    `virgo-store` server? An in-process store is warmed with the cold
//!    pass's reports, a brand-new service (empty memory, no disk) sweeps the
//!    grid against it — zero simulator executions, bit-identical reports —
//!    and then the store is killed and a third service must degrade to
//!    local compute while counting every unreachable store operation.
//!
//! Emits `BENCH_sweep.json` at the workspace root for CI/perf tracking.
//! `VIRGO_GEMM_SIZES` shrinks the grid for smoke runs, as with the table
//! benches.

use std::time::Instant;

use virgo::DesignKind;
use virgo_bench::{gemm_sizes_from_env, print_table, ReportDigest};
use virgo_store::{EntryDir, StoreServer};
use virgo_sweep::{host_parallelism, Query, RemoteStore, ReportStore, StoreConfig, SweepService};

/// Pool sizes requested by the scaling satellite of the sweep-engine issue.
const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn grid() -> Vec<Query> {
    let mut points = Vec::new();
    for shape in gemm_sizes_from_env() {
        for design in DesignKind::all() {
            points.push(Query::new(design, shape));
        }
    }
    points
}

struct PoolRun {
    pool_size: usize,
    workers: usize,
    seconds: f64,
}

fn main() {
    let points = grid();
    let host = host_parallelism();
    println!(
        "sweeping {} points (designs x sizes) on a {host}-CPU host",
        points.len()
    );

    // ---- Worker-pool scaling (always cold: fresh memory-only service) ----
    let mut runs: Vec<PoolRun> = Vec::new();
    for pool_size in POOL_SIZES {
        let service = SweepService::in_memory(pool_size);
        let start = Instant::now();
        let outcomes = service.run_all(&points);
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(outcomes.len(), points.len());
        assert!(
            outcomes.iter().all(|o| !o.from_cache),
            "scaling runs must be cold"
        );
        runs.push(PoolRun {
            pool_size,
            workers: service.pool().workers(),
            seconds,
        });
    }
    let pool1 = runs[0].seconds;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.pool_size.to_string(),
                r.workers.to_string(),
                format!("{:.3}", r.seconds),
                format!("{:.2}x", pool1 / r.seconds.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Sweep worker-pool scaling (cold cache)",
        &["pool size", "workers", "seconds", "vs pool=1"],
        &rows,
    );

    // ---- Cold vs warm cache on one service ------------------------------
    let service = SweepService::in_memory(host.max(4));
    let start = Instant::now();
    let cold = service.run_all(&points);
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = service.run_all(&points);
    let warm_seconds = start.elapsed().as_secs_f64();
    assert!(
        warm.iter().all(|o| o.from_cache),
        "warm pass must fully hit"
    );
    assert_eq!(cold.len(), warm.len());
    let stats = service.cache_stats();
    let warm_speedup = cold_seconds / warm_seconds.max(1e-9);
    print_table(
        "Sweep cache: cold vs warm",
        &["pass", "seconds", "hits", "misses"],
        &[
            vec![
                "cold".into(),
                format!("{cold_seconds:.3}"),
                "0".into(),
                stats.misses.to_string(),
            ],
            vec![
                "warm".into(),
                format!("{warm_seconds:.6}"),
                stats.hits.to_string(),
                "0".into(),
            ],
        ],
    );
    println!("warm-cache speedup: {warm_speedup:.0}x");

    // ---- Shared report store: warm remote pass, then degrade ------------
    let store_dir = std::env::temp_dir().join(format!("virgo-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut store = StoreServer::bind("127.0.0.1:0", EntryDir::new(&store_dir))
        .expect("bind in-process report store")
        .spawn()
        .expect("spawn in-process report store");
    let addr = store.addr().to_string();
    println!("\nin-process report store serving on {addr}");

    // Warm the store out-of-band from the cold pass: PUT every report under
    // exactly the key a fresh service would derive for the same query.
    let warm_writer = RemoteStore::new(addr.clone());
    for outcome in &cold {
        warm_writer.save(service.key_for(&outcome.query), &outcome.report);
    }
    let put_stats = warm_writer.stats();
    assert_eq!(
        put_stats.puts,
        cold.len() as u64,
        "every cold report must be PUT to the store"
    );
    assert_eq!(put_stats.unreachable, 0, "in-process store unreachable");

    // A brand-new service (empty memory, no disk layer) backed only by the
    // warmed store answers the whole grid with zero simulator executions.
    let remote_service = SweepService::from_config(
        &StoreConfig::in_memory(StoreConfig::DEFAULT_MEMORY_CAPACITY)
            .with_remote_addr(Some(addr.clone())),
    );
    let start = Instant::now();
    let via_store = remote_service.run_all(&points);
    let store_seconds = start.elapsed().as_secs_f64();
    assert!(
        via_store.iter().all(|o| o.from_cache),
        "store-warm pass must answer entirely from the store"
    );
    for (cold_outcome, remote_outcome) in cold.iter().zip(&via_store) {
        assert_eq!(
            ReportDigest::of(&cold_outcome.report),
            ReportDigest::of(&remote_outcome.report),
            "{}: store round-trip changed the report",
            remote_outcome.query
        );
    }
    let rstats = remote_service.cache_stats();
    assert_eq!(rstats.remote_hits, points.len() as u64);
    assert_eq!(rstats.misses, 0, "store-warm pass must not miss");
    assert_eq!(rstats.store_unreachable, 0);
    let remote_io = remote_service
        .cache()
        .store_stats_for(virgo_sweep::StoreTier::Remote);
    println!(
        "store-warm IO: {} bytes over the wire in {} us total (~{:.0} us per report)",
        remote_io.bytes_read,
        remote_io.read_micros,
        remote_io.read_micros as f64 / points.len().max(1) as f64
    );

    // Kill the store: a service pointed at the dead address must degrade to
    // local compute — same bits — while counting every unreachable op.
    store.stop();
    let degraded_service = SweepService::from_config(
        &StoreConfig::in_memory(StoreConfig::DEFAULT_MEMORY_CAPACITY)
            .with_remote_addr(Some(addr.clone())),
    );
    let subset: Vec<Query> = points.iter().take(4).cloned().collect();
    let start = Instant::now();
    let degraded = degraded_service.run_all(&subset);
    let degraded_seconds = start.elapsed().as_secs_f64();
    let degraded_completed =
        degraded.len() == subset.len() && degraded.iter().all(|o| !o.from_cache);
    assert!(
        degraded_completed,
        "dead store must degrade to local compute"
    );
    for (cold_outcome, deg) in cold.iter().zip(&degraded) {
        assert_eq!(
            ReportDigest::of(&cold_outcome.report),
            ReportDigest::of(&deg.report),
            "{}: degraded recompute changed the report",
            deg.query
        );
    }
    let dstats = degraded_service.cache_stats();
    assert!(
        dstats.store_unreachable > 0,
        "unreachable store ops must be counted"
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    print_table(
        "Shared report store: warmed remote pass vs killed store",
        &[
            "pass",
            "points",
            "seconds",
            "remote hits",
            "misses",
            "unreachable",
        ],
        &[
            vec![
                "store-warm".into(),
                points.len().to_string(),
                format!("{store_seconds:.6}"),
                rstats.remote_hits.to_string(),
                rstats.misses.to_string(),
                rstats.store_unreachable.to_string(),
            ],
            vec![
                "degraded".into(),
                subset.len().to_string(),
                format!("{degraded_seconds:.3}"),
                dstats.remote_hits.to_string(),
                dstats.misses.to_string(),
                dstats.store_unreachable.to_string(),
            ],
        ],
    );

    // ---- Machine-readable artifact --------------------------------------
    let scaling_entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"pool_size\": {}, \"workers\": {}, \"seconds\": {:.6}, \"speedup_vs_pool1\": {:.4}}}",
                r.pool_size,
                r.workers,
                r.seconds,
                pool1 / r.seconds.max(1e-9)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"grid_points\": {},\n",
            "  \"pool_scaling\": [\n{}\n  ],\n",
            "  \"cache\": {{\"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}, ",
            "\"warm_speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
            "  \"store\": {{\"warm_seconds\": {:.6}, \"remote_hits\": {}, ",
            "\"remote_misses\": {}, \"remote_hit_rate\": {:.4}, \"warm_unreachable\": {}, ",
            "\"bytes_read\": {}, \"read_micros\": {}, ",
            "\"degraded_completed\": {}, \"degraded_unreachable\": {}}}\n",
            "}}\n"
        ),
        host,
        points.len(),
        scaling_entries.join(",\n"),
        cold_seconds,
        warm_seconds,
        warm_speedup,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        store_seconds,
        rstats.remote_hits,
        rstats.misses,
        rstats.hit_rate(),
        rstats.store_unreachable,
        remote_io.bytes_read,
        remote_io.read_micros,
        degraded_completed,
        dstats.store_unreachable,
    );
    // Anchor on the workspace root: cargo runs bench binaries with the
    // package directory (crates/bench) as cwd, but the artifact belongs next
    // to the top-level Cargo.toml where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("\nwrote {path}");

    // ---- Gates -----------------------------------------------------------
    assert!(
        warm_speedup >= 5.0,
        "warm cache must be >= 5x faster than cold: {warm_speedup:.2}x"
    );
    let pool4 = runs.iter().find(|r| r.pool_size == 4).expect("pool=4 run");
    if host >= 4 {
        let scaling = pool1 / pool4.seconds.max(1e-9);
        assert!(
            scaling >= 2.5,
            "pool=4 must be >= 2.5x faster than pool=1 on a {host}-CPU host: {scaling:.2}x"
        );
        println!("pool scaling gate passed: {scaling:.2}x with 4 workers");
    } else {
        println!(
            "pool scaling gate skipped: host has {host} CPU(s), pool=4 clamps to {} worker(s)",
            pool4.workers
        );
    }
    println!("warm-cache gate passed: {warm_speedup:.0}x (target >= 5x)");
    println!(
        "shared-store gate passed: {}/{} remote hits, degraded pass recomputed {} point(s) \
         with {} unreachable op(s) counted",
        rstats.remote_hits,
        points.len(),
        subset.len(),
        dstats.store_unreachable
    );
}
