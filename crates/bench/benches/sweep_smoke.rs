//! CI smoke gate for the sweep engine's disk cache: run the sharded 256³
//! GEMM sweep twice and require the second invocation to answer entirely
//! from cache.
//!
//! "Invocation" here means a fresh service with an *empty memory layer*
//! sharing the on-disk `target/sweep-cache/` directory — exactly what a new
//! process sees. The gates:
//!
//! * the second invocation must be **100% cache hits**, and
//! * when the first invocation was genuinely cold (no disk entries yet), the
//!   second must be ≥ 5× faster wall-clock.
//!
//! CI persists `target/sweep-cache/` across runs (keyed on the source tree,
//! so a simulator change starts cold), so on a cache-restored run the
//! *first* invocation is already disk-warm; the speedup gate is then
//! meaningless (both passes are fast) and is skipped — the hit-rate gate
//! still applies.
//!
//! This bench opts into the disk layer explicitly (it is off by default —
//! `SimKey`s digest simulation inputs, not the simulator's source, so a
//! persistent cache is only sound while the binary is fixed, which is true
//! within one smoke run). `VIRGO_SWEEP_CACHE` still overrides: `off` aborts
//! the gate loudly rather than silently measuring nothing, and a path
//! relocates the cache.

use std::time::Instant;

use virgo::DesignKind;
use virgo_kernels::GemmShape;
use virgo_sweep::{
    default_disk_dir, workspace_cache_dir, Query, ReportCache, SweepPool, SweepService,
    DEFAULT_MAX_CYCLES,
};

/// A fresh "invocation": empty memory cache over the shared disk directory.
fn invocation() -> SweepService {
    let dir = default_disk_dir().unwrap_or_else(workspace_cache_dir);
    SweepService::new(
        SweepPool::with_host_parallelism(),
        ReportCache::new(ReportCache::DEFAULT_CAPACITY, Some(dir)),
        DEFAULT_MAX_CYCLES,
    )
}

fn main() {
    if std::env::var("VIRGO_SWEEP_CACHE").is_ok_and(|v| v.eq_ignore_ascii_case("off")) {
        panic!("sweep-smoke gates the disk cache; run without VIRGO_SWEEP_CACHE=off");
    }
    // The sharded 256³ GEMM sweep: every design at N ∈ {1, 2, 4} clusters.
    let shape = GemmShape::square(256);
    let points: Vec<Query> = DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            [1u32, 2, 4]
                .into_iter()
                .map(move |n| Query::new(design, shape).clusters(n))
        })
        .collect();

    let first = invocation();
    let start = Instant::now();
    let outcomes = first.run_all(&points);
    let first_seconds = start.elapsed().as_secs_f64();
    let first_hits = outcomes.iter().filter(|o| o.from_cache).count();
    println!(
        "first invocation:  {:.3}s, {}/{} from cache",
        first_seconds,
        first_hits,
        points.len()
    );

    let second = invocation();
    let start = Instant::now();
    let outcomes = second.run_all(&points);
    let second_seconds = start.elapsed().as_secs_f64();
    let second_hits = outcomes.iter().filter(|o| o.from_cache).count();
    println!(
        "second invocation: {:.3}s, {}/{} from cache",
        second_seconds,
        second_hits,
        points.len()
    );

    assert_eq!(
        second_hits,
        points.len(),
        "second invocation must be 100% cache hits"
    );
    if first_hits == 0 {
        let speedup = first_seconds / second_seconds.max(1e-9);
        assert!(
            speedup >= 5.0,
            "second invocation must be >= 5x faster than a cold first: {speedup:.2}x"
        );
        println!("sweep-smoke gate passed: {speedup:.0}x faster with 100% hits");
    } else {
        println!(
            "sweep-smoke: first invocation was already disk-warm \
             ({first_hits} hits); speedup gate skipped, hit-rate gate passed"
        );
    }
}
