//! Table 1: scaling trends of NVIDIA datacenter GPUs and CUTLASS GEMM kernel
//! occupancy, regenerated analytically from public specifications.

use virgo_bench::{pct, print_table};
use virgo_energy::scaling::scaling_table;

fn main() {
    let rows: Vec<Vec<String>> = scaling_table()
        .iter()
        .map(|row| {
            vec![
                row.name.to_string(),
                row.architecture.to_string(),
                format!("{:.1}x", row.tensor_fp16_rel),
                format!("{:.1}x", row.cuda_fp32_rel),
                format!("{:.1}x", row.tensor_cores_rel),
                format!("{:.0}", row.macs_per_tc),
                row.register_usage.to_string(),
                pct(row.occupancy),
            ]
        })
        .collect();
    print_table(
        "Table 1: GPU generational scaling and CUTLASS occupancy",
        &[
            "GPU",
            "Arch",
            "Tensor FP16",
            "CUDA FP32",
            "# Tensor Cores",
            "MACs per TC",
            "Register usage",
            "Warp occupancy",
        ],
        &rows,
    );
    println!("\nPaper reference (Table 1): Tensor FP16 1x/2.5x/7.9x, CUDA FP32 1x/1.2x/4.3x,");
    println!("Tensor Cores 1x/0.7x/0.8x, MACs per TC 64/256/512, register usage 224/221/168,");
    println!("occupancy 12.5%/10.0%/14.1%.");
}
