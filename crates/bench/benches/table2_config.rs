//! Table 2: the hardware configuration of the evaluated GPU designs.

use virgo::{DesignKind, GpuConfig};
use virgo_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = DesignKind::all()
        .iter()
        .map(|&design| {
            let cfg = GpuConfig::for_design(design);
            let units = match design {
                DesignKind::Virgo => cfg.matrix_units.len() as u32,
                _ => cfg.cores,
            };
            let macs_per_unit = cfg.peak_macs_per_cycle() / u64::from(units.max(1));
            vec![
                design.name().to_string(),
                cfg.cores.to_string(),
                format!("{}x{}", cfg.core.warps, cfg.core.lanes),
                format!("{} KiB", cfg.smem.capacity_bytes / 1024),
                format!("{}x{}", cfg.smem.banks, cfg.smem.subbanks),
                units.to_string(),
                macs_per_unit.to_string(),
                cfg.peak_macs_per_cycle().to_string(),
                if design.has_dma() { "yes" } else { "no" }.to_string(),
                cfg.matrix_units
                    .first()
                    .map(|u| format!("{} KiB", u.accumulator_bytes / 1024))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        "Table 2: hardware configuration of the evaluated GPU designs",
        &[
            "Design",
            "Cores",
            "Warps x Lanes",
            "SMEM",
            "Banks x Subbanks",
            "Matrix units",
            "MACs/unit",
            "MACs/cluster",
            "DMA",
            "Accum mem",
        ],
        &rows,
    );
    println!("\nAll designs expose 256 FP16 MACs per cluster (iso-throughput comparison), a");
    println!("128 KiB shared memory, 16 KiB L1I/L1D per core, a 512 KiB L2 and a 400 MHz clock.");
}
