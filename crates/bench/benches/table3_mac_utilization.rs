//! Table 3: MAC unit utilization of the GEMM kernel across the four designs
//! and the three problem sizes, plus the Section 6.1.1 retired-instruction
//! comparison.

use virgo_bench::{gemm_sizes_from_env, pct, print_table, run_gemm_all_designs};

fn main() {
    let sizes = gemm_sizes_from_env();
    let mut rows = Vec::new();
    let mut instr_rows = Vec::new();

    for shape in &sizes {
        let results = run_gemm_all_designs(*shape);
        for (design, report) in &results {
            rows.push(vec![
                design.name().to_string(),
                shape.label(),
                pct(report.mac_utilization().as_fraction()),
                report.cycles().get().to_string(),
            ]);
        }
        // Section 6.1.1: retired instructions relative to the Volta-style and
        // Hopper-style designs.
        let volta = results[0].1.instructions_retired() as f64;
        let hopper = results[2].1.instructions_retired() as f64;
        let virgo = results[3].1.instructions_retired() as f64;
        instr_rows.push(vec![
            shape.label(),
            format!("{:.0}", volta),
            format!("{:.0}", hopper),
            format!("{:.0}", virgo),
            format!("{:.2}%", virgo / volta * 100.0),
            format!("{:.1}%", virgo / hopper * 100.0),
        ]);
    }

    print_table(
        "Table 3: MAC unit % utilization of the GEMM kernel",
        &["Design", "GEMM", "MAC util", "Cycles"],
        &rows,
    );
    println!("\nPaper reference (Table 3): Volta 25.6/30.3/30.3, Ampere 37.5/45.6/52.3,");
    println!("Hopper 60.5/72.8/77.0, Virgo 66.1/77.9/86.5 (% for 256/512/1024).");

    print_table(
        "Section 6.1.1: retired instructions",
        &[
            "GEMM",
            "Volta instrs",
            "Hopper instrs",
            "Virgo instrs",
            "Virgo/Volta",
            "Virgo/Hopper",
        ],
        &instr_rows,
    );
    println!("\nPaper reference: Virgo retires 0.5% of Volta-style and 8.0% of Hopper-style instructions.");
}
