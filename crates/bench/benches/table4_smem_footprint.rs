//! Table 4: on-chip shared-memory read footprint of the 256³ GEMM kernel
//! across the three matrix-unit integration styles.

use virgo::DesignKind;
use virgo_bench::{print_table, run_gemm};
use virgo_kernels::GemmShape;

fn main() {
    let shape = GemmShape::square(256);
    let designs = [
        ("Tightly-coupled", DesignKind::AmpereStyle, "8x8 per-core"),
        (
            "Operand-decoupled",
            DesignKind::HopperStyle,
            "16x16 per-core",
        ),
        (
            "Disaggregated (Virgo)",
            DesignKind::Virgo,
            "16x16 per-cluster",
        ),
    ];
    let reports: Vec<_> = designs
        .iter()
        .map(|(label, design, frag)| (*label, *frag, run_gemm(*design, shape)))
        .collect();
    let virgo_bytes = reports
        .last()
        .expect("virgo entry")
        .2
        .smem_read_footprint_bytes() as f64;

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(label, frag, report)| {
            let bytes = report.smem_read_footprint_bytes() as f64;
            vec![
                label.to_string(),
                frag.to_string(),
                format!("{:.2}", bytes / (1024.0 * 1024.0)),
                format!("{:.2}", bytes / virgo_bytes),
            ]
        })
        .collect();
    print_table(
        "Table 4: shared-memory read footprint, 256x256x256 GEMM",
        &[
            "Matrix unit design",
            "Tile fragment",
            "MiB",
            "Norm. to Virgo",
        ],
        &rows,
    );
    println!("\nPaper reference (Table 4): tightly-coupled 6 MiB (2.67x), operand-decoupled");
    println!("4 MiB (1.78x), disaggregated 2.25 MiB (1.00x).");
    println!("\nSection 6.1.3: the Virgo shared memory should also use less energy than the");
    println!("operand-decoupled design (paper: 41% less active energy).");
}
