//! Prints the event-driven scheduler's attribution counters for the bench
//! workloads — a quick profiling aid when tuning the driver.

use virgo::{DesignKind, Gpu, GpuConfig, SimMode};
use virgo_kernels::GemmShape;

fn main() {
    for (name, design, size) in [
        ("virgo_gemm_256", DesignKind::Virgo, 256),
        ("ampere_gemm_128", DesignKind::AmpereStyle, 128),
    ] {
        let config = GpuConfig::for_design(design);
        let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(size));
        let t0 = std::time::Instant::now();
        let _ = Gpu::new(config.clone())
            .run_with_mode(&kernel, 2_000_000_000, SimMode::Naive)
            .expect("run finishes");
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        let report = Gpu::new(config.clone())
            .run_with_mode(&kernel, 2_000_000_000, SimMode::FastForward)
            .expect("run finishes");
        let ff_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{name}: naive={naive_ms:.2}ms ff={ff_ms:.2}ms");
        let s = *report.sched_stats();
        let c = report.core_stats();
        println!(
            "{name}: cycles={} clusters={} cores={} {s:?}",
            report.cycles().get(),
            config.clusters,
            config.cores,
        );
        println!(
            "  core: active={} stall={} idle={} total={} instrs={}",
            c.active_cycles, c.stall_cycles, c.idle_cycles, c.total_cycles, c.instrs_issued
        );
    }
}
