//! A minimal JSON reader for the committed `BENCH_*.json` artifacts.
//!
//! The bench-regression differ (`--bin bench_diff`) compares freshly
//! produced bench artifacts against the copies committed at the workspace
//! root, so it needs to *read* the JSON the benches write. The workspace is
//! dependency-free, so this module provides a ~100-line recursive-descent
//! parser over the subset the benches emit (objects, arrays, strings,
//! numbers, booleans, null) plus a flattener that turns a document into
//! `(dotted.path, value)` leaves for metric-by-metric comparison.

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` (every bench metric is
/// either an integer counter that fits exactly or a float to begin with).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Key/value pairs in document order.
    Object(Vec<(String, JsonValue)>),
    /// Array elements in document order.
    Array(Vec<JsonValue>),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    pos: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError {
            msg: msg.to_string(),
            pos: self.pos,
        })
    }

    fn peek(&mut self) -> Option<u8> {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                return Some(b);
            }
        }
        None
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected {lit:?}"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return self.err("unsupported escape"),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match raw.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => self.err(&format!("bad number {raw:?}")),
        }
    }
}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    if p.peek().is_some() {
        return p.err("trailing garbage after document");
    }
    Ok(value)
}

/// Flattens a document into `(dotted.path, leaf)` pairs in document order:
/// object keys join with `.`, array elements with `[index]`.
pub fn flatten(value: &JsonValue) -> Vec<(String, JsonValue)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &JsonValue, path: String, out: &mut Vec<(String, JsonValue)>) {
    match value {
        JsonValue::Object(fields) => {
            for (key, v) in fields {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(v, child, out);
            }
        }
        JsonValue::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                walk(v, format!("{path}[{i}]"), out);
            }
        }
        leaf => out.push((path, leaf.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = parse(
            r#"{"bench": "dsm_scaling", "points": [
                {"clusters": 2, "dsm": true, "cycles": 123, "util": 45.5},
                {"clusters": 4, "dsm": false, "cycles": 456, "util": 12.25}
            ]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("dsm_scaling"));
        let points = match doc.get("points").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(points[1].get("cycles").unwrap().as_num(), Some(456.0));
        assert_eq!(points[0].get("dsm").unwrap(), &JsonValue::Bool(true));
    }

    #[test]
    fn flatten_produces_dotted_paths() {
        let doc = parse(r#"{"a": {"b": [1, {"c": 2}]}, "d": "x"}"#).unwrap();
        let leaves = flatten(&doc);
        assert_eq!(
            leaves,
            vec![
                ("a.b[0]".to_string(), JsonValue::Num(1.0)),
                ("a.b[1].c".to_string(), JsonValue::Num(2.0)),
                ("d".to_string(), JsonValue::Str("x".to_string())),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\": 1e}").is_err());
    }

    #[test]
    fn u64_counters_roundtrip_exactly_through_f64() {
        // Bench counters stay far below 2^53, so f64 is exact.
        let doc = parse("{\"cycles\": 9007199254740992}").unwrap();
        assert_eq!(
            doc.get("cycles").unwrap().as_num(),
            Some(9007199254740992.0)
        );
    }
}
