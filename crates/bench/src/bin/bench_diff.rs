//! CI bench-regression differ.
//!
//! Compares the freshly produced `BENCH_*.json` artifacts at the workspace
//! root against a baseline snapshot of the committed copies (taken by CI
//! *before* the bench steps overwrite them), and fails when any gate metric
//! regresses beyond its per-metric tolerance. Usage:
//!
//! ```text
//! cargo run -p virgo-bench --bin bench_diff [-- --baseline <dir> [--current <dir>]]
//! ```
//!
//! `--baseline` defaults to `target/bench-baseline` under the workspace
//! root, `--current` to the workspace root itself. Metrics are matched leaf
//! by leaf on their dotted JSON paths; each metric's direction and tolerance
//! comes from its name:
//!
//! * deterministic simulator counters (`cycles`, `dram_bytes`, stall and
//!   energy metrics, ...) regress when they *rise* more than 0.1%,
//! * quality metrics (`mac_utilization_percent`, `performed_macs`,
//!   `bit_identical`) regress when they *fall*,
//! * wall-clock `speedup` gates regress when they fall more than 40%
//!   (shared CI runners are noisy; the benches' own hard floors still
//!   apply), and
//! * host-dependent timings (`*_ms`, `*seconds`, pool scaling, hit rates)
//!   are reported for information only.
//!
//! A baseline metric that disappears from the fresh artifact is a
//! structural failure: intentional bench-shape changes must regenerate the
//! committed `BENCH_*.json` in the same PR.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use virgo_bench::benchjson::{flatten, parse, JsonValue};

/// How one metric is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// Regression when `new > old * (1 + tol)`.
    HigherWorse(f64),
    /// Regression when `new < old * (1 - tol)`.
    LowerWorse(f64),
    /// Identity field: any change is a structural failure.
    Exact,
    /// Informational only.
    Info,
}

/// Classifies a metric by the last segment of its dotted path.
fn classify(path: &str, value: &JsonValue) -> Rule {
    let key = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
    match value {
        JsonValue::Str(_) | JsonValue::Bool(_) | JsonValue::Null => {
            // Identity/shape fields (design names, workload labels, the
            // dsm on/off flag, bit_identical) must not drift.
            Rule::Exact
        }
        JsonValue::Num(_) => match key {
            "cycles"
            | "simulated_cycles"
            | "dram_contention_stall_cycles"
            | "dram_stall_cycles"
            | "dram_bytes"
            | "dram_bursts"
            | "dsm_bytes"
            | "dsm_stall_cycles"
            | "dsm_hop_flits"
            | "energy_mj"
            | "energy_per_mac_pj"
            | "total_energy_mj"
            | "fence_wait_cycles" => Rule::HigherWorse(0.001),
            "mac_utilization_percent" | "performed_macs" | "dram_bytes_saved" => {
                Rule::LowerWorse(0.001)
            }
            "speedup" => Rule::LowerWorse(0.40),
            "clusters" | "dram_channels" => Rule::Exact,
            _ => Rule::Info,
        },
        _ => Rule::Info,
    }
}

fn fmt_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => s.clone(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Null => "null".to_string(),
        other => format!("{other:?}"),
    }
}

struct Row {
    status: &'static str,
    path: String,
    old: String,
    new: String,
    delta: String,
}

/// Diffs one bench artifact; returns the number of regressions.
fn diff_file(name: &str, baseline: &Path, current: &Path, rows: &mut Vec<Row>) -> u32 {
    let read_doc = |path: &Path| -> Result<Vec<(String, JsonValue)>, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        Ok(flatten(
            &parse(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?,
        ))
    };
    let (old_leaves, new_leaves) = match (read_doc(baseline), read_doc(current)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            rows.push(Row {
                status: "ERROR",
                path: name.to_string(),
                old: String::new(),
                new: String::new(),
                delta: e,
            });
            return 1;
        }
    };
    let lookup: std::collections::HashMap<&str, &JsonValue> = new_leaves
        .iter()
        .map(|(path, v)| (path.as_str(), v))
        .collect();

    let mut regressions = 0;
    for (path, old) in &old_leaves {
        let label = format!("{name}:{path}");
        let Some(new) = lookup.get(path.as_str()) else {
            rows.push(Row {
                status: "MISSING",
                path: label,
                old: fmt_value(old),
                new: "-".to_string(),
                delta: "metric vanished — regenerate the committed artifact".to_string(),
            });
            regressions += 1;
            continue;
        };
        let rule = classify(path, old);
        match (rule, old, *new) {
            (Rule::Exact, a, b) if a != b => {
                rows.push(Row {
                    status: "CHANGED",
                    path: label,
                    old: fmt_value(a),
                    new: fmt_value(b),
                    delta: "identity field drifted".to_string(),
                });
                regressions += 1;
            }
            (Rule::Exact, _, _) => {}
            (rule, JsonValue::Num(a), JsonValue::Num(b)) => {
                let delta_pct = if *a == 0.0 {
                    if *b == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (b - a) / a.abs() * 100.0
                };
                let (worse, tol) = match rule {
                    Rule::HigherWorse(tol) => (*b > *a && (b - a) > a.abs() * tol, tol),
                    Rule::LowerWorse(tol) => (*b < *a && (a - b) > a.abs() * tol, tol),
                    _ => (false, 0.0),
                };
                let status = if matches!(rule, Rule::Info) {
                    if delta_pct == 0.0 {
                        continue; // unchanged informational metrics stay quiet
                    }
                    "info"
                } else if worse {
                    regressions += 1;
                    "REGRESSION"
                } else if delta_pct == 0.0 {
                    continue; // unchanged gate metrics stay quiet
                } else {
                    "ok"
                };
                rows.push(Row {
                    status,
                    path: label,
                    old: fmt_value(&JsonValue::Num(*a)),
                    new: fmt_value(&JsonValue::Num(*b)),
                    delta: if worse {
                        format!("{delta_pct:+.2}% (tolerance {:.1}%)", tol * 100.0)
                    } else {
                        format!("{delta_pct:+.2}%")
                    },
                });
            }
            (_, a, b) => {
                // A gate metric that changed JSON *type* (number -> string,
                // null, ...) is a malformed artifact, not a pass.
                rows.push(Row {
                    status: "TYPE",
                    path: label,
                    old: fmt_value(a),
                    new: fmt_value(b),
                    delta: "metric changed JSON type — regenerate the committed artifact"
                        .to_string(),
                });
                regressions += 1;
            }
        }
    }

    // The reverse direction: a fresh leaf with no baseline counterpart. A
    // new *gate* metric must not slip past the differ ungated — the PR that
    // adds it has to regenerate the committed artifact; purely informational
    // additions are just reported.
    let known: std::collections::HashSet<&str> =
        old_leaves.iter().map(|(path, _)| path.as_str()).collect();
    for (path, new) in &new_leaves {
        if known.contains(path.as_str()) {
            continue;
        }
        let gated = !matches!(classify(path, new), Rule::Info);
        rows.push(Row {
            status: if gated { "NEW" } else { "info" },
            path: format!("{name}:{path}"),
            old: "-".to_string(),
            new: fmt_value(new),
            delta: if gated {
                "new gate metric has no baseline — regenerate the committed artifact".to_string()
            } else {
                "new informational metric".to_string()
            },
        });
        if gated {
            regressions += 1;
        }
    }
    regressions
}

fn main() -> ExitCode {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline = root.join("target/bench-baseline");
    let mut current = root.clone();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" if i + 1 < args.len() => {
                baseline = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--current" if i + 1 < args.len() => {
                current = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_diff [--baseline <dir>] [--current <dir>]");
                return ExitCode::from(2);
            }
        }
    }

    let Ok(entries) = std::fs::read_dir(&baseline) else {
        eprintln!(
            "bench_diff: baseline directory {baseline:?} does not exist; \
             snapshot the committed BENCH_*.json there before running the benches"
        );
        return ExitCode::from(2);
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_diff: no BENCH_*.json baselines in {baseline:?}");
        return ExitCode::from(2);
    }

    let mut rows = Vec::new();
    let mut regressions = 0;
    for name in &names {
        regressions += diff_file(name, &baseline.join(name), &current.join(name), &mut rows);
    }

    // The reverse direction at file granularity: an artifact that exists
    // only in the current tree has no baseline at all, so every metric in
    // it would go ungated — the PR that adds a bench must commit its
    // BENCH_*.json alongside it.
    if let Ok(entries) = std::fs::read_dir(&current) {
        let mut fresh_only: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json") && !names.contains(n))
            .collect();
        fresh_only.sort();
        for name in fresh_only {
            rows.push(Row {
                status: "NEW FILE",
                path: name,
                old: "-".to_string(),
                new: "-".to_string(),
                delta: "artifact has no committed baseline — commit it".to_string(),
            });
            regressions += 1;
        }
    }

    println!(
        "bench_diff: {} artifact(s) against {}",
        names.len(),
        baseline.display()
    );
    if rows.is_empty() {
        println!("all gate metrics identical to the committed baselines");
    } else {
        let widths = rows.iter().fold([6, 6, 3, 3], |w, r| {
            [
                w[0].max(r.status.len()),
                w[1].max(r.path.len()),
                w[2].max(r.old.len()),
                w[3].max(r.new.len()),
            ]
        });
        println!(
            "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  delta",
            "status",
            "metric",
            "old",
            "new",
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
        );
        for r in &rows {
            println!(
                "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {}",
                r.status,
                r.path,
                r.old,
                r.new,
                r.delta,
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            );
        }
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} gate metric(s) regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench_diff: no gate regressions");
        ExitCode::SUCCESS
    }
}
