//! CI bench-regression differ.
//!
//! Compares the freshly produced `BENCH_*.json` artifacts at the workspace
//! root against a baseline snapshot of the committed copies (taken by CI
//! *before* the bench steps overwrite them), and fails when any gate metric
//! regresses beyond its per-metric tolerance. Usage:
//!
//! ```text
//! cargo run -p virgo-bench --bin bench_diff [-- --baseline <dir> [--current <dir>]]
//! ```
//!
//! `--baseline` defaults to `target/bench-baseline` under the workspace
//! root, `--current` to the workspace root itself. The comparison rules —
//! directions, tolerances, and the structural failures for vanished or
//! ungated metrics — live in [`virgo_bench::diff`], where they are pinned
//! by unit tests; this binary only handles artifact discovery and the
//! report table.

use std::path::PathBuf;
use std::process::ExitCode;

use virgo_bench::diff::{diff_file, Row};

fn main() -> ExitCode {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline = root.join("target/bench-baseline");
    let mut current = root.clone();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" if i + 1 < args.len() => {
                baseline = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--current" if i + 1 < args.len() => {
                current = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_diff [--baseline <dir>] [--current <dir>]");
                return ExitCode::from(2);
            }
        }
    }

    let Ok(entries) = std::fs::read_dir(&baseline) else {
        eprintln!(
            "bench_diff: baseline directory {baseline:?} does not exist; \
             snapshot the committed BENCH_*.json there before running the benches"
        );
        return ExitCode::from(2);
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_diff: no BENCH_*.json baselines in {baseline:?}");
        return ExitCode::from(2);
    }

    let mut rows = Vec::new();
    let mut regressions = 0;
    for name in &names {
        regressions += diff_file(name, &baseline.join(name), &current.join(name), &mut rows);
    }

    // The reverse direction at file granularity: an artifact that exists
    // only in the current tree has no baseline at all, so every metric in
    // it would go ungated — the PR that adds a bench must commit its
    // BENCH_*.json alongside it.
    if let Ok(entries) = std::fs::read_dir(&current) {
        let mut fresh_only: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json") && !names.contains(n))
            .collect();
        fresh_only.sort();
        for name in fresh_only {
            rows.push(Row {
                status: "NEW FILE",
                path: name,
                old: "-".to_string(),
                new: "-".to_string(),
                delta: "artifact has no committed baseline — commit it".to_string(),
            });
            regressions += 1;
        }
    }

    println!(
        "bench_diff: {} artifact(s) against {}",
        names.len(),
        baseline.display()
    );
    if rows.is_empty() {
        println!("all gate metrics identical to the committed baselines");
    } else {
        let widths = rows.iter().fold([6, 6, 3, 3], |w, r| {
            [
                w[0].max(r.status.len()),
                w[1].max(r.path.len()),
                w[2].max(r.old.len()),
                w[3].max(r.new.len()),
            ]
        });
        println!(
            "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  delta",
            "status",
            "metric",
            "old",
            "new",
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
        );
        for r in &rows {
            println!(
                "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {}",
                r.status,
                r.path,
                r.old,
                r.new,
                r.delta,
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            );
        }
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} gate metric(s) regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench_diff: no gate regressions");
        ExitCode::SUCCESS
    }
}
