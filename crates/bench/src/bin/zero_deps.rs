//! CI zero-external-dependencies guard.
//!
//! The workspace must build with no crates from any registry: the build
//! environment has no network access, so an accidental `cargo add` would
//! only surface as a hard failure far from the change that introduced it.
//! This guard pins the invariant explicitly: it parses `Cargo.lock` and
//! fails if any locked package is not a workspace member — equivalently, if
//! any `[[package]]` entry carries a `source` (path dependencies have none;
//! registry and git dependencies always do).
//!
//! ```text
//! cargo run -p virgo-bench --bin zero_deps
//! ```

use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

/// One locked package: its name and whether the entry carried a `source`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LockedPackage {
    name: String,
    source: Option<String>,
}

/// Parses the `[[package]]` entries of a `Cargo.lock` (TOML subset: the lock
/// file is machine-generated, so line-oriented scanning is exact).
fn parse_lock(text: &str) -> Vec<LockedPackage> {
    let mut packages = Vec::new();
    let mut current: Option<LockedPackage> = None;
    for line in text.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            if let Some(done) = current.take() {
                packages.push(done);
            }
            current = Some(LockedPackage {
                name: String::new(),
                source: None,
            });
        } else if let Some(pkg) = current.as_mut() {
            if let Some(value) = line.strip_prefix("name = ") {
                pkg.name = value.trim_matches('"').to_string();
            } else if let Some(value) = line.strip_prefix("source = ") {
                pkg.source = Some(value.trim_matches('"').to_string());
            }
        }
    }
    if let Some(done) = current.take() {
        packages.push(done);
    }
    packages
}

/// Extracts the quoted entries of a `members = [...]` array, whether it is
/// written on one line or spread over several.
fn members_array(manifest: &str) -> Vec<String> {
    let mut dirs = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        let body = if let Some(rest) = line.strip_prefix("members = [") {
            in_members = true;
            rest
        } else if in_members {
            line
        } else {
            continue;
        };
        let (entries, closed) = match body.split_once(']') {
            Some((inside, _)) => (inside, true),
            None => (body, false),
        };
        for entry in entries.split(',') {
            let dir = entry.trim().trim_matches('"');
            if !dir.is_empty() {
                dirs.push(dir.to_string());
            }
        }
        if closed {
            in_members = false;
        }
    }
    dirs
}

/// The `name` of a manifest's `[package]` section (only — target sections
/// like `[[bench]]` also carry `name =` lines and must not count).
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(value) = line.strip_prefix("name = ") {
                return Some(value.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Collects the workspace member package names: the root package plus every
/// `members = [...]` entry's `crates/*/Cargo.toml` name.
fn workspace_members(root: &Path) -> Result<BTreeSet<String>, String> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read root Cargo.toml: {e}"))?;
    let mut names = BTreeSet::new();
    if let Some(name) = package_name(&manifest) {
        names.insert(name);
    }
    for dir in members_array(&manifest) {
        let path = root.join(&dir).join("Cargo.toml");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let name = package_name(&text).ok_or_else(|| format!("{path:?} has no [package] name"))?;
        names.insert(name);
    }
    Ok(names)
}

fn check(lock: &str, members: &BTreeSet<String>) -> Result<usize, Vec<String>> {
    let packages = parse_lock(lock);
    let mut foreign = Vec::new();
    for pkg in &packages {
        if let Some(source) = &pkg.source {
            foreign.push(format!("{} (from {source})", pkg.name));
        } else if !members.contains(&pkg.name) {
            foreign.push(format!("{} (not a workspace member)", pkg.name));
        }
    }
    if foreign.is_empty() {
        Ok(packages.len())
    } else {
        Err(foreign)
    }
}

fn main() -> ExitCode {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let lock = match std::fs::read_to_string(root.join("Cargo.lock")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("zero_deps: cannot read Cargo.lock: {e}");
            return ExitCode::from(2);
        }
    };
    let members = match workspace_members(root) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("zero_deps: {e}");
            return ExitCode::from(2);
        }
    };
    match check(&lock, &members) {
        Ok(count) => {
            println!(
                "zero_deps: all {count} locked packages are workspace members \
                 ({} known members) — no external dependencies",
                members.len()
            );
            ExitCode::SUCCESS
        }
        Err(foreign) => {
            eprintln!(
                "zero_deps: Cargo.lock contains {} non-workspace package(s); \
                 the registry is unreachable in this environment, so external \
                 crates must not be added:",
                foreign.len()
            );
            for entry in foreign {
                eprintln!("  - {entry}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_LOCK: &str = r#"
version = 4

[[package]]
name = "virgo"
version = "0.1.0"
dependencies = [
 "virgo-sim",
]

[[package]]
name = "virgo-sim"
version = "0.1.0"
"#;

    #[test]
    fn workspace_only_lock_passes() {
        let members: BTreeSet<String> = ["virgo", "virgo-sim"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(check(SAMPLE_LOCK, &members), Ok(2));
    }

    #[test]
    fn registry_package_fails() {
        let lock = format!(
            "{SAMPLE_LOCK}\n[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n"
        );
        let members: BTreeSet<String> = ["virgo", "virgo-sim"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = check(&lock, &members).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("serde"), "{err:?}");
        assert!(err[0].contains("registry"), "{err:?}");
    }

    #[test]
    fn unknown_local_package_fails() {
        let members: BTreeSet<String> = ["virgo"].iter().map(|s| s.to_string()).collect();
        let err = check(SAMPLE_LOCK, &members).unwrap_err();
        assert_eq!(err, vec!["virgo-sim (not a workspace member)".to_string()]);
    }

    #[test]
    fn package_name_ignores_target_sections() {
        let manifest = "[[bench]]\nname = \"dsm_scaling\"\n\n[package]\nname = \"virgo-bench\"\n\n[[bin]]\nname = \"zero_deps\"\n";
        assert_eq!(package_name(manifest), Some("virgo-bench".to_string()));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn members_array_parses_single_and_multi_line_forms() {
        let multi = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n";
        assert_eq!(members_array(multi), vec!["crates/a", "crates/b"]);
        let single = "members = [\"crates/a\", \"crates/b\"]\n";
        assert_eq!(members_array(single), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn the_real_lock_file_is_clean() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let lock = std::fs::read_to_string(root.join("Cargo.lock")).expect("Cargo.lock exists");
        let members = workspace_members(root).expect("workspace parses");
        let count = check(&lock, &members).expect("the workspace has no external deps");
        assert_eq!(count, members.len(), "every member is locked exactly once");
    }
}
