//! The bench-regression diff core behind the `bench_diff` CI gate.
//!
//! The `bench_diff` binary compares freshly produced `BENCH_*.json`
//! artifacts against a baseline snapshot of the committed copies and fails
//! CI when a gate metric regresses. The comparison itself lives here, as a
//! pure function over flattened JSON leaves, so its contract is pinned by
//! unit tests rather than only exercised end-to-end in CI. The load-bearing
//! clauses:
//!
//! * a baseline metric **missing** from the fresh artifact is a structural
//!   regression (a bench-shape change must regenerate the committed
//!   artifact in the same PR, or a silently dropped gate would pass forever),
//! * a **new gate** metric with no baseline is equally structural — it must
//!   not slip past the differ ungated,
//! * identity fields (strings, booleans, `clusters`, `dram_channels`) must
//!   not drift at all, and
//! * numeric gates regress directionally with per-metric tolerances
//!   ([`classify`]).

use std::path::Path;

use crate::benchjson::{flatten, parse, JsonValue};

/// How one metric is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Regression when `new > old * (1 + tol)`.
    HigherWorse(f64),
    /// Regression when `new < old * (1 - tol)`.
    LowerWorse(f64),
    /// Identity field: any change is a structural failure.
    Exact,
    /// Informational only.
    Info,
}

/// Classifies a metric by the last segment of its dotted path.
pub fn classify(path: &str, value: &JsonValue) -> Rule {
    let key = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
    match value {
        JsonValue::Str(_) | JsonValue::Bool(_) | JsonValue::Null => {
            // Identity/shape fields (design names, workload labels, the
            // dsm on/off flag, bit_identical) must not drift.
            Rule::Exact
        }
        JsonValue::Num(_) => match key {
            "cycles"
            | "simulated_cycles"
            | "dram_contention_stall_cycles"
            | "dram_stall_cycles"
            | "dram_bytes"
            | "dram_bursts"
            | "dsm_bytes"
            | "dsm_stall_cycles"
            | "dsm_hop_flits"
            | "energy_mj"
            | "energy_per_mac_pj"
            | "total_energy_mj"
            | "fence_wait_cycles"
            | "cycle_overhead_ratio"
            | "degraded_cycles"
            | "dsm_blocked_cycles"
            | "recovery_cycles" => Rule::HigherWorse(0.001),
            // Load-imbalance spreads (max/mean over clusters, 1.0 = perfectly
            // balanced) and the per-link hotspot view: a growing spread or a
            // hotter single link means the partitioning regressed toward
            // all-to-one, even when total cycles still pass.
            "active_spread" | "dsm_ingress_spread" | "dsm_link_max_util_percent" => {
                Rule::HigherWorse(0.001)
            }
            // Mean link utilization dropping means the fabric's aggregate
            // ingress bandwidth is going idle while the same bytes move.
            "dsm_link_mean_util_percent" => Rule::LowerWorse(0.001),
            // Fast-forward horizon attribution: more scheduled events (or
            // fewer skipped cycles) means some component's horizon regressed
            // toward `now`-pinning. The counts are deterministic for a given
            // simulator version, so the tolerance only absorbs rounding.
            "processed_cycles"
            | "simt_events"
            | "gemmini_events"
            | "tensor_events"
            | "dma_events"
            | "dsm_events"
            | "dram_events"
            | "bailout_engagements" => Rule::HigherWorse(0.001),
            // Serving-simulator gates (`BENCH_serve.json`): tail latency and
            // energy-per-request regress upward, goodput regresses downward.
            // The serving pipeline is deterministic end-to-end (seeded trace,
            // deterministic scheduler), so the tolerance only absorbs
            // float formatting.
            "p50_latency_cycles"
            | "p99_latency_cycles"
            | "p999_latency_cycles"
            | "energy_per_request_mj"
            | "makespan_cycles"
            | "timed_out" => Rule::HigherWorse(0.001),
            "goodput_rps" | "completed" => Rule::LowerWorse(0.001),
            // Shared report store gates (`BENCH_sweep.json`): the warmed
            // remote pass must keep answering everything (hit rate 1.0,
            // zero misses) and must never fail to reach its own in-process
            // server. The absolute hit *count* is grid-size-dependent
            // (CI shrinks the grid via VIRGO_GEMM_SIZES) and stays
            // informational; only the invariants are ratcheted.
            "remote_misses" | "warm_unreachable" => Rule::HigherWorse(0.001),
            "remote_hit_rate" => Rule::LowerWorse(0.001),
            "mac_utilization_percent"
            | "performed_macs"
            | "dram_bytes_saved"
            | "skipped_cycles" => Rule::LowerWorse(0.001),
            "speedup" => Rule::LowerWorse(0.40),
            "clusters" | "dram_channels" | "faults_injected" | "rerouted_transfers"
            | "restriped_accesses" => Rule::Exact,
            _ => Rule::Info,
        },
        _ => Rule::Info,
    }
}

/// Renders a JSON leaf for the diff table.
pub fn fmt_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => s.clone(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Null => "null".to_string(),
        other => format!("{other:?}"),
    }
}

/// One line of the diff report.
#[derive(Debug)]
pub struct Row {
    /// Verdict tag (`ok`, `info`, `REGRESSION`, `MISSING`, ...).
    pub status: &'static str,
    /// `artifact:dotted.metric.path`.
    pub path: String,
    /// Baseline value.
    pub old: String,
    /// Fresh value.
    pub new: String,
    /// Human-readable delta / explanation.
    pub delta: String,
}

/// Diffs two flattened artifacts; returns the number of regressions.
///
/// `name` labels the rows (normally the artifact file name). This is the
/// pure core of [`diff_file`], split out so the missing-metric and
/// new-gate contracts are unit-testable without touching the filesystem.
pub fn diff_leaves(
    name: &str,
    old_leaves: &[(String, JsonValue)],
    new_leaves: &[(String, JsonValue)],
    rows: &mut Vec<Row>,
) -> u32 {
    let lookup: std::collections::HashMap<&str, &JsonValue> = new_leaves
        .iter()
        .map(|(path, v)| (path.as_str(), v))
        .collect();

    let mut regressions = 0;
    for (path, old) in old_leaves {
        let label = format!("{name}:{path}");
        let Some(new) = lookup.get(path.as_str()) else {
            rows.push(Row {
                status: "MISSING",
                path: label,
                old: fmt_value(old),
                new: "-".to_string(),
                delta: "metric vanished — regenerate the committed artifact".to_string(),
            });
            regressions += 1;
            continue;
        };
        let rule = classify(path, old);
        match (rule, old, *new) {
            (Rule::Exact, a, b) if a != b => {
                rows.push(Row {
                    status: "CHANGED",
                    path: label,
                    old: fmt_value(a),
                    new: fmt_value(b),
                    delta: "identity field drifted".to_string(),
                });
                regressions += 1;
            }
            (Rule::Exact, _, _) => {}
            (rule, JsonValue::Num(a), JsonValue::Num(b)) => {
                let delta_pct = if *a == 0.0 {
                    if *b == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (b - a) / a.abs() * 100.0
                };
                let (worse, tol) = match rule {
                    Rule::HigherWorse(tol) => (*b > *a && (b - a) > a.abs() * tol, tol),
                    Rule::LowerWorse(tol) => (*b < *a && (a - b) > a.abs() * tol, tol),
                    _ => (false, 0.0),
                };
                let status = if matches!(rule, Rule::Info) {
                    if delta_pct == 0.0 {
                        continue; // unchanged informational metrics stay quiet
                    }
                    "info"
                } else if worse {
                    regressions += 1;
                    "REGRESSION"
                } else if delta_pct == 0.0 {
                    continue; // unchanged gate metrics stay quiet
                } else {
                    "ok"
                };
                rows.push(Row {
                    status,
                    path: label,
                    old: fmt_value(&JsonValue::Num(*a)),
                    new: fmt_value(&JsonValue::Num(*b)),
                    delta: if worse {
                        format!("{delta_pct:+.2}% (tolerance {:.1}%)", tol * 100.0)
                    } else {
                        format!("{delta_pct:+.2}%")
                    },
                });
            }
            (_, a, b) => {
                // A gate metric that changed JSON *type* (number -> string,
                // null, ...) is a malformed artifact, not a pass.
                rows.push(Row {
                    status: "TYPE",
                    path: label,
                    old: fmt_value(a),
                    new: fmt_value(b),
                    delta: "metric changed JSON type — regenerate the committed artifact"
                        .to_string(),
                });
                regressions += 1;
            }
        }
    }

    // The reverse direction: a fresh leaf with no baseline counterpart. A
    // new *gate* metric must not slip past the differ ungated — the PR that
    // adds it has to regenerate the committed artifact; purely informational
    // additions are just reported.
    let known: std::collections::HashSet<&str> =
        old_leaves.iter().map(|(path, _)| path.as_str()).collect();
    for (path, new) in new_leaves {
        if known.contains(path.as_str()) {
            continue;
        }
        let gated = !matches!(classify(path, new), Rule::Info);
        rows.push(Row {
            status: if gated { "NEW" } else { "info" },
            path: format!("{name}:{path}"),
            old: "-".to_string(),
            new: fmt_value(new),
            delta: if gated {
                "new gate metric has no baseline — regenerate the committed artifact".to_string()
            } else {
                "new informational metric".to_string()
            },
        });
        if gated {
            regressions += 1;
        }
    }
    regressions
}

/// Diffs one bench artifact on disk; returns the number of regressions.
pub fn diff_file(name: &str, baseline: &Path, current: &Path, rows: &mut Vec<Row>) -> u32 {
    let read_doc = |path: &Path| -> Result<Vec<(String, JsonValue)>, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        Ok(flatten(
            &parse(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?,
        ))
    };
    let (old_leaves, new_leaves) = match (read_doc(baseline), read_doc(current)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            rows.push(Row {
                status: "ERROR",
                path: name.to_string(),
                old: String::new(),
                new: String::new(),
                delta: e,
            });
            return 1;
        }
    };
    diff_leaves(name, &old_leaves, &new_leaves, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(text: &str) -> Vec<(String, JsonValue)> {
        flatten(&parse(text).expect("test JSON parses"))
    }

    fn diff(old: &str, new: &str) -> (u32, Vec<Row>) {
        let mut rows = Vec::new();
        let n = diff_leaves("t.json", &leaves(old), &leaves(new), &mut rows);
        (n, rows)
    }

    #[test]
    fn identical_artifacts_produce_no_rows() {
        let doc = r#"{"cycles": 100, "design": "Virgo", "elapsed_ms": 5}"#;
        let (regressions, rows) = diff(doc, doc);
        assert_eq!(regressions, 0);
        assert!(rows.is_empty(), "unchanged metrics must stay quiet");
    }

    #[test]
    fn missing_baseline_metric_is_a_regression() {
        // The load-bearing clause: a gate metric present in the committed
        // baseline but absent from the fresh run must fail the diff, even
        // when every surviving metric is bit-identical.
        let (regressions, rows) = diff(
            r#"{"cycles": 100, "performed_macs": 4096}"#,
            r#"{"cycles": 100}"#,
        );
        assert_eq!(regressions, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].status, "MISSING");
        assert!(rows[0].path.contains("performed_macs"));
        assert!(rows[0].delta.contains("regenerate"));
    }

    #[test]
    fn missing_informational_metric_still_fails() {
        // Even an Info-classified leaf vanishing is structural: the shape
        // of the artifact changed without regenerating the baseline.
        let (regressions, rows) = diff(r#"{"cycles": 100, "elapsed_ms": 7}"#, r#"{"cycles": 100}"#);
        assert_eq!(regressions, 1);
        assert_eq!(rows[0].status, "MISSING");
    }

    #[test]
    fn new_gate_metric_without_baseline_is_a_regression() {
        let (regressions, rows) = diff(
            r#"{"cycles": 100}"#,
            r#"{"cycles": 100, "degraded_cycles": 50}"#,
        );
        assert_eq!(regressions, 1);
        assert_eq!(rows[0].status, "NEW");
    }

    #[test]
    fn new_informational_metric_is_reported_not_gated() {
        let (regressions, rows) =
            diff(r#"{"cycles": 100}"#, r#"{"cycles": 100, "elapsed_ms": 12}"#);
        assert_eq!(regressions, 0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].status, "info");
    }

    #[test]
    fn directional_tolerances_gate_numeric_drift() {
        // cycles: higher is worse, 0.1% tolerance.
        let (r, rows) = diff(r#"{"cycles": 1000}"#, r#"{"cycles": 1002}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "REGRESSION");
        // ...but an improvement passes.
        let (r, rows) = diff(r#"{"cycles": 1000}"#, r#"{"cycles": 900}"#);
        assert_eq!(r, 0);
        assert_eq!(rows[0].status, "ok");
        // performed_macs: lower is worse.
        let (r, _) = diff(r#"{"performed_macs": 1000}"#, r#"{"performed_macs": 900}"#);
        assert_eq!(r, 1);
    }

    #[test]
    fn identity_fields_must_not_drift() {
        let (r, rows) = diff(r#"{"design": "Virgo"}"#, r#"{"design": "Ampere"}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "CHANGED");
        let (r, rows) = diff(r#"{"clusters": 8}"#, r#"{"clusters": 4}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "CHANGED");
    }

    #[test]
    fn type_change_on_a_gate_metric_fails() {
        let (r, rows) = diff(r#"{"cycles": 100}"#, r#"{"cycles": "fast"}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "TYPE");
    }

    #[test]
    fn horizon_attribution_metrics_are_gated() {
        // The fastforward artifact's scheduler counters must be gated, not
        // ungated-new: an event-count increase or a skipped-cycle decrease is
        // a horizon regression even when wall-clock speedup still passes.
        let num = JsonValue::Num(100.0);
        for key in [
            "processed_cycles",
            "simt_events",
            "gemmini_events",
            "tensor_events",
            "dma_events",
            "dsm_events",
            "dram_events",
            "bailout_engagements",
        ] {
            assert_eq!(
                classify(&format!("comparisons[1].{key}"), &num),
                Rule::HigherWorse(0.001),
                "{key}"
            );
        }
        assert_eq!(
            classify("comparisons[1].skipped_cycles", &num),
            Rule::LowerWorse(0.001)
        );
        // More events than baseline fails; fewer passes.
        let (r, rows) = diff(r#"{"simt_events": 500}"#, r#"{"simt_events": 600}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "REGRESSION");
        let (r, _) = diff(r#"{"simt_events": 500}"#, r#"{"simt_events": 400}"#);
        assert_eq!(r, 0);
        // A bailout appearing where the baseline had none is a regression
        // even from zero (the relative-tolerance guard must not mask it).
        let (r, _) = diff(
            r#"{"bailout_engagements": 0}"#,
            r#"{"bailout_engagements": 1}"#,
        );
        assert_eq!(r, 1);
        // Skipped cycles shrinking means the driver is jumping less.
        let (r, _) = diff(r#"{"skipped_cycles": 9000}"#, r#"{"skipped_cycles": 7000}"#);
        assert_eq!(r, 1);
    }

    #[test]
    fn imbalance_and_link_utilization_metrics_are_gated() {
        // The dsm_scaling artifact's load-imbalance and per-link hotspot
        // metrics must be ratcheted, not informational: a spread creeping
        // back up (or a single link re-hotspotting) is the exact regression
        // the rotated reduction exists to prevent.
        let num = JsonValue::Num(1.0);
        for key in [
            "active_spread",
            "dsm_ingress_spread",
            "dsm_link_max_util_percent",
        ] {
            assert_eq!(
                classify(&format!("points[3].{key}"), &num),
                Rule::HigherWorse(0.001),
                "{key}"
            );
        }
        assert_eq!(
            classify("points[3].dsm_link_mean_util_percent", &num),
            Rule::LowerWorse(0.001)
        );
        // A spread growing from the balanced baseline fails...
        let (r, rows) = diff(
            r#"{"dsm_ingress_spread": 1.05}"#,
            r#"{"dsm_ingress_spread": 2.4}"#,
        );
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "REGRESSION");
        // ...shrinking toward 1.0 passes.
        let (r, _) = diff(
            r#"{"dsm_ingress_spread": 2.4}"#,
            r#"{"dsm_ingress_spread": 1.05}"#,
        );
        assert_eq!(r, 0);
        // Mean link utilization is lower-worse; the max is higher-worse.
        let (r, _) = diff(
            r#"{"dsm_link_mean_util_percent": 40.0}"#,
            r#"{"dsm_link_mean_util_percent": 20.0}"#,
        );
        assert_eq!(r, 1);
        let (r, _) = diff(
            r#"{"dsm_link_max_util_percent": 45.0}"#,
            r#"{"dsm_link_max_util_percent": 90.0}"#,
        );
        assert_eq!(r, 1);
    }

    #[test]
    fn fault_gate_metrics_are_classified() {
        // The fault_resilience artifact's headline gate and its identity
        // counters must be gated, not informational.
        let num = JsonValue::Num(1.5);
        assert_eq!(
            classify("link_kill.cycle_overhead_ratio", &num),
            Rule::HigherWorse(0.001)
        );
        assert_eq!(
            classify("link_kill.degraded_cycles", &num),
            Rule::HigherWorse(0.001)
        );
        assert_eq!(classify("link_kill.faults_injected", &num), Rule::Exact);
        assert_eq!(classify("link_kill.rerouted_transfers", &num), Rule::Exact);
        assert_eq!(classify("link_kill.elapsed_ms", &num), Rule::Info);
    }

    #[test]
    fn store_gate_metrics_are_classified() {
        // The shared-store section of BENCH_sweep.json: invariants are
        // gated, grid-size-dependent counts and latencies stay Info so a
        // smoke-sized CI grid can diff against the full committed artifact.
        let num = JsonValue::Num(0.0);
        for key in ["remote_misses", "warm_unreachable"] {
            assert_eq!(
                classify(&format!("store.{key}"), &num),
                Rule::HigherWorse(0.001),
                "{key}"
            );
        }
        assert_eq!(
            classify("store.remote_hit_rate", &JsonValue::Num(1.0)),
            Rule::LowerWorse(0.001)
        );
        assert_eq!(
            classify("store.degraded_completed", &JsonValue::Bool(true)),
            Rule::Exact
        );
        for key in ["remote_hits", "warm_seconds", "degraded_unreachable"] {
            assert_eq!(classify(&format!("store.{key}"), &num), Rule::Info, "{key}");
        }
        // A store miss appearing where the baseline had none fails even
        // from zero; an unreachable warm-phase op likewise.
        let (r, _) = diff(r#"{"remote_misses": 0}"#, r#"{"remote_misses": 1}"#);
        assert_eq!(r, 1);
        let (r, _) = diff(r#"{"warm_unreachable": 0}"#, r#"{"warm_unreachable": 2}"#);
        assert_eq!(r, 1);
        // The hit rate dropping below 1.0 fails.
        let (r, rows) = diff(r#"{"remote_hit_rate": 1.0}"#, r#"{"remote_hit_rate": 0.9}"#);
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "REGRESSION");
        // The degraded pass flipping to incomplete is an identity failure.
        let (r, _) = diff(
            r#"{"degraded_completed": true}"#,
            r#"{"degraded_completed": false}"#,
        );
        assert_eq!(r, 1);
    }

    #[test]
    fn serving_gate_metrics_are_classified() {
        // The serving artifact's tail-latency/goodput/energy gates must be
        // ratcheted in the right direction, not informational.
        let num = JsonValue::Num(10_000.0);
        for key in [
            "p50_latency_cycles",
            "p99_latency_cycles",
            "p999_latency_cycles",
            "energy_per_request_mj",
            "makespan_cycles",
            "timed_out",
        ] {
            assert_eq!(
                classify(&format!("sweep[2].continuous_fifo.{key}"), &num),
                Rule::HigherWorse(0.001),
                "{key}"
            );
        }
        for key in ["goodput_rps", "completed"] {
            assert_eq!(
                classify(&format!("sweep[2].continuous_fifo.{key}"), &num),
                Rule::LowerWorse(0.001),
                "{key}"
            );
        }
        // Tail latency creeping up fails; dropping passes.
        let (r, rows) = diff(
            r#"{"p99_latency_cycles": 50000}"#,
            r#"{"p99_latency_cycles": 60000}"#,
        );
        assert_eq!(r, 1);
        assert_eq!(rows[0].status, "REGRESSION");
        let (r, _) = diff(
            r#"{"p99_latency_cycles": 50000}"#,
            r#"{"p99_latency_cycles": 40000}"#,
        );
        assert_eq!(r, 0);
        // Goodput shrinking fails; a request newly timing out fails even
        // from a zero baseline (relative tolerance must not mask it).
        let (r, _) = diff(r#"{"goodput_rps": 900.0}"#, r#"{"goodput_rps": 800.0}"#);
        assert_eq!(r, 1);
        let (r, _) = diff(r#"{"timed_out": 0}"#, r#"{"timed_out": 1}"#);
        assert_eq!(r, 1);
    }
}
