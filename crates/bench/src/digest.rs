//! A comparable, serializable fingerprint of a [`SimReport`].
//!
//! The fast-forward engine promises **bit-identical** reports to the naive
//! one-cycle-at-a-time loop. [`ReportDigest`] captures every quantity that
//! promise covers — cycle count, instruction counts, the full per-core cycle
//! classification, per-component energy and MAC utilization — in a plain
//! `PartialEq` struct — including the DRAM interface and per-channel
//! contention counters — so the equivalence test and the `fastforward`
//! benchmark can compare whole runs with one assertion and emit them as JSON
//! without external dependencies.

use virgo::SimReport;
use virgo_mem::DramStats;
use virgo_simt::CoreStats;

/// Everything the fast-forward equivalence guarantee covers, in one
/// exactly-comparable value.
///
/// Floating-point fields are compared *exactly*: identical event counts feed
/// the same deterministic arithmetic, so equivalent runs produce equal bits,
/// and any tolerance would only mask accounting bugs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDigest {
    /// Design point name.
    pub design: String,
    /// Kernel name.
    pub kernel: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired by the SIMT cores.
    pub instructions_retired: u64,
    /// Busy-register polls issued in `virgo_fence` loops.
    pub fence_poll_instructions: u64,
    /// Cycles with at least one warp spinning in `virgo_fence`.
    pub fence_wait_cycles: u64,
    /// Multiply-accumulates performed by the matrix units.
    pub performed_macs: u64,
    /// MAC utilization in percent (Table 3 metric).
    pub mac_utilization_percent: f64,
    /// Shared-memory read footprint in bytes (Table 4 metric).
    pub smem_bytes_read: u64,
    /// Full per-core event counters, aggregated over the cluster.
    pub core_stats: CoreStats,
    /// DRAM interface counters, summed over channels.
    pub dram_stats: DramStats,
    /// Per-channel DRAM interface counters, in channel order.
    pub dram_channel_stats: Vec<DramStats>,
    /// Wall-clock cycles lost to DRAM-channel contention, summed over
    /// clusters.
    pub dram_contention_stall_cycles: u64,
    /// Per-cluster contention stalls, in cluster order.
    pub per_cluster_stall_cycles: Vec<u64>,
    /// Transfers carried by the inter-cluster DSM fabric.
    pub dsm_transfers: u64,
    /// Bytes moved cluster-to-cluster over the DSM fabric.
    pub dsm_bytes: u64,
    /// Exposed DSM link-queueing cycles, summed over requesters.
    pub dsm_stall_cycles: u64,
    /// Flit-hop traversals on the DSM fabric (the link energy event count).
    pub dsm_hop_flits: u64,
    /// Per-cluster DSM bytes pushed, in requester order.
    pub per_cluster_dsm_bytes: Vec<u64>,
    /// Per-cluster SIMT active cycles, in cluster order — the compute side
    /// of the load-imbalance view.
    pub per_cluster_active_cycles: Vec<u64>,
    /// Per-cluster DSM ingress bytes (traffic arriving at each cluster's
    /// port), in destination order — the reduction side of the
    /// load-imbalance view.
    pub per_cluster_dsm_ingress_bytes: Vec<u64>,
    /// `max / mean` of the per-cluster active cycles (0.0 when idle).
    pub active_spread: f64,
    /// `max / mean` of the per-cluster DSM ingress bytes (0.0 when the
    /// fabric is unused; N on an all-to-one reduction over N clusters).
    pub dsm_ingress_spread: f64,
    /// Total active energy in millijoules.
    pub total_energy_mj: f64,
    /// Total active power in milliwatts.
    pub active_power_mw: f64,
    /// Per-component active energy in microjoules, in report order.
    pub energy_breakdown_uj: Vec<(String, f64)>,
}

impl ReportDigest {
    /// Extracts the digest of a finished run.
    pub fn of(report: &SimReport) -> Self {
        let imbalance = report.load_imbalance();
        ReportDigest {
            design: report.design().to_string(),
            kernel: report.kernel_name().to_string(),
            cycles: report.cycles().get(),
            instructions_retired: report.instructions_retired(),
            fence_poll_instructions: report.fence_poll_instructions(),
            fence_wait_cycles: report.fence_wait_cycles(),
            performed_macs: report.performed_macs(),
            mac_utilization_percent: report.mac_utilization().as_percent(),
            smem_bytes_read: report.smem_read_footprint_bytes(),
            core_stats: *report.core_stats(),
            dram_stats: *report.dram_stats(),
            dram_channel_stats: report.dram_channel_stats().to_vec(),
            dram_contention_stall_cycles: report.dram_contention_stall_cycles(),
            per_cluster_stall_cycles: report
                .per_cluster()
                .iter()
                .map(|c| c.dram_stall_cycles())
                .collect(),
            dsm_transfers: report.dsm_stats().transfers,
            dsm_bytes: report.dsm_stats().bytes,
            dsm_stall_cycles: report.dsm_stats().stall_cycles,
            dsm_hop_flits: report.dsm_stats().hop_flits,
            per_cluster_dsm_bytes: report.per_cluster().iter().map(|c| c.dsm.bytes).collect(),
            active_spread: imbalance.active_spread,
            dsm_ingress_spread: imbalance.dsm_ingress_spread,
            per_cluster_active_cycles: imbalance.active_cycles,
            per_cluster_dsm_ingress_bytes: imbalance.dsm_ingress_bytes,
            total_energy_mj: report.total_energy_mj(),
            active_power_mw: report.active_power_mw(),
            energy_breakdown_uj: report
                .power()
                .energy_breakdown_uj()
                .iter()
                .map(|(component, energy)| (format!("{component:?}"), *energy))
                .collect(),
        }
    }

    /// Renders the digest as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let breakdown: Vec<String> = self
            .energy_breakdown_uj
            .iter()
            .map(|(name, uj)| format!("{}: {}", json_string(name), json_f64(*uj)))
            .collect();
        let stats = &self.core_stats;
        format!(
            concat!(
                "{{\"design\": {}, \"kernel\": {}, \"cycles\": {}, ",
                "\"instructions_retired\": {}, \"fence_poll_instructions\": {}, ",
                "\"fence_wait_cycles\": {}, \"performed_macs\": {}, ",
                "\"mac_utilization_percent\": {}, \"smem_bytes_read\": {}, ",
                "\"active_cycles\": {}, \"stall_cycles\": {}, \"idle_cycles\": {}, ",
                "\"dram_bytes\": {}, \"dram_bursts\": {}, ",
                "\"dram_contention_stall_cycles\": {}, ",
                "\"dsm_transfers\": {}, \"dsm_bytes\": {}, ",
                "\"dsm_stall_cycles\": {}, \"dsm_hop_flits\": {}, ",
                "\"total_energy_mj\": {}, \"active_power_mw\": {}, ",
                "\"energy_breakdown_uj\": {{{}}}}}"
            ),
            json_string(&self.design),
            json_string(&self.kernel),
            self.cycles,
            self.instructions_retired,
            self.fence_poll_instructions,
            self.fence_wait_cycles,
            self.performed_macs,
            json_f64(self.mac_utilization_percent),
            self.smem_bytes_read,
            stats.active_cycles,
            stats.stall_cycles,
            stats.idle_cycles,
            self.dram_stats.bytes,
            self.dram_stats.bursts,
            self.dram_contention_stall_cycles,
            self.dsm_transfers,
            self.dsm_bytes,
            self.dsm_stall_cycles,
            self.dsm_hop_flits,
            json_f64(self.total_energy_mj),
            json_f64(self.active_power_mw),
            breakdown.join(", ")
        )
    }
}

/// Escapes a string for inclusion in JSON output.
pub(crate) fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; the simulator
/// never produces them, but clamp to null-safe output anyway).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_gemm_with_mode;
    use virgo::{DesignKind, SimMode};
    use virgo_kernels::GemmShape;

    #[test]
    fn digest_roundtrips_basic_quantities() {
        let report = run_gemm_with_mode(
            DesignKind::Virgo,
            GemmShape {
                m: 128,
                n: 128,
                k: 128,
            },
            SimMode::FastForward,
        );
        let digest = ReportDigest::of(&report);
        assert_eq!(digest.cycles, report.cycles().get());
        assert_eq!(digest.design, "Virgo");
        assert!(!digest.energy_breakdown_uj.is_empty());
        let json = digest.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cycles\""));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
    }

    #[test]
    fn json_f64_is_finite_only() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
