//! Shared experiment harness for the benchmark targets that regenerate the
//! paper's tables and figures.
//!
//! Every bench target (`cargo bench -p virgo-bench --bench <name>`) uses the
//! helpers here to build the kernels, run them on the right GPU
//! configurations and print the rows/series the paper reports. All
//! simulation requests flow through the process-wide
//! [`virgo_sweep::SweepService`]: grids are sharded across its bounded
//! worker pool and every report is memoized by content digest — in memory
//! within a process, and across invocations in `target/sweep-cache/` when
//! `VIRGO_SWEEP_CACHE=on` opts the disk layer in — so a figure bench never
//! re-simulates points a table bench already answered. The benches
//! use `harness = false`, so `cargo bench` simply executes them as programs;
//! the `micro_criterion`, `fastforward` and `sweep` targets additionally
//! provide micro-benchmarks of the simulator itself via the dependency-free
//! [`microbench`] harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchjson;
pub mod diff;
pub mod digest;
pub mod microbench;

use virgo::{DesignKind, SimMode, SimReport};
use virgo_kernels::{AttentionShape, GemmShape};
use virgo_sweep::{Query, SweepService};

pub use digest::ReportDigest;
pub use microbench::Measurement;

/// Cycle budget used for every simulation; generous enough for the largest
/// (1024³ Volta-style) run. Re-exported from the sweep engine so every
/// harness (and its cache keys) agrees on one budget.
pub const MAX_CYCLES: u64 = virgo_sweep::DEFAULT_MAX_CYCLES;

/// The process-wide sweep service every helper below answers from.
pub fn sweep_service() -> &'static SweepService {
    SweepService::global()
}

/// Runs the GEMM kernel for `shape` on the given design point.
///
/// # Panics
///
/// Panics if the simulation does not complete (which would indicate a kernel
/// generation bug, not a user error).
pub fn run_gemm(design: DesignKind, shape: GemmShape) -> SimReport {
    run_gemm_with_mode(design, shape, SimMode::FastForward)
}

/// Runs the GEMM kernel for `shape` on the given design point with an
/// explicit simulation-loop mode — used by the fast-forward equivalence test
/// and the `fastforward` benchmark.
///
/// # Panics
///
/// Panics if the simulation does not complete.
pub fn run_gemm_with_mode(design: DesignKind, shape: GemmShape, mode: SimMode) -> SimReport {
    run_gemm_clusters(design, shape, 1, mode)
}

/// Runs the GEMM kernel for `shape` on `clusters` clusters of the given
/// design point with an explicit simulation-loop mode — the entry point of
/// the `clusters_scaling` bench and the multi-cluster equivalence tests.
///
/// # Panics
///
/// Panics if the simulation does not complete.
pub fn run_gemm_clusters(
    design: DesignKind,
    shape: GemmShape,
    clusters: u32,
    mode: SimMode,
) -> SimReport {
    (*sweep_service()
        .run(&Query::new(design, shape).clusters(clusters).mode(mode))
        .report)
        .clone()
}

/// Runs the FlashAttention-3 kernel for `shape` on `clusters` clusters of a
/// design point (Virgo or Ampere-style) with an explicit simulation-loop
/// mode.
///
/// # Panics
///
/// Panics if the design point is not Virgo or Ampere-style, or the
/// simulation does not complete.
pub fn run_flash_attention_clusters(
    design: DesignKind,
    shape: AttentionShape,
    clusters: u32,
    mode: SimMode,
) -> SimReport {
    (*sweep_service()
        .run(&Query::new(design, shape).clusters(clusters).mode(mode))
        .report)
        .clone()
}

/// Runs the GEMM kernel for `shape` on every design point, sharded across
/// the sweep service's worker pool. Results are returned in
/// [`DesignKind::all`] order.
pub fn run_gemm_all_designs(shape: GemmShape) -> Vec<(DesignKind, SimReport)> {
    let queries: Vec<Query> = DesignKind::all()
        .into_iter()
        .map(|design| Query::new(design, shape))
        .collect();
    sweep_service()
        .run_all(&queries)
        .into_iter()
        .map(|outcome| {
            let design = outcome.point().expect("built from a point").design;
            (design, (*outcome.report).clone())
        })
        .collect()
}

/// Runs the FlashAttention-3 kernel (paper configuration) on a design point
/// using its FP32 configuration.
///
/// # Panics
///
/// Panics if the design point is not Virgo or Ampere-style, or the simulation
/// does not complete.
pub fn run_flash_attention(design: DesignKind) -> SimReport {
    run_flash_attention_with_mode(design, SimMode::FastForward)
}

/// Runs the FlashAttention-3 kernel with an explicit simulation-loop mode.
///
/// # Panics
///
/// Panics if the design point is not Virgo or Ampere-style, or the simulation
/// does not complete.
pub fn run_flash_attention_with_mode(design: DesignKind, mode: SimMode) -> SimReport {
    run_flash_attention_clusters(design, AttentionShape::paper_default(), 1, mode)
}

/// Prints a fixed-width table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Prints the sweep-cache counters — called by the long sweep benches so
/// hit/miss/eviction behavior is visible in every run's output.
pub fn print_cache_summary() {
    let stats = sweep_service().cache_stats();
    println!(
        "sweep cache: {} hits ({} from disk, {} from store), {} misses, {} evictions, \
         {} corrupt entries rejected, {} store ops unreachable ({:.0}% hit rate)",
        stats.hits,
        stats.disk_hits,
        stats.remote_hits,
        stats.misses,
        stats.evictions,
        stats.disk_rejects,
        stats.store_unreachable,
        stats.hit_rate() * 100.0
    );
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a milliwatt value.
pub fn mw(value: f64) -> String {
    format!("{value:.1} mW")
}

/// Formats a microjoule value.
pub fn uj(value: f64) -> String {
    format!("{value:.1} uJ")
}

/// Reads the GEMM sizes to sweep from the `VIRGO_GEMM_SIZES` environment
/// variable (comma-separated), defaulting to the paper's 256/512/1024.
///
/// Setting e.g. `VIRGO_GEMM_SIZES=256` makes the long benches fast for smoke
/// testing. A value with no parseable sizes falls back to the defaults (with
/// a warning) rather than silently producing an empty sweep.
pub fn gemm_sizes_from_env() -> Vec<GemmShape> {
    match std::env::var("VIRGO_GEMM_SIZES") {
        Ok(value) => {
            let sizes: Vec<GemmShape> = value
                .split(',')
                .filter_map(|s| s.trim().parse::<u32>().ok())
                .map(GemmShape::square)
                .collect();
            if sizes.is_empty() {
                eprintln!(
                    "warning: VIRGO_GEMM_SIZES={value:?} contains no sizes; \
                     using the paper defaults"
                );
                GemmShape::paper_sizes().to_vec()
            } else {
                sizes
            }
        }
        Err(_) => GemmShape::paper_sizes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.661), "66.1%");
        assert_eq!(mw(123.45), "123.5 mW");
        assert_eq!(uj(7.0), "7.0 uJ");
    }

    #[test]
    fn default_gemm_sizes_match_paper() {
        std::env::remove_var("VIRGO_GEMM_SIZES");
        let sizes = gemm_sizes_from_env();
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes[0], GemmShape::square(256));
    }

    #[test]
    fn small_gemm_runs_on_every_design() {
        // A reduced-size smoke test of the full simulation pipeline, through
        // the sweep service (parallel across designs, memoized).
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 128,
        };
        let results = run_gemm_all_designs(shape);
        assert_eq!(results.len(), 4);
        for (design, report) in &results {
            assert!(report.cycles().get() > 0, "{design}");
            assert!(report.performed_macs() > 0, "{design}");
        }
        // The single-point helper answers from the same cache, bit-identical.
        let again = run_gemm(results[0].0, shape);
        assert_eq!(
            ReportDigest::of(&again),
            ReportDigest::of(&results[0].1),
            "cached helper answer must be bit-identical to the sweep's"
        );
    }
}
