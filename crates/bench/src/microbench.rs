//! A tiny wall-clock micro-benchmark harness.
//!
//! The workspace builds without any external dependencies (the environments
//! it targets have no registry access), so instead of Criterion this module
//! provides the minimal subset the perf-tracking benches need: warmup, a
//! fixed iteration count, and min/mean wall-clock statistics over the runs.
//! Benches that care about statistical rigor report the *minimum* — the least
//! noisy estimator for a deterministic workload on a shared machine.

use std::time::{Duration, Instant};

/// Wall-clock measurements of one benchmarked function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Number of measured iterations (excluding warmup).
    pub iterations: u32,
    /// Fastest single iteration.
    pub min: Duration,
    /// Mean over the measured iterations.
    pub mean: Duration,
    /// Total measured time.
    pub total: Duration,
}

impl Measurement {
    /// Fastest iteration in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.min.as_secs_f64() * 1e3
    }

    /// Mean iteration time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// One summary line, printed by the bench targets.
    pub fn summary(&self) -> String {
        format!(
            "{:<40} {:>10.3} ms/iter (min {:.3} ms, {} iters)",
            self.name,
            self.mean_ms(),
            self.min_ms(),
            self.iterations
        )
    }
}

/// Times `f` over `iterations` runs (after one untimed warmup run) and
/// returns the measurement. The closure's result is passed through
/// [`std::hint::black_box`] so the compiler cannot elide the work.
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn time<T>(name: &str, iterations: u32, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iterations > 0, "need at least one iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iterations {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        min = min.min(elapsed);
        total += elapsed;
    }
    Measurement {
        name: name.to_string(),
        iterations,
        min,
        mean: total / iterations,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_runs_the_requested_iterations() {
        let mut count = 0u32;
        let m = time("counter", 5, || {
            count += 1;
            count
        });
        // 5 measured + 1 warmup.
        assert_eq!(count, 6);
        assert_eq!(m.iterations, 5);
        assert!(m.min <= m.mean);
        assert!(m.total >= m.min);
        assert!(m.summary().contains("counter"));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = time("empty", 0, || ());
    }
}
