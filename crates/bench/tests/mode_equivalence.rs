//! Naive ≡ FastForward equivalence for the event-queue scheduler.
//!
//! The fast-forward driver must be an *optimization*, never a semantics
//! change: for any design and cluster count, the report it produces has to be
//! bit-identical (via [`ReportDigest`]) to the naive one-cycle loop's. These
//! tests pin that contract on both tensor-core execution paths — the
//! synchronous tightly-coupled HMMA pipeline (Volta/Ampere-style) and the
//! operand-decoupled wgmma path (Hopper-style) — plus the disaggregated
//! Gemmini path, at one and at four clusters, so both the single-cluster fast
//! path and the multi-cluster due/queue interleaving are covered.
//!
//! A second group pins the scheduler's own health counters: with batched
//! Gemmini operand streaming the adaptive naive-stepping bailout must never
//! engage on the dense virgo GEMM, and the driver must actually skip (not
//! just re-label) the quiescent cycles.

use virgo::{DesignKind, Gpu, GpuConfig, SimMode};
use virgo_bench::ReportDigest;
use virgo_kernels::GemmShape;

const BUDGET: u64 = 50_000_000;

/// Runs one design at one cluster count under both modes and asserts the
/// digests match. Returns the fast-forward report for further checks.
fn assert_modes_agree(design: DesignKind, clusters: u32, size: u32) -> virgo::SimReport {
    let config = GpuConfig::for_design(design).with_clusters(clusters);
    let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(size));
    let naive = Gpu::new(config.clone())
        .run_with_mode(&kernel, BUDGET, SimMode::Naive)
        .expect("naive run finishes");
    let fast = Gpu::new(config)
        .run_with_mode(&kernel, BUDGET, SimMode::FastForward)
        .expect("fast-forward run finishes");
    assert_eq!(
        ReportDigest::of(&naive),
        ReportDigest::of(&fast),
        "{design} N={clusters}: fast-forward diverged from the naive loop"
    );
    fast
}

#[test]
fn tightly_coupled_paths_agree_at_one_and_four_clusters() {
    for design in [DesignKind::VoltaStyle, DesignKind::AmpereStyle] {
        for clusters in [1, 4] {
            assert_modes_agree(design, clusters, 128);
        }
    }
}

#[test]
fn decoupled_and_disaggregated_paths_agree_at_one_and_four_clusters() {
    for design in [DesignKind::HopperStyle, DesignKind::Virgo] {
        for clusters in [1, 4] {
            assert_modes_agree(design, clusters, 128);
        }
    }
}

#[test]
fn bailout_never_engages_on_the_dense_virgo_gemm() {
    // The ISSUE 7 regression gate: batched operand streaming gives the
    // Gemmini units real block-boundary horizons, so the all-components-due
    // bailout (which would degrade the event loop to naive stepping) must
    // stay silent on the paper's headline dense workload.
    let config = GpuConfig::for_design(DesignKind::Virgo);
    let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(256));
    let report = Gpu::new(config)
        .run_with_mode(&kernel, BUDGET, SimMode::FastForward)
        .expect("run finishes");
    let sched = report.sched_stats();
    assert_eq!(
        sched.bailout_engagements, 0,
        "the fast-forward bailout engaged on virgo_gemm_256 — some \
         component's next_activity regressed to pinning the horizon at `now`"
    );
    // And the scheduler must genuinely skip: the dense GEMM spends nearly
    // all its cycles in quiescent DMA/matrix-unit windows.
    assert!(
        sched.skipped_cycles > sched.processed_cycles * 10,
        "expected >90% of cycles skipped, got {sched:?}"
    );
}

#[test]
fn naive_mode_reports_zero_sched_stats() {
    // SchedStats describe the event-driven driver; the naive loop has none.
    // They are excluded from the digest, so this is the only place the
    // asymmetry is allowed — and it must stay all-zero, or the digest
    // exclusion would be hiding a real divergence.
    let config = GpuConfig::for_design(DesignKind::Virgo);
    let kernel = virgo_kernels::build_gemm(&config, GemmShape::square(128));
    let report = Gpu::new(config)
        .run_with_mode(&kernel, BUDGET, SimMode::Naive)
        .expect("run finishes");
    assert_eq!(*report.sched_stats(), virgo::SchedStats::default());
}
