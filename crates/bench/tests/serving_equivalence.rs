//! Digest-level equivalence contracts for the serving layer.
//!
//! The job-table refactor's promise is that multi-job residency is an
//! *extension*, not a semantics change. Two properties pin it at full
//! [`ReportDigest`] granularity (every counter the bench layer ever gates
//! on, bit-for-bit):
//!
//! * **Sequential ≡ standalone.** N requests served one at a time on the
//!   whole machine each produce the digest a standalone [`Gpu::run`] of the
//!   same kernel produces — the single-job path is byte-identical through
//!   the serving stack, with zero re-pins.
//! * **Naive ≡ fast-forward.** A two-tenant concurrent serving run retires
//!   every request with identical digests, admission cycles and makespan
//!   under both time-advance modes, at N ∈ {2, 4} requests per tenant.

use virgo::{Gpu, GpuConfig, SimMode};
use virgo_bench::ReportDigest;
use virgo_kernels::GemmShape;
use virgo_serve::{
    generate_trace, BatchingMode, Request, RequestClass, ServeConfig, Server, TenantSpec,
};

const BUDGET: u64 = 50_000_000;

#[test]
fn sequential_serving_is_bit_identical_to_standalone_runs() {
    let gpu = GpuConfig::virgo().with_clusters(2);
    let classes = [
        RequestClass::Gemm(GemmShape::square(128)),
        RequestClass::Gemm(GemmShape::square(256)),
        RequestClass::Gemm(GemmShape::square(128)),
    ];
    let trace: Vec<Request> = classes
        .iter()
        .enumerate()
        .map(|(i, &class)| Request {
            id: i as u64,
            tenant: "solo".to_string(),
            class,
            arrival: 1 + i as u64,
            clusters: 2,
            budget: BUDGET,
        })
        .collect();
    // Serial batching: each request owns the whole machine in turn, exactly
    // the pre-refactor "one kernel owns the GPU" execution model.
    let report =
        Server::new(ServeConfig::new(gpu.clone()).with_batching(BatchingMode::Serial)).run(&trace);
    assert_eq!(report.completed(), classes.len());

    for (outcome, class) in report.outcomes.iter().zip(&classes) {
        let kernel = class.build(&gpu);
        let standalone = Gpu::new(gpu.clone())
            .run(&kernel, BUDGET)
            .expect("standalone run finishes");
        let served = outcome.report.as_ref().expect("request completed");
        assert_eq!(
            ReportDigest::of(served),
            ReportDigest::of(&standalone),
            "request {} ({}) diverged from its standalone run",
            outcome.id,
            outcome.label,
        );
    }
}

#[test]
fn concurrent_serving_modes_agree_at_two_and_four_requests() {
    let gpu = GpuConfig::virgo().with_clusters(2);
    for per_tenant in [2usize, 4] {
        let tenants = [
            TenantSpec::new("a", 10_000),
            TenantSpec::new("b", 10_000)
                .with_classes(vec![RequestClass::Gemm(GemmShape::square(256))]),
        ];
        let trace = generate_trace(&tenants, per_tenant, 0xC0FFEE);
        let mut digests = Vec::new();
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let report = Server::new(ServeConfig::new(gpu.clone()).with_mode(mode)).run(&trace);
            assert_eq!(report.completed(), trace.len(), "{mode} N={per_tenant}");
            let mut outcomes: Vec<_> = report.outcomes.iter().collect();
            outcomes.sort_by_key(|o| o.id);
            digests.push((
                report.makespan_cycles,
                outcomes
                    .iter()
                    .map(|o| {
                        (
                            o.admitted,
                            o.retired,
                            ReportDigest::of(o.report.as_ref().expect("completed")),
                        )
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        assert_eq!(
            digests[0], digests[1],
            "naive and fast-forward serving diverged at N={per_tenant}"
        );
    }
}
