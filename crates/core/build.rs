//! Digests the simulator's own source tree into `VIRGO_SOURCE_DIGEST`.
//!
//! A `SimKey` hashes the *inputs* of a simulation; this build script gives it
//! the missing ingredient — the identity of the simulator itself — so the
//! sweep engine's on-disk report cache can default on: entries written by an
//! older build of the model miss cleanly instead of serving stale reports.
//!
//! The digest is 64-bit FNV-1a over every `.rs` file (relative path and
//! contents, sorted by path) of the crates that determine simulation
//! semantics. Crates that only *consume* reports (sweep, bench, serve) are
//! deliberately excluded: editing a bench must not invalidate the cache.

use std::path::{Path, PathBuf};

/// The workspace crates whose source defines the simulated machine.
const MODEL_CRATES: &[&str] = &[
    "sim", "isa", "energy", "simt", "mem", "tensor", "gemmini", "core",
];

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("manifest dir"));
    let crates = manifest.parent().expect("crates dir").to_path_buf();
    let mut files = Vec::new();
    for name in MODEL_CRATES {
        let dir = crates.join(name).join("src");
        println!("cargo:rerun-if-changed={}", dir.display());
        collect_sources(&dir, &mut files);
    }
    println!(
        "cargo:rerun-if-changed={}",
        manifest.join("build.rs").display()
    );
    files.sort();

    let mut hash = FNV_OFFSET;
    for path in &files {
        let name = path.strip_prefix(&crates).unwrap_or(path);
        hash = fnv1a(hash, name.to_string_lossy().replace('\\', "/").as_bytes());
        hash = fnv1a(hash, &std::fs::read(path).unwrap_or_default());
    }
    println!("cargo:rustc-env=VIRGO_SOURCE_DIGEST={hash:016x}");
}

fn collect_sources(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}
