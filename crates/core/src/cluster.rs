//! One cluster of the machine: SIMT cores plus the cluster-level devices
//! they share, executing against the machine-wide shared memory back-end.

use virgo_gemmini::{GemminiCommand, GemminiUnit};
use virgo_isa::{decode_remote_smem, DeviceId, Kernel, MmioCommand, WgmmaOp};
use virgo_mem::{
    AccumulatorMemory, Coalescer, DmaEngine, DmaTransfer, DsmFabric, GlobalMemory, MemoryBackend,
    SharedMemory,
};
use virgo_sim::{earliest, Cycle, NextActivity};
use virgo_simt::{
    ClusterPort, ClusterSynchronizer, CoreStats, SimtCore, TickOutcome, WarpSnapshot,
};
use virgo_tensor::{OperandDecoupledUnit, TightlyCoupledUnit};

use crate::config::{DesignKind, GpuConfig};

/// Miscellaneous cluster-level event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// MMIO register writes routed over the cluster interconnect.
    pub mmio_writes: u64,
    /// MMIO writes rejected because the target device queue was full.
    pub mmio_rejects: u64,
    /// Asynchronous operations (DMA transfers and matrix commands) launched.
    pub async_ops_launched: u64,
    /// Asynchronous operations completed.
    pub async_ops_completed: u64,
}

impl ClusterStats {
    /// Adds the counts of `other` into `self` (used to aggregate clusters).
    pub fn merge(&mut self, other: &ClusterStats) {
        self.mmio_writes += other.mmio_writes;
        self.mmio_rejects += other.mmio_rejects;
        self.async_ops_launched += other.async_ops_launched;
        self.async_ops_completed += other.async_ops_completed;
    }
}

/// Everything in the cluster that is *not* a SIMT core: memories,
/// matrix units, DMA, synchronizer and the MMIO/async-tracking glue.
///
/// The cores program against [`ClusterPort`], which the cluster implements by
/// pairing these devices with the machine-wide [`MemoryBackend`] at tick
/// time.
#[derive(Debug)]
pub struct ClusterDevices {
    design: DesignKind,
    /// The cluster shared memory.
    pub smem: SharedMemory,
    /// This cluster's global-memory front-end (the private per-core L1s);
    /// misses feed the shared [`MemoryBackend`].
    pub gmem: GlobalMemory,
    /// Per-core memory coalescers.
    coalescers: Vec<Coalescer>,
    /// The cluster-wide barrier synchronizer.
    pub synchronizer: ClusterSynchronizer,
    /// The cluster DMA engine, when the design has one.
    pub dma: Option<DmaEngine>,
    /// Per-core tightly-coupled tensor units (Volta/Ampere-style).
    pub tightly_units: Vec<TightlyCoupledUnit>,
    /// Per-core operand-decoupled tensor units (Hopper-style).
    pub decoupled_units: Vec<OperandDecoupledUnit>,
    /// Cluster-level disaggregated matrix units (Virgo).
    pub gemmini_units: Vec<GemminiUnit>,
    /// Accumulator memories, one per disaggregated unit.
    pub accumulators: Vec<AccumulatorMemory>,
    /// Outstanding asynchronous cluster operations (DMA + matrix commands).
    async_outstanding: u32,
    /// Monotonic tag source for DMA transfers.
    next_dma_tag: u64,
    stats: ClusterStats,
}

impl ClusterDevices {
    /// Builds the device complement for `cluster` of a configuration, sized
    /// for `participants` warps taking part in cluster barriers.
    pub fn new(config: &GpuConfig, cluster: u32, participants: u64) -> Self {
        let cores = config.cores as usize;
        let (tightly_units, decoupled_units) = match config.design {
            DesignKind::VoltaStyle | DesignKind::AmpereStyle => (
                (0..cores)
                    .map(|_| TightlyCoupledUnit::new(config.tightly))
                    .collect(),
                Vec::new(),
            ),
            DesignKind::HopperStyle => (
                Vec::new(),
                (0..cores)
                    .map(|_| OperandDecoupledUnit::new(config.decoupled))
                    .collect(),
            ),
            DesignKind::Virgo => (Vec::new(), Vec::new()),
        };
        let gemmini_units: Vec<GemminiUnit> = config
            .matrix_units
            .iter()
            .map(|spec| GemminiUnit::new(spec.gemmini))
            .collect();
        let accumulators = config
            .matrix_units
            .iter()
            .map(|spec| AccumulatorMemory::new(spec.accumulator_bytes, 64))
            .collect();
        let line_bytes = u64::from(config.global_memory().l1.line_bytes);
        let mut smem = SharedMemory::new(config.smem);
        if let Some(ecc) = config.faults.ecc_injector(cluster) {
            smem.set_ecc(ecc);
        }

        ClusterDevices {
            design: config.design,
            smem,
            gmem: GlobalMemory::for_cluster(config.global_memory(), cluster),
            coalescers: (0..cores).map(|_| Coalescer::new(line_bytes)).collect(),
            synchronizer: ClusterSynchronizer::new(participants.max(1)),
            dma: config.design.has_dma().then(|| DmaEngine::new(config.dma)),
            tightly_units,
            decoupled_units,
            gemmini_units,
            accumulators,
            async_outstanding: 0,
            next_dma_tag: 0,
            stats: ClusterStats::default(),
        }
    }

    /// Which design point these devices implement.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// Cluster-level event counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Aggregated coalescer statistics across cores.
    pub fn coalescer_ops(&self) -> u64 {
        self.coalescers
            .iter()
            .map(|c| c.stats().line_requests)
            .sum()
    }

    /// Outstanding asynchronous operations, exposed for reports.
    pub fn async_outstanding(&self) -> u32 {
        self.async_outstanding
    }

    /// Advances every cluster device by one cycle. Global-memory traffic
    /// (the DMA engine's endpoints) flows through the shared `backend`;
    /// remote-scratchpad endpoints traverse the machine-wide DSM `fabric`.
    pub fn tick(&mut self, now: Cycle, backend: &mut MemoryBackend, fabric: &mut DsmFabric) {
        // The matrix units' batched operand schedules sit in the shared
        // memory's pending stream-read queue; replaying them at the right
        // points reproduces the reference one-read-per-cycle interleaving
        // exactly. Reads dated before this cycle were issued on earlier
        // (possibly skipped) ticks, so they precede everything this cycle
        // does; reads dated *at* this cycle land between the DMA sub-tick and
        // the core ticks, where the per-cycle FSM used to issue them.
        self.smem.drain_stream_reads(now, false);
        // DMA engine.
        if let Some(dma) = &mut self.dma {
            let completed = dma.tick(
                now,
                &mut self.gmem,
                backend,
                &mut self.smem,
                self.accumulators.first_mut(),
                fabric,
            );
            for _ in &completed {
                self.async_outstanding = self.async_outstanding.saturating_sub(1);
                self.stats.async_ops_completed += 1;
            }
        }
        self.smem.drain_stream_reads(now, true);
        // Disaggregated matrix units.
        for (unit, acc) in self
            .gemmini_units
            .iter_mut()
            .zip(self.accumulators.iter_mut())
        {
            let completed = unit.tick(now, &mut self.smem, acc);
            for _ in 0..completed {
                self.async_outstanding = self.async_outstanding.saturating_sub(1);
                self.stats.async_ops_completed += 1;
            }
        }
        // A command latched this cycle may have scheduled its first read for
        // this very cycle; apply it before the decoupled units and cores run.
        self.smem.drain_stream_reads(now, true);
        // Operand-decoupled tensor units.
        for unit in &mut self.decoupled_units {
            unit.tick(now, &mut self.smem);
        }
    }

    /// Reports the earliest cycle `>= now` at which ticking any cluster
    /// device can change observable state, or `None` when every engine is
    /// drained (see `virgo_sim::activity` for the contract).
    ///
    /// The tightly-coupled tensor units are deliberately absent: they have no
    /// tick; their structural-hazard release cycle reaches the fast-forward
    /// engine through `ClusterPort::hmma_busy_until` instead, so a core whose
    /// runnable warps are all hazard-blocked can jump to it.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut next = self.dma.as_ref().and_then(|d| d.next_activity(now));
        for unit in &self.gemmini_units {
            next = earliest(next, unit.next_activity(now));
        }
        for unit in &self.decoupled_units {
            next = earliest(next, unit.next_activity(now));
        }
        next
    }

    /// Bulk-replays `cycles` skipped ticks of a quiescent window, during
    /// which only closed-form per-cycle accounting advances.
    ///
    /// Within such a window the decoupled units' ticks are no-ops between
    /// milestones, so the counters to replay are the DMA engine's busy time
    /// and the matrix units' mid-block compute schedules (their operand reads
    /// were pre-scheduled on block entry and drain independently).
    pub fn fast_forward(&mut self, cycles: u64) {
        if let Some(dma) = &mut self.dma {
            dma.fast_forward(cycles);
        }
        for unit in &mut self.gemmini_units {
            unit.fast_forward(cycles);
        }
    }

    /// True when every asynchronous engine has drained.
    pub fn quiescent(&self) -> bool {
        self.async_outstanding == 0
            && self.dma.as_ref().is_none_or(DmaEngine::is_idle)
            && self.gemmini_units.iter().all(|u| !u.busy())
            && self.decoupled_units.iter().all(|u| u.pending() == 0)
            && self.smem.stream_reads_pending() == 0
    }

    /// Signature of "work was submitted to the devices": bumps when a core
    /// performs an MMIO write or enqueues into a decoupled tensor unit.
    /// Across a *core* tick neither term can decrease (retirement only
    /// happens in the devices tick), so a changed value means a submission
    /// and the event-driven driver wakes the devices on the next cycle.
    pub(crate) fn inbox_mark(&self) -> u64 {
        self.stats.mmio_writes
            + self
                .decoupled_units
                .iter()
                .map(|u| u64::from(u.pending()))
                .sum::<u64>()
    }

    /// Monotone signature of "an asynchronous operation completed": bumps
    /// when the DMA engine or a matrix unit retires an async op, or a
    /// decoupled tensor unit retires a wgmma. The event-driven driver
    /// compares it across a devices tick to unblock fence/drain-parked cores
    /// on the same cycle, exactly when the naive loop would.
    pub(crate) fn completion_mark(&self) -> u64 {
        self.stats.async_ops_completed
            + self
                .decoupled_units
                .iter()
                .map(|u| u.stats().ops)
                .sum::<u64>()
    }

    fn submit_dma(&mut self, cmd: &virgo_isa::DmaCopyCmd, exec_count: u64) -> bool {
        let Some(dma) = &mut self.dma else {
            // A design without a DMA engine silently drops the command; the
            // kernels generated for such designs never issue one.
            return true;
        };
        let transfer = DmaTransfer {
            src_region: cmd.src.region,
            src_addr: cmd.src.addr.eval(exec_count),
            dst_region: cmd.dst.region,
            dst_addr: cmd.dst.addr.eval(exec_count),
            bytes: cmd.bytes,
            tag: self.next_dma_tag,
        };
        match dma.submit(transfer) {
            Ok(()) => {
                self.next_dma_tag += 1;
                self.async_outstanding += 1;
                self.stats.async_ops_launched += 1;
                true
            }
            Err(_) => {
                self.stats.mmio_rejects += 1;
                false
            }
        }
    }

    fn submit_matrix(
        &mut self,
        unit: u8,
        cmd: &virgo_isa::MatrixComputeCmd,
        exec_count: u64,
    ) -> bool {
        let Some(target) = self.gemmini_units.get_mut(unit as usize) else {
            return true;
        };
        if target.try_submit(GemminiCommand::resolve(cmd, exec_count)) {
            self.async_outstanding += 1;
            self.stats.async_ops_launched += 1;
            true
        } else {
            self.stats.mmio_rejects += 1;
            false
        }
    }
}

/// The borrow context a cluster's cores execute against: the cluster's own
/// devices paired with the machine-wide shared memory back-end and the
/// inter-cluster DSM fabric. This is the [`ClusterPort`] implementation the
/// cores see.
struct ClusterCtx<'a> {
    devices: &'a mut ClusterDevices,
    backend: &'a mut MemoryBackend,
    fabric: &'a mut DsmFabric,
}

impl ClusterPort for ClusterCtx<'_> {
    fn shared_access(&mut self, now: Cycle, _core: u32, lane_addrs: &[u64], write: bool) -> Cycle {
        // Lane addresses in the remote DSM window target a peer cluster's
        // scratchpad over the fabric; a warp's access is uniform (kernel
        // generators never mix local and remote lanes in one instruction),
        // so the first lane decides the route.
        if let Some(&first) = lane_addrs.first() {
            if let Some((peer, _)) = decode_remote_smem(first) {
                debug_assert!(
                    lane_addrs
                        .iter()
                        .all(|&a| decode_remote_smem(a).is_some_and(|(c, _)| c == peer)),
                    "mixed local/remote lanes in one shared access"
                );
                let bytes = lane_addrs.len() as u64 * 4;
                return self.fabric.remote_simt_access(
                    now,
                    self.devices.gmem.cluster(),
                    peer,
                    bytes,
                );
            }
        }
        // Pending matrix-unit stream reads dated up to this cycle precede a
        // core access in the reference schedule (devices tick before cores);
        // under the event-driven driver the devices may be parked mid-block,
        // so replay them here before the core's access claims the banks.
        self.devices.smem.drain_stream_reads(now, true);
        self.devices.smem.access_simt(now, lane_addrs, write).done
    }

    fn global_access(
        &mut self,
        now: Cycle,
        core: u32,
        lane_addrs: &[u64],
        bytes_per_lane: u32,
        write: bool,
    ) -> Cycle {
        let line_bytes = self.devices.coalescers[core as usize].line_bytes();
        let line_requests =
            self.devices.coalescers[core as usize].coalesce_lines(lane_addrs, bytes_per_lane);
        let mut done = now;
        for &line in line_requests {
            done = done.max(self.devices.gmem.access_from_core(
                now,
                core as usize,
                line,
                line_bytes,
                write,
                self.backend,
            ));
        }
        done
    }

    fn try_hmma(&mut self, now: Cycle, core: u32, macs: u32) -> bool {
        self.devices
            .tightly_units
            .get_mut(core as usize)
            .is_some_and(|unit| unit.try_step(now, macs))
    }

    fn hmma_busy_until(&self, now: Cycle, core: u32) -> Option<Cycle> {
        self.devices
            .tightly_units
            .get(core as usize)
            .and_then(|unit| unit.next_activity(now))
    }

    fn try_wgmma(&mut self, _now: Cycle, core: u32, op: &WgmmaOp, exec_count: u64) -> bool {
        self.devices
            .decoupled_units
            .get_mut(core as usize)
            .is_some_and(|unit| unit.try_enqueue(op, exec_count))
    }

    fn wgmma_pending(&self, core: u32) -> u32 {
        self.devices
            .decoupled_units
            .get(core as usize)
            .map_or(0, OperandDecoupledUnit::pending)
    }

    fn mmio_write(
        &mut self,
        _now: Cycle,
        _core: u32,
        device: DeviceId,
        cmd: &MmioCommand,
        exec_count: u64,
    ) -> bool {
        self.devices.stats.mmio_writes += 1;
        match (device, cmd) {
            (DeviceId::Dma(_), MmioCommand::DmaCopy(copy) | MmioCommand::DmaRemote(copy)) => {
                self.devices.submit_dma(copy, exec_count)
            }
            (DeviceId::MatrixUnit(idx), MmioCommand::MatrixCompute(compute)) => {
                self.devices.submit_matrix(idx, compute, exec_count)
            }
            // A mismatched command (e.g. a compute command written to the DMA
            // engine) is accepted and ignored, like a store to a reserved
            // MMIO register.
            _ => true,
        }
    }

    fn async_outstanding(&self) -> u32 {
        self.devices.async_outstanding
    }

    fn barrier_arrive(&mut self, id: u8, warp_global_id: u32) -> u64 {
        self.devices.synchronizer.arrive(id, warp_global_id)
    }

    fn barrier_passed(&self, id: u8, ticket: u64) -> bool {
        self.devices.synchronizer.passed(id, ticket)
    }
}

/// A warp's scheduling state at timeout, with its machine placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedWarpSnapshot {
    /// Cluster the warp ran on.
    pub cluster: u32,
    /// Core within the cluster.
    pub core: u32,
    /// The warp's scheduling state.
    pub snapshot: WarpSnapshot,
    /// Asynchronous cluster operations outstanding when the snapshot was
    /// taken (context for `BlockReason::Fence`).
    pub async_outstanding: u32,
}

/// One GPU cluster: the SIMT cores plus their shared devices.
#[derive(Debug)]
pub struct Cluster {
    config: GpuConfig,
    cluster_id: u32,
    cores: Vec<SimtCore>,
    devices: ClusterDevices,
    /// First cycle at which the cluster participates. Zero normally; a
    /// `FaultKind::LateClusterStart` window holds the whole cluster (cores
    /// and devices) in reset until its `until` cycle.
    start_at: u64,
}

impl Cluster {
    /// Builds cluster `cluster_id` and loads onto it the warps of `kernel`
    /// assigned to that cluster. Warps assigned to other clusters are
    /// ignored; the caller builds one `Cluster` per configured cluster.
    ///
    /// # Panics
    ///
    /// Panics if the kernel assigns one of this cluster's warps to a core
    /// index outside the configuration.
    pub fn new(config: GpuConfig, kernel: &Kernel, cluster_id: u32) -> Self {
        let participants = kernel.warps_on_cluster(cluster_id).count() as u64;
        let devices = ClusterDevices::new(&config, cluster_id, participants);
        let mut cores: Vec<SimtCore> = (0..config.cores)
            .map(|id| SimtCore::new(config.core, id))
            .collect();
        for (index, warp) in kernel.warps_on_cluster(cluster_id).enumerate() {
            assert!(
                (warp.core as usize) < cores.len(),
                "kernel assigns warp to core {} but cluster {} has {} cores",
                warp.core,
                cluster_id,
                cores.len()
            );
            cores[warp.core as usize].assign_warp(index as u32, &warp.program);
        }
        let start_at = config.faults.cluster_start(cluster_id);
        Cluster {
            config,
            cluster_id,
            cores,
            devices,
            start_at,
        }
    }

    /// [`Cluster::new`] with the reset window extended to at least `at`: a
    /// cluster slot loaded mid-session (by a job admitted at cycle `at`)
    /// holds in reset until its admission, or later if a `LateClusterStart`
    /// fault pushes it further.
    ///
    /// # Panics
    ///
    /// Same as [`Cluster::new`].
    pub fn new_at(config: GpuConfig, kernel: &Kernel, cluster_id: u32, at: u64) -> Self {
        let mut cluster = Cluster::new(config, kernel, cluster_id);
        cluster.start_at = cluster.start_at.max(at);
        // Fence-poll rate limiting must be relative to the warp's own birth,
        // or a job admitted at cycle T would charge its first poll of every
        // fence one interval earlier than the same kernel run standalone.
        // Anchoring at the admission cycle (not the fault-extended start) is
        // a no-op at `at == 0`, keeping the single-job path bit-identical.
        for core in &mut cluster.cores {
            core.anchor_fence_polls(virgo_sim::Cycle::new(at));
        }
        cluster
    }

    /// First cycle at which the cluster leaves reset (zero unless a
    /// `LateClusterStart` fault holds it back).
    pub fn start_at(&self) -> u64 {
        self.start_at
    }

    /// The configuration the cluster was built from.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// This cluster's index within the machine.
    pub fn cluster_id(&self) -> u32 {
        self.cluster_id
    }

    /// The cluster devices (memories, matrix units, DMA, synchronizer).
    pub fn devices(&self) -> &ClusterDevices {
        &self.devices
    }

    /// The SIMT cores.
    pub fn cores(&self) -> &[SimtCore] {
        &self.cores
    }

    /// Aggregated core statistics across the cluster.
    pub fn core_stats(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for core in &self.cores {
            total.merge(&core.stats());
        }
        total
    }

    /// Multiply-accumulates performed by this cluster's matrix units.
    pub fn performed_macs(&self) -> u64 {
        self.devices
            .tightly_units
            .iter()
            .map(|u| u.stats().macs)
            .chain(self.devices.decoupled_units.iter().map(|u| u.stats().macs))
            .chain(self.devices.gemmini_units.iter().map(|u| u.stats().macs))
            .sum()
    }

    /// Snapshots every unfinished warp's scheduling state, with placement,
    /// for timeout diagnosis.
    pub fn unfinished_warps(&self) -> Vec<PlacedWarpSnapshot> {
        let outstanding = self.devices.async_outstanding();
        let mut out = Vec::new();
        for core in &self.cores {
            for snapshot in core.warp_snapshots() {
                if !snapshot.finished {
                    out.push(PlacedWarpSnapshot {
                        cluster: self.cluster_id,
                        core: core.core_id(),
                        snapshot,
                        async_outstanding: outstanding,
                    });
                }
            }
        }
        out
    }

    /// Advances the whole cluster by one cycle against the shared back-end
    /// and the inter-cluster DSM fabric.
    pub fn tick(&mut self, now: Cycle, backend: &mut MemoryBackend, fabric: &mut DsmFabric) {
        if now.get() < self.start_at {
            // Held in reset by a late-start fault: nothing in the cluster
            // runs, and no per-cycle counters advance (matching what
            // `fast_forward` skips, so both simulation modes agree).
            return;
        }
        self.devices.tick(now, backend, fabric);
        let mut ctx = ClusterCtx {
            devices: &mut self.devices,
            backend,
            fabric,
        };
        for core in &mut self.cores {
            core.tick(now, &mut ctx);
        }
    }

    /// True when every core has retired its warps and every asynchronous
    /// engine has drained.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(SimtCore::all_finished) && self.devices.quiescent()
    }

    /// Reports the earliest cycle `>= now` at which ticking the cluster can
    /// change observable state (beyond time-uniform stall accounting), or
    /// `None` when nothing in this cluster will ever happen again on its own.
    /// The driver folds this over all clusters; a machine-wide `None` is a
    /// deadlock, which it converts into a timeout without ticking through the
    /// remaining budget.
    pub fn next_activity(
        &mut self,
        now: Cycle,
        backend: &mut MemoryBackend,
        fabric: &mut DsmFabric,
    ) -> Option<Cycle> {
        if now.get() < self.start_at {
            // Nothing can happen before the late-start release; the release
            // cycle itself is the next event, which lets the fast-forward
            // engine jump straight over the held window.
            return Some(Cycle::new(self.start_at));
        }
        let mut next = self.devices.next_activity(now);
        if next == Some(now) {
            return next;
        }
        let ctx = ClusterCtx {
            devices: &mut self.devices,
            backend,
            fabric,
        };
        for core in &mut self.cores {
            match core.next_activity(now, &ctx) {
                Some(t) if t <= now => return Some(now),
                event => next = earliest(next, event),
            }
        }
        next
    }

    /// Jumps the cluster from cycle `from` over `cycles` quiescent ticks,
    /// bulk-replaying exactly the per-cycle accounting the naive loop would
    /// have performed. The caller guarantees, via [`Cluster::next_activity`]
    /// folded over every cluster, that no component can make progress inside
    /// the window.
    pub fn fast_forward(&mut self, from: Cycle, cycles: u64) {
        if from.get() < self.start_at {
            // The window lies inside the held-in-reset period (next_activity
            // pins the horizon to `start_at`, so it can never straddle the
            // release): the naive loop would have skipped every tick too.
            return;
        }
        self.devices.fast_forward(cycles);
        for core in &mut self.cores {
            core.fast_forward(from, cycles);
        }
    }

    // --- Per-component entry points for the event-driven driver -----------
    //
    // The event-queue scheduler (see `run.rs`) advances the cluster's
    // devices and each core independently: a component is ticked only on the
    // cycles it is scheduled for, and the gap since its last tick is
    // bulk-replayed first so per-cycle accounting stays bit-identical to the
    // naive loop, which ticks everything every cycle.

    /// Ticks only the cluster devices (DMA, matrix units, decoupled units).
    pub fn tick_devices(
        &mut self,
        now: Cycle,
        backend: &mut MemoryBackend,
        fabric: &mut DsmFabric,
    ) {
        if now.get() < self.start_at {
            return;
        }
        self.devices.tick(now, backend, fabric);
    }

    /// Ticks only core `core` against the cluster port and returns the
    /// tick's outcome hints for the event-driven driver (see
    /// [`virgo_simt::TickOutcome`]).
    pub fn tick_core(
        &mut self,
        core: usize,
        now: Cycle,
        backend: &mut MemoryBackend,
        fabric: &mut DsmFabric,
    ) -> TickOutcome {
        if now.get() < self.start_at {
            return TickOutcome::default();
        }
        let mut ctx = ClusterCtx {
            devices: &mut self.devices,
            backend,
            fabric,
        };
        self.cores[core].tick(now, &mut ctx)
    }

    /// The devices' own event horizon (see [`ClusterDevices::next_activity`]).
    pub fn devices_next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.devices.next_activity(now)
    }

    /// Core `core`'s event horizon against the cluster port.
    pub fn core_next_activity(
        &mut self,
        core: usize,
        now: Cycle,
        backend: &mut MemoryBackend,
        fabric: &mut DsmFabric,
    ) -> Option<Cycle> {
        let ctx = ClusterCtx {
            devices: &mut self.devices,
            backend,
            fabric,
        };
        self.cores[core].next_activity(now, &ctx)
    }

    /// Bulk-replays `cycles` parked device ticks (DMA busy time, matrix-unit
    /// compute schedules).
    pub fn fast_forward_devices(&mut self, from: Cycle, cycles: u64) {
        if from.get() < self.start_at {
            return;
        }
        self.devices.fast_forward(cycles);
    }

    /// Bulk-replays `cycles` parked ticks of core `core`.
    pub fn fast_forward_core(&mut self, core: usize, from: Cycle, cycles: u64) {
        if from.get() < self.start_at {
            return;
        }
        self.cores[core].fast_forward(from, cycles);
    }

    /// Signature of submissions into the cluster devices (see
    /// [`ClusterDevices::inbox_mark`]).
    pub fn inbox_mark(&self) -> u64 {
        self.devices.inbox_mark()
    }

    /// Signature of asynchronous completions (see
    /// [`ClusterDevices::completion_mark`]).
    pub fn completion_mark(&self) -> u64 {
        self.devices.completion_mark()
    }

    /// Cluster-barrier releases so far (event-driven cross-core wake signal).
    pub fn barrier_release_events(&self) -> u64 {
        self.devices.synchronizer.release_events()
    }

    /// Which device engine classes have an event horizon at or before `now`:
    /// `(dma, gemmini, tensor)`. The event-driven driver samples this right
    /// before a devices tick to attribute the event in
    /// [`crate::report::SchedStats`].
    pub fn due_engines(&self, now: Cycle) -> (bool, bool, bool) {
        let d = &self.devices;
        let due = |h: Option<Cycle>| h.is_some_and(|t| t <= now);
        (
            d.dma.as_ref().is_some_and(|e| due(e.next_activity(now))),
            d.gemmini_units.iter().any(|u| due(u.next_activity(now))),
            d.decoupled_units.iter().any(|u| due(u.next_activity(now))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use virgo_isa::{
        AddrExpr, DataType, DmaCopyCmd, KernelInfo, LaneAccess, MemLoc, ProgramBuilder,
        WarpAssignment, WarpOp,
    };

    fn kernel_with(core: u32, build: impl FnOnce(&mut ProgramBuilder)) -> Kernel {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        Kernel::new(
            KernelInfo::new("test", 0, DataType::Fp16),
            vec![WarpAssignment::new(core, 0, Arc::new(b.build()))],
        )
    }

    fn cluster_with(config: GpuConfig, kernel: &Kernel) -> (Cluster, MemoryBackend, DsmFabric) {
        let clusters = config.clusters.max(1);
        let backend = MemoryBackend::new(config.global_memory(), clusters);
        let fabric = DsmFabric::new(config.dsm, clusters);
        (Cluster::new(config, kernel, 0), backend, fabric)
    }

    fn run(
        cluster: &mut Cluster,
        backend: &mut MemoryBackend,
        fabric: &mut DsmFabric,
        limit: u64,
    ) -> u64 {
        for cycle in 0..limit {
            if cluster.finished() {
                return cycle;
            }
            fabric.tick(Cycle::new(cycle));
            cluster.tick(Cycle::new(cycle), backend, fabric);
        }
        limit
    }

    #[test]
    fn simple_kernel_runs_to_completion() {
        let kernel = kernel_with(0, |b| {
            b.op_n(
                16,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
        });
        let (mut cluster, mut backend, mut fabric) = cluster_with(GpuConfig::virgo(), &kernel);
        let cycles = run(&mut cluster, &mut backend, &mut fabric, 10_000);
        assert!(cycles < 10_000);
        assert_eq!(cluster.core_stats().instrs_issued, 16);
    }

    #[test]
    fn shared_and_global_accesses_reach_the_memories() {
        let access = LaneAccess::contiguous_words(AddrExpr::fixed(0), 8);
        let kernel = kernel_with(0, |b| {
            b.op(WarpOp::LoadGlobal { access });
            b.op(WarpOp::StoreShared { access });
            b.op(WarpOp::WaitLoads);
        });
        let (mut cluster, mut backend, mut fabric) =
            cluster_with(GpuConfig::ampere_style(), &kernel);
        run(&mut cluster, &mut backend, &mut fabric, 100_000);
        assert!(cluster.devices().gmem.stats().l1_accesses > 0);
        assert!(cluster.devices().smem.stats().words_written > 0);
        assert!(cluster.devices().coalescer_ops() > 0);
        assert!(backend.stats().l2_accesses > 0);
    }

    #[test]
    fn dma_command_completes_and_fence_releases() {
        let cmd = MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(0u64),
            MemLoc::shared(0u64),
            4096,
        ));
        let kernel = kernel_with(0, |b| {
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd,
            });
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
        });
        let (mut cluster, mut backend, mut fabric) = cluster_with(GpuConfig::virgo(), &kernel);
        let cycles = run(&mut cluster, &mut backend, &mut fabric, 1_000_000);
        assert!(cycles < 1_000_000, "kernel must finish");
        assert!(cycles > 200, "DMA of 4 KiB cannot be instantaneous");
        let stats = cluster.devices().stats();
        assert_eq!(stats.async_ops_launched, 1);
        assert_eq!(stats.async_ops_completed, 1);
        assert_eq!(cluster.devices().async_outstanding(), 0);
        assert_eq!(backend.cluster_stats(0).dram_requests, 1);
    }

    #[test]
    fn matrix_compute_command_runs_on_gemmini() {
        let cmd = MmioCommand::MatrixCompute(virgo_isa::MatrixComputeCmd {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(64 * 1024),
            acc_addr: 0,
            m: 64,
            n: 64,
            k: 64,
            accumulate: false,
            dtype: DataType::Fp16,
        });
        let kernel = kernel_with(0, |b| {
            b.op(WarpOp::MmioWrite {
                device: DeviceId::MATRIX0,
                cmd,
            });
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
        });
        let (mut cluster, mut backend, mut fabric) = cluster_with(GpuConfig::virgo(), &kernel);
        let cycles = run(&mut cluster, &mut backend, &mut fabric, 1_000_000);
        assert!(cycles < 1_000_000);
        let gemmini = &cluster.devices().gemmini_units[0];
        assert_eq!(gemmini.stats().commands, 1);
        assert_eq!(gemmini.stats().macs, 64 * 64 * 64);
        // The fence made the core wait for the unit: runtime at least the
        // ideal compute time of 64³/256 = 1024 cycles.
        assert!(cycles >= 1024, "finished too early: {cycles}");
    }

    #[test]
    fn hmma_steps_drive_the_tightly_coupled_unit() {
        let kernel = kernel_with(0, |b| {
            b.op_n(
                8,
                WarpOp::HmmaStep {
                    macs: 64,
                    rf_reads: 4,
                    rf_writes: 2,
                },
            );
        });
        let (mut cluster, mut backend, mut fabric) =
            cluster_with(GpuConfig::volta_style(), &kernel);
        run(&mut cluster, &mut backend, &mut fabric, 100_000);
        let unit = &cluster.devices().tightly_units[0];
        assert_eq!(unit.stats().steps, 8);
        assert_eq!(unit.stats().macs, 8 * 64);
    }

    #[test]
    fn wgmma_ops_drive_the_decoupled_unit() {
        let op = virgo_isa::WgmmaOp {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0x8000),
            m: 16,
            n: 16,
            k: 32,
            dtype: DataType::Fp16,
        };
        let kernel = kernel_with(0, |b| {
            b.op(WarpOp::WgmmaInit(op));
            b.op(WarpOp::WgmmaWait);
        });
        let (mut cluster, mut backend, mut fabric) =
            cluster_with(GpuConfig::hopper_style(), &kernel);
        let cycles = run(&mut cluster, &mut backend, &mut fabric, 100_000);
        let unit = &cluster.devices().decoupled_units[0];
        assert_eq!(unit.stats().ops, 1);
        assert!(cycles >= 128, "wgmma wait must cover the compute time");
    }

    #[test]
    fn barrier_synchronizes_warps_across_cores() {
        let program = {
            let mut b = ProgramBuilder::new();
            b.op(WarpOp::Barrier { id: 0 });
            b.op(WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            });
            Arc::new(b.build())
        };
        let kernel = Kernel::new(
            KernelInfo::new("barrier", 0, DataType::Fp16),
            vec![
                WarpAssignment::new(0, 0, Arc::clone(&program)),
                WarpAssignment::new(1, 0, Arc::clone(&program)),
            ],
        );
        let (mut cluster, mut backend, mut fabric) = cluster_with(GpuConfig::virgo(), &kernel);
        let cycles = run(&mut cluster, &mut backend, &mut fabric, 10_000);
        assert!(cycles < 10_000);
        assert_eq!(cluster.devices().synchronizer.release_events(), 1);
        assert_eq!(cluster.core_stats().barrier_arrivals, 2);
    }

    #[test]
    fn cluster_only_loads_its_own_warps() {
        let program = Arc::new({
            let mut b = ProgramBuilder::new();
            b.op(WarpOp::Nop);
            b.build()
        });
        let kernel = Kernel::new(
            KernelInfo::new("split", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(0, 0, 0, Arc::clone(&program)),
                WarpAssignment::on_cluster(1, 0, 0, Arc::clone(&program)),
                WarpAssignment::on_cluster(1, 1, 0, Arc::clone(&program)),
            ],
        );
        let c0 = Cluster::new(GpuConfig::virgo().with_clusters(2), &kernel, 0);
        let c1 = Cluster::new(GpuConfig::virgo().with_clusters(2), &kernel, 1);
        let warps = |c: &Cluster| c.cores().iter().map(SimtCore::warp_count).sum::<usize>();
        assert_eq!(warps(&c0), 1);
        assert_eq!(warps(&c1), 2);
        // Barrier participation is scoped to the cluster's own warps.
        assert_eq!(c0.devices().synchronizer.participants(), 1);
        assert_eq!(c1.devices().synchronizer.participants(), 2);
    }

    #[test]
    fn unfinished_warps_report_block_state() {
        // A lone warp at a two-participant barrier deadlocks.
        let program = {
            let mut b = ProgramBuilder::new();
            b.op(WarpOp::Barrier { id: 3 });
            Arc::new(b.build())
        };
        let kernel = Kernel::new(
            KernelInfo::new("stuck", 0, DataType::Fp16),
            vec![
                WarpAssignment::new(0, 0, Arc::clone(&program)),
                WarpAssignment::new(0, 1, Arc::new(ProgramBuilder::new().build())),
            ],
        );
        let (mut cluster, mut backend, mut fabric) = cluster_with(GpuConfig::virgo(), &kernel);
        run(&mut cluster, &mut backend, &mut fabric, 100);
        let stuck = cluster.unfinished_warps();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].cluster, 0);
        assert_eq!(stuck[0].core, 0);
        assert!(matches!(
            stuck[0].snapshot.block,
            Some(virgo_simt::BlockReason::Barrier { id: 3, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "assigns warp to core")]
    fn kernel_targeting_missing_core_panics() {
        let kernel = kernel_with(12, |b| {
            b.op(WarpOp::Nop);
        });
        let _ = Cluster::new(GpuConfig::hopper_style(), &kernel, 0);
    }
}
