//! GPU configuration and the four evaluated design points.

use virgo_energy::AreaParams;
use virgo_gemmini::GemminiConfig;
use virgo_isa::{DataType, GridPartition, PartitionStrategy};
use virgo_mem::{DmaConfig, DramConfig, DsmConfig, GlobalMemoryConfig, SmemConfig};
use virgo_sim::{FaultPlan, Frequency, StableHash, StableHasher};
use virgo_simt::CoreConfig;
use virgo_tensor::{DecoupledConfig, TightlyCoupledConfig};

/// The matrix-unit integration styles compared in the paper (Section 2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Tightly-coupled matrix unit fed from the register file (Volta-style).
    VoltaStyle,
    /// Tightly-coupled matrix unit plus a cluster DMA engine (Ampere-style).
    AmpereStyle,
    /// Operand-decoupled matrix unit reading operands from shared memory
    /// (Hopper-style).
    HopperStyle,
    /// Physically disaggregated, cluster-level matrix unit (Virgo).
    Virgo,
}

impl DesignKind {
    /// All design points in the order used by the paper's tables.
    pub fn all() -> [DesignKind; 4] {
        [
            DesignKind::VoltaStyle,
            DesignKind::AmpereStyle,
            DesignKind::HopperStyle,
            DesignKind::Virgo,
        ]
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::VoltaStyle => "Volta-style",
            DesignKind::AmpereStyle => "Ampere-style",
            DesignKind::HopperStyle => "Hopper-style",
            DesignKind::Virgo => "Virgo",
        }
    }

    /// True for the designs that include a cluster DMA engine.
    pub fn has_dma(self) -> bool {
        !matches!(self, DesignKind::VoltaStyle)
    }

    /// True for the designs with per-core, core-coupled tensor units.
    pub fn is_core_coupled(self) -> bool {
        !matches!(self, DesignKind::Virgo)
    }
}

impl std::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DesignKind {
    type Err = String;

    /// Parses a paper-style display name (`"Virgo"`, `"Ampere-style"`, ...),
    /// the inverse of [`DesignKind::name`] — used when rehydrating cached
    /// reports.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DesignKind::all()
            .into_iter()
            .find(|d| d.name() == s)
            .ok_or_else(|| format!("unknown design point {s:?}"))
    }
}

impl StableHash for DesignKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            DesignKind::VoltaStyle => 0,
            DesignKind::AmpereStyle => 1,
            DesignKind::HopperStyle => 2,
            DesignKind::Virgo => 3,
        });
    }
}

/// Specification of one disaggregated matrix unit instance (Virgo only).
///
/// The heterogeneous configuration of Section 6.3 instantiates two units with
/// different array sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixUnitSpec {
    /// The systolic array configuration.
    pub gemmini: GemminiConfig,
    /// Private accumulator SRAM capacity in bytes.
    pub accumulator_bytes: u64,
}

impl MatrixUnitSpec {
    /// The Table 2 Virgo FP16 unit: 16×16 array, 32 KiB accumulator.
    pub fn default_fp16() -> Self {
        MatrixUnitSpec {
            gemmini: GemminiConfig::fp16_16x16(),
            accumulator_bytes: 32 * 1024,
        }
    }

    /// The Table 2 Virgo FP32 unit: 8×8 array, 32 KiB accumulator.
    pub fn default_fp32() -> Self {
        MatrixUnitSpec {
            gemmini: GemminiConfig::fp32_8x8(),
            accumulator_bytes: 32 * 1024,
        }
    }

    /// The smaller secondary unit of the Section 6.3 heterogeneous study.
    pub fn small_fp16() -> Self {
        MatrixUnitSpec {
            gemmini: GemminiConfig::fp16_8x8(),
            accumulator_bytes: 16 * 1024,
        }
    }
}

/// Full configuration of one simulated GPU: `clusters` identical clusters,
/// each following Table 2, contending for a shared L2 and DRAM channel.
///
/// The paper's scalability argument (Table 1, Section 3) is that compute
/// scales by adding clusters rather than by growing per-core units; the
/// default presets model the single cluster the paper evaluates, and
/// [`GpuConfig::with_clusters`] scales the machine out.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Which integration style this GPU implements.
    pub design: DesignKind,
    /// Number of clusters in the machine (each one a full Table 2 cluster).
    /// Must be at least 1 — [`GpuConfig::with_clusters`] enforces this, and
    /// every consumer additionally normalizes 0 to 1 defensively.
    pub clusters: u32,
    /// Number of SIMT cores per cluster.
    pub cores: u32,
    /// Per-core microarchitecture.
    pub core: CoreConfig,
    /// Shared-memory configuration.
    pub smem: SmemConfig,
    /// Cluster DMA configuration (instantiated only when the design has one).
    pub dma: DmaConfig,
    /// DRAM interface configuration, including the channel count and
    /// address-interleave granularity of the shared back-end.
    pub dram: DramConfig,
    /// Inter-cluster distributed-shared-memory fabric configuration.
    /// Disabled by default: clusters then interact only through the shared
    /// L2/DRAM back-end, exactly the pre-DSM machine.
    pub dsm: DsmConfig,
    /// Tightly-coupled tensor core configuration (Volta/Ampere-style).
    pub tightly: TightlyCoupledConfig,
    /// Operand-decoupled tensor core configuration (Hopper-style).
    pub decoupled: DecoupledConfig,
    /// Disaggregated matrix units (Virgo; usually exactly one).
    pub matrix_units: Vec<MatrixUnitSpec>,
    /// Operand data type the matrix units are configured for.
    pub dtype: DataType,
    /// SoC clock.
    pub frequency: Frequency,
    /// Deterministic fault-injection schedule. Empty by default: the machine
    /// then behaves bit-identically to one built before the fault layer
    /// existed (pinned by the faults-off fingerprint tests).
    pub faults: FaultPlan,
    /// Explicit cluster-id allocation kernel builders should target, or
    /// `None` for the whole machine (`0..clusters`). The machine itself is
    /// unaffected — all `clusters` clusters exist either way — but builders
    /// that partition their grid via [`GpuConfig::partition`] emit warps and
    /// per-cluster address bases only onto these ids, which is how a kernel
    /// is built "inside" a job-table allocation.
    pub allocation: Option<Vec<u32>>,
}

impl GpuConfig {
    /// The Volta-style baseline: 8 cores, per-core tightly-coupled tensor
    /// units, no DMA. The shared memory uses the 2× banking noted in
    /// Section 6.1.3.
    pub fn volta_style() -> Self {
        GpuConfig {
            design: DesignKind::VoltaStyle,
            clusters: 1,
            cores: 8,
            core: CoreConfig::vortex_default(),
            smem: SmemConfig::double_banked(),
            dma: DmaConfig::default(),
            dram: DramConfig::default_soc(),
            dsm: DsmConfig::default(),
            tightly: TightlyCoupledConfig { macs_per_cycle: 32 },
            decoupled: DecoupledConfig::default(),
            matrix_units: Vec::new(),
            dtype: DataType::Fp16,
            frequency: Frequency::VIRGO_SOC,
            faults: FaultPlan::default(),
            allocation: None,
        }
    }

    /// The Ampere-style baseline: Volta-style plus a cluster DMA engine.
    pub fn ampere_style() -> Self {
        GpuConfig {
            design: DesignKind::AmpereStyle,
            ..Self::volta_style()
        }
    }

    /// The Hopper-style baseline: 4 cores with operand-decoupled tensor
    /// units (64 MACs each) and a cluster DMA engine. The shared memory uses
    /// 16 subbanks per bank so each bank can serve the units' 64-byte operand
    /// reads in a single cycle.
    pub fn hopper_style() -> Self {
        GpuConfig {
            design: DesignKind::HopperStyle,
            cores: 4,
            smem: SmemConfig::virgo_cluster(),
            decoupled: DecoupledConfig {
                macs_per_cycle: 64,
                smem_read_bytes: 64,
                ..DecoupledConfig::default()
            },
            matrix_units: Vec::new(),
            ..Self::volta_style()
        }
    }

    /// The Virgo design: 8 cores plus one disaggregated 16×16 FP16 matrix
    /// unit with a 32 KiB accumulator memory.
    pub fn virgo() -> Self {
        GpuConfig {
            design: DesignKind::Virgo,
            cores: 8,
            smem: SmemConfig::virgo_cluster(),
            matrix_units: vec![MatrixUnitSpec::default_fp16()],
            ..Self::volta_style()
        }
    }

    /// The heterogeneous Virgo configuration of Section 6.3: one 16×16 unit
    /// and one 8×8 unit sharing the cluster.
    pub fn virgo_heterogeneous() -> Self {
        GpuConfig {
            matrix_units: vec![MatrixUnitSpec::default_fp16(), MatrixUnitSpec::small_fp16()],
            ..Self::virgo()
        }
    }

    /// The configuration for a given design point, at Table 2 defaults.
    pub fn for_design(design: DesignKind) -> Self {
        match design {
            DesignKind::VoltaStyle => Self::volta_style(),
            DesignKind::AmpereStyle => Self::ampere_style(),
            DesignKind::HopperStyle => Self::hopper_style(),
            DesignKind::Virgo => Self::virgo(),
        }
    }

    /// Scales the machine to `clusters` clusters (each a full copy of the
    /// per-cluster configuration, all sharing the L2/DRAM back-end).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    #[must_use]
    pub fn with_clusters(mut self, clusters: u32) -> Self {
        assert!(clusters > 0, "a GPU needs at least one cluster");
        self.clusters = clusters;
        self
    }

    /// Replaces the inter-cluster DSM fabric configuration (use
    /// [`DsmConfig::enabled_default`] to switch the fabric on).
    #[must_use]
    pub fn with_dsm(mut self, dsm: DsmConfig) -> Self {
        self.dsm = dsm;
        self
    }

    /// Switches the inter-cluster DSM fabric on at its default parameters,
    /// keeping everything else identical — the A/B toggle of the DSM
    /// workload studies.
    #[must_use]
    pub fn with_dsm_enabled(mut self) -> Self {
        self.dsm.enabled = true;
        self
    }

    /// Installs a fault-injection schedule (see [`FaultPlan`]). The default
    /// — an empty plan — leaves the machine on its zero-cost healthy path.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts kernel builders to an explicit cluster-id allocation (see
    /// the [`GpuConfig::allocation`] field). The ids must be distinct and
    /// inside the machine.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, contains a duplicate, or names a cluster
    /// outside `0..clusters`.
    #[must_use]
    pub fn with_allocation(mut self, ids: Vec<u32>) -> Self {
        assert!(!ids.is_empty(), "an allocation needs at least one cluster");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate cluster id in {ids:?}");
        assert!(
            sorted.last().is_none_or(|&id| id < self.clusters),
            "allocation {ids:?} exceeds the machine's {} clusters",
            self.clusters
        );
        self.allocation = Some(ids);
        self
    }

    /// The cluster ids kernel builders should target: the explicit
    /// allocation when one is installed, otherwise all `clusters` ids.
    pub fn cluster_ids(&self) -> Vec<u32> {
        match &self.allocation {
            Some(ids) => ids.clone(),
            None => (0..self.clusters.max(1)).collect(),
        }
    }

    /// Number of clusters kernel builders should spread work over (the
    /// allocation size, or the whole machine without one).
    pub fn active_clusters(&self) -> u32 {
        match &self.allocation {
            Some(ids) => ids.len() as u32,
            None => self.clusters.max(1),
        }
    }

    /// Partitions a linear work grid contiguously over the active clusters
    /// (see [`GpuConfig::cluster_ids`]) — the constructor kernel builders
    /// use so they work unchanged inside an allocation.
    pub fn partition(&self, total: u64) -> GridPartition {
        self.partition_with(total, PartitionStrategy::Contiguous)
    }

    /// Partitions a linear work grid over the active clusters under an
    /// explicit ownership strategy.
    pub fn partition_with(&self, total: u64, strategy: PartitionStrategy) -> GridPartition {
        match &self.allocation {
            Some(ids) => GridPartition::over_with_strategy(total, ids.clone(), strategy),
            None => GridPartition::with_strategy(total, self.clusters.max(1), strategy),
        }
    }

    /// Scales the shared DRAM back-end to `channels` address-interleaved
    /// channels (each with a full data bus, so aggregate memory bandwidth
    /// scales with the channel count).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn with_dram_channels(mut self, channels: u32) -> Self {
        self.dram = self.dram.with_channels(channels);
        self
    }

    /// Converts a configuration to its FP32 variant (used by the
    /// FlashAttention-3 evaluation, Section 5.3): the per-unit MAC counts
    /// halve and the Virgo array shrinks to 8×8.
    #[must_use]
    pub fn to_fp32(&self) -> Self {
        let mut cfg = self.clone();
        cfg.dtype = DataType::Fp32;
        cfg.tightly.macs_per_cycle = 16;
        cfg.decoupled.macs_per_cycle = 32;
        if !cfg.matrix_units.is_empty() {
            cfg.matrix_units = vec![MatrixUnitSpec::default_fp32()];
        }
        cfg
    }

    /// Peak matrix multiply-accumulate throughput of *one* cluster in MACs
    /// per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        match self.design {
            DesignKind::VoltaStyle | DesignKind::AmpereStyle => {
                u64::from(self.cores) * u64::from(self.tightly.macs_per_cycle)
            }
            DesignKind::HopperStyle => {
                u64::from(self.cores) * u64::from(self.decoupled.macs_per_cycle)
            }
            DesignKind::Virgo => self
                .matrix_units
                .iter()
                .map(|u| u.gemmini.macs_per_cycle())
                .sum(),
        }
    }

    /// Peak matrix multiply-accumulate throughput of the whole machine
    /// (`clusters` × the per-cluster peak) — the denominator of the Table 3
    /// utilization metric.
    pub fn machine_peak_macs_per_cycle(&self) -> u64 {
        self.peak_macs_per_cycle() * u64::from(self.clusters.max(1))
    }

    /// Global memory configuration derived from the core count and the DRAM
    /// interface settings. The L1 part is instantiated per cluster; the
    /// L2/DRAM part backs the whole machine.
    pub fn global_memory(&self) -> GlobalMemoryConfig {
        GlobalMemoryConfig {
            dram: self.dram,
            ..GlobalMemoryConfig::default_soc(self.cores)
        }
    }

    /// Area-model parameters for this configuration (Figure 7). Per-cluster
    /// structures (cores, shared memory, matrix units, DMA) scale with the
    /// cluster count; the L2 is shared by the whole machine.
    pub fn area_params(&self) -> AreaParams {
        let clusters = self.clusters.max(1);
        let accum_kib: u64 = self
            .matrix_units
            .iter()
            .map(|u| u.accumulator_bytes / 1024)
            .sum::<u64>()
            * u64::from(clusters);
        AreaParams {
            cores: self.cores * clusters,
            l1_kib_per_core: 32,
            l2_kib: 512,
            smem_kib: (self.smem.capacity_bytes / 1024) as u32 * clusters,
            regfile_kib_per_core: self.core.regfile_kib,
            matrix_macs: self.machine_peak_macs_per_cycle() as u32,
            accum_kib: accum_kib as u32,
            has_dma: self.design.has_dma(),
            smem_wide_port: !self.design.is_core_coupled()
                || self.design == DesignKind::HopperStyle,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::virgo()
    }
}

impl StableHash for MatrixUnitSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.gemmini.stable_hash(h);
        h.write_u64(self.accumulator_bytes);
    }
}

impl StableHash for GpuConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.design.stable_hash(h);
        h.write_u64(u64::from(self.clusters));
        h.write_u64(u64::from(self.cores));
        self.core.stable_hash(h);
        self.smem.stable_hash(h);
        self.dma.stable_hash(h);
        self.tightly.stable_hash(h);
        self.decoupled.stable_hash(h);
        self.matrix_units.stable_hash(h);
        self.dtype.stable_hash(h);
        self.frequency.stable_hash(h);
        // The whole memory hierarchy (L1/L2/DRAM incl. channel count and
        // interleave) is part of a simulation's identity, so cached reports
        // cannot alias across e.g. DRAM channel counts.
        self.global_memory().stable_hash(h);
        // Likewise the inter-cluster DSM fabric: a DSM-enabled machine and
        // its DRAM-only twin must never share a cache entry.
        self.dsm.stable_hash(h);
        // And the fault plan: a faulted run and its healthy twin produce
        // different reports, so they must never alias in the cache either.
        self.faults.stable_hash(h);
        // An explicit allocation changes which clusters builders target, so
        // it is part of the config's identity; the `None` arm writes nothing,
        // keeping every pre-allocation config digest byte-identical.
        if let Some(ids) = &self.allocation {
            h.write_u64(ids.len() as u64);
            for &id in ids {
                h.write_u64(u64::from(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_have_matching_presets() {
        for design in DesignKind::all() {
            let cfg = GpuConfig::for_design(design);
            assert_eq!(cfg.design, design);
        }
    }

    #[test]
    fn all_designs_have_equal_peak_macs() {
        // Table 2: every configuration has 256 FP16 MACs per cluster so the
        // comparison is iso-throughput.
        for design in DesignKind::all() {
            let cfg = GpuConfig::for_design(design);
            assert_eq!(cfg.peak_macs_per_cycle(), 256, "{design}");
        }
    }

    #[test]
    fn dma_presence_follows_design() {
        assert!(!DesignKind::VoltaStyle.has_dma());
        assert!(DesignKind::AmpereStyle.has_dma());
        assert!(DesignKind::HopperStyle.has_dma());
        assert!(DesignKind::Virgo.has_dma());
    }

    #[test]
    fn hopper_has_four_cores_others_eight() {
        assert_eq!(GpuConfig::hopper_style().cores, 4);
        assert_eq!(GpuConfig::volta_style().cores, 8);
        assert_eq!(GpuConfig::virgo().cores, 8);
    }

    #[test]
    fn virgo_has_exactly_one_matrix_unit_by_default() {
        assert_eq!(GpuConfig::virgo().matrix_units.len(), 1);
        assert!(GpuConfig::volta_style().matrix_units.is_empty());
        assert_eq!(GpuConfig::virgo_heterogeneous().matrix_units.len(), 2);
    }

    #[test]
    fn fp32_variant_halves_mac_rates() {
        let fp32 = GpuConfig::ampere_style().to_fp32();
        assert_eq!(fp32.dtype, DataType::Fp32);
        assert_eq!(fp32.peak_macs_per_cycle(), 128);
        let virgo32 = GpuConfig::virgo().to_fp32();
        assert_eq!(virgo32.peak_macs_per_cycle(), 64);
    }

    #[test]
    fn area_params_reflect_configuration() {
        let params = GpuConfig::virgo().area_params();
        assert_eq!(params.cores, 8);
        assert_eq!(params.accum_kib, 32);
        assert!(params.has_dma);
        assert!(params.smem_wide_port);
        let volta = GpuConfig::volta_style().area_params();
        assert_eq!(volta.accum_kib, 0);
        assert!(!volta.has_dma);
    }

    #[test]
    fn dram_channels_flow_into_the_memory_config() {
        let cfg = GpuConfig::virgo();
        assert_eq!(cfg.global_memory().dram.channels, 1, "default one channel");
        let quad = cfg.with_dram_channels(4);
        assert_eq!(quad.dram.channels, 4);
        assert_eq!(quad.global_memory().dram.channels, 4);
        // The rest of the interface is untouched.
        assert_eq!(
            quad.global_memory().dram.bytes_per_cycle,
            GpuConfig::virgo().global_memory().dram.bytes_per_cycle
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_dram_channels_rejected() {
        let _ = GpuConfig::virgo().with_dram_channels(0);
    }

    #[test]
    fn dsm_is_disabled_by_default_and_togglable() {
        for design in DesignKind::all() {
            assert!(!GpuConfig::for_design(design).dsm.enabled, "{design}");
        }
        let on = GpuConfig::virgo().with_dsm_enabled();
        assert!(on.dsm.enabled);
        // Only the enable bit differs, so A/B studies isolate the fabric.
        assert_eq!(
            DsmConfig {
                enabled: false,
                ..on.dsm
            },
            GpuConfig::virgo().dsm
        );
    }

    #[test]
    fn faults_are_empty_by_default_and_change_the_config_hash() {
        use virgo_sim::fault::FaultKind;
        for design in DesignKind::all() {
            assert!(GpuConfig::for_design(design).faults.is_empty(), "{design}");
        }
        let healthy = GpuConfig::virgo();
        let faulted = GpuConfig::virgo().with_faults(FaultPlan::seeded(9).with_event(
            FaultKind::DramChannelDown { channel: 0 },
            0,
            100,
        ));
        let digest = |cfg: &GpuConfig| {
            let mut h = StableHasher::new();
            cfg.stable_hash(&mut h);
            h.finish_hex()
        };
        assert_ne!(
            digest(&healthy),
            digest(&faulted),
            "a faulted run must never alias its healthy twin in the cache"
        );
    }

    #[test]
    fn design_names_match_paper_terms() {
        assert_eq!(DesignKind::Virgo.to_string(), "Virgo");
        assert_eq!(DesignKind::HopperStyle.to_string(), "Hopper-style");
    }
}
