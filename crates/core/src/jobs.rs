//! Multi-job residency: a table of concurrently-resident kernels, each bound
//! to a disjoint cluster subset of one shared machine.
//!
//! The single-kernel drivers in [`crate::run`] assume the whole GPU belongs
//! to one kernel: the machine is built around it, run to completion and torn
//! down. A [`JobTable`] generalizes that into a *session*: the machine stays
//! up, jobs are admitted onto free cluster slots while others are still
//! running, and every job retires with its own [`SimReport`] sliced out of
//! the shared counters via the residency-window attribution deltas that
//! [`virgo_mem::MemoryBackend::attribution`] and
//! [`virgo_mem::DsmFabric::attribution`] expose. Cross-job contention on the
//! shared L2/DRAM back-end is modelled for free: resident jobs issue into
//! the same [`virgo_mem::MemoryBackend`], so one tenant's DRAM traffic
//! lengthens another's latency exactly as on real hardware.
//!
//! # Equivalence guarantees
//!
//! The session driver is built so the refactor is observationally invisible
//! to existing users:
//!
//! * **Single job ≡ standalone.** A job admitted at cycle 0 onto every
//!   cluster of an otherwise-idle table produces the byte-identical
//!   [`SimReport`] a [`crate::run::Gpu::run`] of the same kernel would. The
//!   naive session loop performs the same finish-check-then-tick sequence
//!   per cycle; the idle-slot clusters it also ticks hold the empty kernel,
//!   whose ticks touch nothing shared.
//! * **Sequential ≡ standalone.** When the table goes fully idle the shared
//!   back-end and fabric are rebuilt cold, so the i-th job of a back-to-back
//!   sequence sees exactly the cold caches of an i-th standalone run. All
//!   component timing is relative to request start (`busy_until`
//!   arithmetic), so the admission offset shifts nothing.
//! * **Naive ≡ fast-forward.** The fast-forward session driver jumps only
//!   over windows in which the machine-wide activity probe reports no
//!   component can act — the same soundness contract the single-kernel
//!   event-queue driver relies on — and bulk-replays the skipped
//!   time-uniform accounting.

use virgo_isa::{Kernel, KernelInfo};
use virgo_mem::{BackendAttribution, FabricAttribution};
use virgo_sim::Cycle;

use crate::config::GpuConfig;
use crate::machine::Machine;
use crate::report::{JobView, SchedStats, SimReport};
use crate::run::{SimError, SimMode, WatchdogVerdict};

/// Identifier of a job admitted to a [`JobTable`], unique within the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The raw session-unique index (admission order).
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A retired (or timed-out) job, handed back by [`JobTable::advance_until`]
/// at the exact cycle the job left the machine.
#[derive(Debug)]
pub struct JobCompletion {
    /// The job's session-unique id.
    pub id: JobId,
    /// The name given at admission (e.g. `"tenant-a/req3"`).
    pub name: String,
    /// The cluster slots the job owned, in ascending order.
    pub clusters: Vec<u32>,
    /// Absolute session cycle the job was admitted.
    pub admitted: u64,
    /// Absolute session cycle the job retired or timed out.
    pub retired: u64,
    /// The job's report, or [`SimError::Timeout`] with a diagnosis naming
    /// this job if its cycle budget ran out.
    pub result: Result<SimReport, SimError>,
}

impl JobCompletion {
    /// The job's residency duration in cycles.
    pub fn residency(&self) -> u64 {
        self.retired - self.admitted
    }
}

/// One resident job: a kernel bound to its cluster subset, plus the
/// admission-time snapshots its retirement report is sliced against.
#[derive(Debug)]
struct ResidentJob {
    id: JobId,
    name: String,
    info: KernelInfo,
    clusters: Vec<u32>,
    admitted: u64,
    budget: u64,
    backend_base: BackendAttribution,
    fabric_base: FabricAttribution,
    /// Instructions retired on the job's clusters at its half-budget
    /// checkpoint — the per-job livelock detector, mirroring the standalone
    /// drivers' watchdog.
    watchdog_sample: Option<u64>,
}

impl ResidentJob {
    fn deadline(&self) -> u64 {
        self.admitted.saturating_add(self.budget)
    }

    fn watchdog_at(&self) -> u64 {
        self.admitted + self.budget / 2
    }
}

/// A session of concurrently-resident jobs scheduled onto disjoint cluster
/// subsets of one machine.
///
/// ```
/// use virgo::{GpuConfig, JobTable, SimMode};
/// use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};
/// use std::sync::Arc;
///
/// let mut b = ProgramBuilder::new();
/// b.op_n(8, WarpOp::Alu { rf_reads: 2, rf_writes: 1 });
/// let program = Arc::new(b.build());
/// let kernel = Kernel::new(
///     KernelInfo::new("req", 0, DataType::Fp16),
///     vec![WarpAssignment::on_cluster(1, 0, 0, program)],
/// );
///
/// let config = GpuConfig::virgo().with_clusters(2);
/// let mut table = JobTable::new(config, SimMode::FastForward);
/// let id = table.admit("tenant-a/req0", &kernel, &[1], 10_000).unwrap();
/// let done = table.advance_until(10_000);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].id, id);
/// let report = done[0].result.as_ref().unwrap();
/// assert_eq!(report.instructions_retired(), 8);
/// ```
#[derive(Debug)]
pub struct JobTable {
    config: GpuConfig,
    mode: SimMode,
    machine: Machine,
    jobs: Vec<ResidentJob>,
    /// Slot ownership, indexed by cluster id.
    occupied: Vec<bool>,
    now: u64,
    next_id: u64,
}

impl JobTable {
    /// Creates an idle session: every cluster slot free, shared back-end and
    /// fabric cold, clock at zero.
    pub fn new(config: GpuConfig, mode: SimMode) -> Self {
        let machine = Machine::idle(&config);
        let slots = config.clusters.max(1) as usize;
        JobTable {
            config,
            mode,
            machine,
            jobs: Vec::new(),
            occupied: vec![false; slots],
            now: 0,
            next_id: 0,
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The time-advance mode the session runs under.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// The current session cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of jobs currently resident.
    pub fn resident(&self) -> usize {
        self.jobs.len()
    }

    /// True when no job is resident.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Cluster slots no resident job owns, in ascending order.
    pub fn free_clusters(&self) -> Vec<u32> {
        self.occupied
            .iter()
            .enumerate()
            .filter(|(_, &taken)| !taken)
            .map(|(id, _)| id as u32)
            .collect()
    }

    /// Admits `kernel` onto the cluster slots in `clusters` with a residency
    /// budget of `budget` cycles, effective at the current session cycle.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyKernel`] if the kernel has no warps,
    /// [`SimError::ClusterOutOfRange`] if a requested slot does not exist,
    /// and [`SimError::ClusterBusy`] if a requested slot is owned by another
    /// resident job, requested twice, or the kernel assigns warps outside
    /// the requested subset.
    pub fn admit(
        &mut self,
        name: &str,
        kernel: &Kernel,
        clusters: &[u32],
        budget: u64,
    ) -> Result<JobId, SimError> {
        if kernel.warps.is_empty() {
            return Err(SimError::EmptyKernel);
        }
        let slots = self.occupied.len() as u32;
        let mut requested = vec![false; self.occupied.len()];
        for &id in clusters {
            if id >= slots {
                return Err(SimError::ClusterOutOfRange {
                    max_cluster: id,
                    clusters: slots,
                });
            }
            if self.occupied[id as usize] || requested[id as usize] {
                return Err(SimError::ClusterBusy { cluster: id });
            }
            requested[id as usize] = true;
        }
        if let Some(w) = kernel
            .warps
            .iter()
            .find(|w| w.cluster >= slots || !requested[w.cluster as usize])
        {
            return Err(SimError::ClusterBusy { cluster: w.cluster });
        }

        let mut owned: Vec<u32> = clusters.to_vec();
        owned.sort_unstable();
        self.machine.load(&self.config, kernel, &owned, self.now);
        for &id in &owned {
            self.occupied[id as usize] = true;
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.push(ResidentJob {
            id,
            name: name.to_string(),
            info: kernel.info.clone(),
            clusters: owned,
            admitted: self.now,
            budget,
            backend_base: self.machine.backend.attribution(),
            fabric_base: self.machine.fabric.attribution(),
            watchdog_sample: None,
        });
        Ok(id)
    }

    /// Advances the session clock toward `target`, returning as soon as any
    /// jobs complete (retire or time out) — at the exact cycle they left the
    /// machine, so the caller can admit follow-on work at that same cycle —
    /// or with an empty vector once the clock reaches `target`.
    ///
    /// Per cycle the driver mirrors the standalone naive loop: finished jobs
    /// retire *before* the tick (a job finishing at cycle `c` reports
    /// `c - admitted` cycles, exactly the standalone count), then expired
    /// budgets time out, then the machine ticks. Under
    /// [`SimMode::FastForward`] globally-quiescent windows are jumped over
    /// and bulk-replayed instead of ticked.
    pub fn advance_until(&mut self, target: u64) -> Vec<JobCompletion> {
        loop {
            let done = self.retire_finished();
            if !done.is_empty() {
                return done;
            }
            if self.now >= target {
                return Vec::new();
            }
            if self.jobs.is_empty() {
                // An idle machine's ticks are no-ops on every counter that
                // can ever be observed again: skip straight to the target in
                // both modes.
                self.now = target;
                return Vec::new();
            }
            self.sample_watchdogs();
            let expired = self.expire_timeouts();
            if !expired.is_empty() {
                return expired;
            }
            match self.mode {
                SimMode::Naive => {
                    self.machine.tick(Cycle::new(self.now));
                    self.now += 1;
                }
                SimMode::FastForward => self.step_fast_forward(target),
            }
        }
    }

    /// One fast-forward step: tick if any component can act this cycle,
    /// otherwise jump to the next event — clamped to the caller's target and
    /// to every resident deadline, so timeouts fire at the cycle the naive
    /// loop would fire them.
    fn step_fast_forward(&mut self, target: u64) {
        let now = Cycle::new(self.now);
        match self.machine.next_activity(now) {
            Some(t) if t.get() <= self.now => {
                self.machine.tick(now);
                self.now += 1;
            }
            activity => {
                let mut jump_to = activity.map_or(u64::MAX, |t| t.get()).min(target);
                for job in &self.jobs {
                    jump_to = jump_to.min(job.deadline());
                }
                debug_assert!(jump_to > self.now);
                self.machine.fast_forward_all(now, jump_to - self.now);
                self.now = jump_to;
            }
        }
    }

    /// Takes the half-budget retirement checkpoint for any job that crossed
    /// it. Jump arrivals past a checkpoint are equivalent to sampling at the
    /// checkpoint itself: retirement cannot change inside a quiescent window.
    fn sample_watchdogs(&mut self) {
        for job in &mut self.jobs {
            if job.watchdog_sample.is_none() && self.now >= job.watchdog_at() {
                job.watchdog_sample = Some(self.machine.retired_on(&job.clusters));
            }
        }
    }

    /// Retires every job whose clusters have finished, building its report
    /// from the residency-window attribution delta before the slots are
    /// returned to idle.
    fn retire_finished(&mut self) -> Vec<JobCompletion> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            if self.machine.finished_on(&self.jobs[i].clusters) {
                let job = self.jobs.remove(i);
                let report = self.job_report(&job);
                self.release(&job.clusters);
                done.push(JobCompletion {
                    id: job.id,
                    name: job.name,
                    clusters: job.clusters,
                    admitted: job.admitted,
                    retired: self.now,
                    result: Ok(report),
                });
            } else {
                i += 1;
            }
        }
        done
    }

    /// Times out every job whose budget has elapsed, with the standalone
    /// drivers' deadlock / livelock / slow-progress verdict probed over the
    /// job's own clusters and the diagnosis naming the job.
    fn expire_timeouts(&mut self) -> Vec<JobCompletion> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            if self.now >= self.jobs[i].deadline() {
                let job = self.jobs.remove(i);
                let verdict = if self
                    .machine
                    .next_activity_on(&job.clusters, Cycle::new(self.now))
                    .is_none()
                {
                    WatchdogVerdict::Deadlock
                } else {
                    match job.watchdog_sample {
                        Some(sample) if self.machine.retired_on(&job.clusters) == sample => {
                            WatchdogVerdict::Livelock
                        }
                        _ => WatchdogVerdict::SlowProgress,
                    }
                };
                let diagnosis = self.machine.timeout_diagnosis_on(
                    &job.clusters,
                    &job.name,
                    verdict,
                    self.config.faults.active_at(self.now),
                );
                self.release(&job.clusters);
                done.push(JobCompletion {
                    id: job.id,
                    name: job.name,
                    clusters: job.clusters,
                    admitted: job.admitted,
                    retired: self.now,
                    result: Err(SimError::Timeout {
                        limit: job.budget,
                        diagnosis,
                    }),
                });
            } else {
                i += 1;
            }
        }
        done
    }

    /// Returns a departed job's slots to idle, rebuilding the shared
    /// back-end cold when the whole table empties — the sequential ≡
    /// standalone guarantee.
    fn release(&mut self, clusters: &[u32]) {
        for &id in clusters {
            self.occupied[id as usize] = false;
        }
        self.machine.unload(&self.config, clusters, self.now);
        if self.jobs.is_empty() {
            self.machine.reset_shared(&self.config);
        }
    }

    /// Builds a job's report from its residency window: its cluster slots
    /// plus the shared-counter deltas since admission.
    fn job_report(&self, job: &ResidentJob) -> SimReport {
        let view = JobView {
            clusters: job
                .clusters
                .iter()
                .map(|&id| &self.machine.clusters[id as usize])
                .collect(),
            backend: self.machine.backend.attribution().since(&job.backend_base),
            fabric: self.machine.fabric.attribution().since(&job.fabric_base),
            admitted: job.admitted,
            end: self.now,
        };
        SimReport::from_parts(
            &view,
            &job.info,
            Cycle::new(self.now - job.admitted),
            SchedStats::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::run::Gpu;
    use std::sync::Arc;
    use virgo_isa::{DataType, ProgramBuilder, WarpAssignment, WarpOp};

    /// A two-cluster kernel with mixed-length ALU streams and a per-cluster
    /// barrier, so the two clusters finish at different times.
    fn two_cluster_kernel() -> Kernel {
        let mut warps = Vec::new();
        for cluster in 0..2u32 {
            for warp in 0..2u32 {
                let mut b = ProgramBuilder::new();
                b.op_n(
                    16 + 16 * cluster + 4 * warp,
                    WarpOp::Alu {
                        rf_reads: 2,
                        rf_writes: 1,
                    },
                );
                b.op(WarpOp::Barrier { id: 0 });
                warps.push(WarpAssignment::on_cluster(
                    cluster,
                    0,
                    warp,
                    Arc::new(b.build()),
                ));
            }
        }
        Kernel::new(KernelInfo::new("two", 0, DataType::Fp16), warps)
    }

    fn one_cluster_kernel(cluster: u32, ops: u32) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new("one", 0, DataType::Fp16),
            vec![WarpAssignment::on_cluster(
                cluster,
                0,
                0,
                Arc::new(b.build()),
            )],
        )
    }

    fn assert_reports_match(session: &SimReport, standalone: &SimReport) {
        assert_eq!(session.cycles(), standalone.cycles());
        assert_eq!(
            session.instructions_retired(),
            standalone.instructions_retired()
        );
        assert_eq!(
            session.total_energy_mj().to_bits(),
            standalone.total_energy_mj().to_bits(),
        );
        assert_eq!(session.per_cluster().len(), standalone.per_cluster().len());
        for (s, r) in session.per_cluster().iter().zip(standalone.per_cluster()) {
            assert_eq!(s.cluster, r.cluster);
            assert_eq!(s.core_stats, r.core_stats);
            assert_eq!(s.contention, r.contention);
            assert_eq!(s.energy_mj.to_bits(), r.energy_mj.to_bits());
        }
    }

    #[test]
    fn full_machine_job_matches_standalone_in_both_modes() {
        let config = GpuConfig::virgo().with_clusters(2);
        let kernel = two_cluster_kernel();
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let standalone = Gpu::new(config.clone())
                .run_with_mode(&kernel, 100_000, mode)
                .unwrap();
            let mut table = JobTable::new(config.clone(), mode);
            table.admit("solo", &kernel, &[0, 1], 100_000).unwrap();
            let done = table.advance_until(100_000);
            assert_eq!(done.len(), 1, "{mode}");
            let session = done[0].result.as_ref().unwrap();
            assert_reports_match(session, &standalone);
        }
    }

    #[test]
    fn sequential_jobs_each_match_standalone() {
        // Back-to-back full-machine jobs: the table resets the shared
        // back-end between them, so every report matches a cold standalone
        // run even though the session clock keeps counting.
        let config = GpuConfig::virgo().with_clusters(2);
        let kernel = two_cluster_kernel();
        let standalone = Gpu::new(config.clone()).run(&kernel, 100_000).unwrap();
        let mut table = JobTable::new(config.clone(), SimMode::FastForward);
        for round in 0..3 {
            table
                .admit(&format!("round{round}"), &kernel, &[0, 1], 100_000)
                .unwrap();
            let done = table.advance_until(u64::MAX);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].admitted, table.now() - standalone.cycles().get());
            assert_reports_match(done[0].result.as_ref().unwrap(), &standalone);
        }
        assert!(table.is_idle());
    }

    #[test]
    fn concurrent_disjoint_jobs_agree_across_modes() {
        let config = GpuConfig::virgo().with_clusters(2);
        let mut per_mode = Vec::new();
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let mut table = JobTable::new(config.clone(), mode);
            table
                .admit("a", &one_cluster_kernel(0, 40), &[0], 100_000)
                .unwrap();
            table
                .admit("b", &one_cluster_kernel(1, 90), &[1], 100_000)
                .unwrap();
            let mut done = Vec::new();
            while !table.is_idle() {
                done.extend(table.advance_until(u64::MAX));
            }
            done.sort_by_key(|c| c.id);
            assert_eq!(done.len(), 2);
            // The short job frees its cluster while the long one runs on.
            assert!(done[0].retired < done[1].retired, "{mode}");
            per_mode.push(
                done.iter()
                    .map(|c| {
                        let r = c.result.as_ref().unwrap();
                        (
                            c.retired,
                            r.cycles().get(),
                            r.instructions_retired(),
                            r.total_energy_mj().to_bits(),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(per_mode[0], per_mode[1]);
    }

    #[test]
    fn admission_is_validated() {
        let config = GpuConfig::virgo().with_clusters(2);
        let mut table = JobTable::new(config, SimMode::FastForward);
        let empty = Kernel::new(KernelInfo::new("none", 0, DataType::Fp16), Vec::new());
        assert_eq!(
            table.admit("e", &empty, &[0], 100).unwrap_err(),
            SimError::EmptyKernel
        );
        let k0 = one_cluster_kernel(0, 4);
        assert_eq!(
            table.admit("far", &k0, &[7], 100).unwrap_err(),
            SimError::ClusterOutOfRange {
                max_cluster: 7,
                clusters: 2
            }
        );
        assert_eq!(
            table.admit("dup", &k0, &[0, 0], 100).unwrap_err(),
            SimError::ClusterBusy { cluster: 0 }
        );
        // Warps outside the requested subset are rejected.
        assert_eq!(
            table.admit("stray", &k0, &[1], 100).unwrap_err(),
            SimError::ClusterBusy { cluster: 0 }
        );
        table.admit("ok", &k0, &[0], 100_000).unwrap();
        assert_eq!(table.free_clusters(), vec![1]);
        assert_eq!(
            table
                .admit("conflict", &one_cluster_kernel(0, 4), &[0], 100)
                .unwrap_err(),
            SimError::ClusterBusy { cluster: 0 }
        );
    }

    #[test]
    fn timed_out_job_is_diagnosed_and_evicted() {
        // A lone warp at a two-participant barrier deadlocks on cluster 1
        // while an honest job runs on cluster 0.
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Barrier { id: 0 });
        let stuck = Kernel::new(
            KernelInfo::new("stuck", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(1, 0, 0, Arc::new(b.build())),
                WarpAssignment::on_cluster(1, 0, 1, Arc::new(ProgramBuilder::new().build())),
            ],
        );
        let config = GpuConfig::virgo().with_clusters(2);
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let mut table = JobTable::new(config.clone(), mode);
            table
                .admit("good", &one_cluster_kernel(0, 32), &[0], 100_000)
                .unwrap();
            table.admit("tenant-b/req1", &stuck, &[1], 2_000).unwrap();
            let mut done = Vec::new();
            while !table.is_idle() {
                done.extend(table.advance_until(u64::MAX));
            }
            done.sort_by_key(|c| c.id);
            assert!(done[0].result.is_ok(), "{mode}");
            let Err(SimError::Timeout { limit, diagnosis }) = &done[1].result else {
                panic!("expected a timeout in {mode}");
            };
            assert_eq!(*limit, 2_000, "{mode}");
            assert_eq!(done[1].retired - done[1].admitted, 2_000, "{mode}");
            assert_eq!(diagnosis.verdict, WatchdogVerdict::Deadlock, "{mode}");
            assert_eq!(diagnosis.job.as_deref(), Some("tenant-b/req1"), "{mode}");
            assert_eq!(diagnosis.warps.len(), 1, "{mode}");
            assert_eq!(diagnosis.warps[0].cluster, 1, "{mode}");
            // The slot is reusable after eviction.
            assert_eq!(table.free_clusters(), vec![0, 1], "{mode}");
        }
    }

    #[test]
    fn idle_table_jumps_to_target() {
        let mut table = JobTable::new(GpuConfig::virgo(), SimMode::Naive);
        assert!(table.advance_until(5_000).is_empty());
        assert_eq!(table.now(), 5_000);
        // Admission starts a job mid-session.
        table
            .admit("late", &one_cluster_kernel(0, 8), &[0], 100_000)
            .unwrap();
        let done = table.advance_until(u64::MAX);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].admitted, 5_000);
        assert!(done[0].result.is_ok());
    }
}
