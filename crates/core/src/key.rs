//! Content-addressed identity of one simulation.
//!
//! A simulation is a pure function of `(GpuConfig, Kernel, max_cycles,
//! SimMode)` — the driver holds no other state and the model is fully
//! deterministic. [`SimKey`] digests those four inputs with the stable
//! structural hash (`virgo_sim::StableHash`) *plus* a digest of the
//! simulator's own source tree (`VIRGO_SOURCE_DIGEST`, computed at build
//! time over the model crates), giving every simulation a 128-bit identity
//! that is reproducible across processes and machines but never shared
//! between two different simulators. The sweep engine's report cache uses it
//! as the memoization key (and as the on-disk file name), so two callers
//! asking for the same design point never simulate it twice — and a
//! persistent cache written by an older build misses cleanly.

use std::fmt;

use virgo_isa::Kernel;
use virgo_sim::{StableHash, StableHasher};

use crate::config::GpuConfig;
use crate::run::SimMode;

/// The 128-bit content digest of one simulation's inputs.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use virgo::{GpuConfig, SimKey, SimMode};
/// use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};
///
/// let mut b = ProgramBuilder::new();
/// b.op(WarpOp::Nop);
/// let kernel = Kernel::new(
///     KernelInfo::new("k", 0, DataType::Fp16),
///     vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
/// );
/// let config = GpuConfig::virgo();
/// let a = SimKey::digest(&config, &kernel, 1000, SimMode::FastForward);
/// let b = SimKey::digest(&config, &kernel, 1000, SimMode::FastForward);
/// assert_eq!(a, b);
/// assert_ne!(a, SimKey::digest(&config, &kernel, 1000, SimMode::Naive));
/// assert_eq!(a.to_hex().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimKey {
    hi: u64,
    lo: u64,
}

impl SimKey {
    /// Digests the full input tuple of one simulation.
    pub fn digest(config: &GpuConfig, kernel: &Kernel, max_cycles: u64, mode: SimMode) -> SimKey {
        let mut h = StableHasher::new();
        // Format tag + version: bump when the digest layout (or anything it
        // absorbs) changes, so stale on-disk cache entries miss cleanly.
        // v2: the config digest absorbs the full memory hierarchy (DRAM
        // channel count / interleave), and the DRAM timing model changed.
        // v3: the config digest absorbs the inter-cluster DSM fabric
        // configuration, and reports carry DSM stats.
        // v4: the config digest absorbs the fault-injection plan, and
        // reports carry fault/degraded-mode stats.
        // v5: the key absorbs a digest of the simulator's own source tree
        // (`VIRGO_SOURCE_DIGEST`, computed by this crate's build script), so
        // two builds of different simulators never share a key — the change
        // that makes the sweep engine's disk cache safe to default on.
        h.write_str("virgo-simkey");
        h.write_u64(5);
        h.write_str(env!("VIRGO_SOURCE_DIGEST"));
        config.stable_hash(&mut h);
        kernel.stable_hash(&mut h);
        h.write_u64(max_cycles);
        mode.stable_hash(&mut h);
        let (hi, lo) = h.finish128();
        SimKey { hi, lo }
    }

    /// Renders the key as a fixed-width 32-character lower-case hex string
    /// (usable as a file name).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the hex form produced by [`SimKey::to_hex`].
    pub fn from_hex(s: &str) -> Option<SimKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(SimKey { hi, lo })
    }
}

impl fmt::Display for SimKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use virgo_isa::{DataType, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn kernel(name: &str, ops: u32) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new(name, 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        )
    }

    #[test]
    fn key_depends_on_every_input() {
        let config = GpuConfig::virgo();
        let base = SimKey::digest(&config, &kernel("k", 4), 1000, SimMode::FastForward);
        assert_ne!(
            base,
            SimKey::digest(&config, &kernel("k", 5), 1000, SimMode::FastForward),
            "kernel contents"
        );
        assert_ne!(
            base,
            SimKey::digest(&config, &kernel("other", 4), 1000, SimMode::FastForward),
            "kernel name"
        );
        assert_ne!(
            base,
            SimKey::digest(&config, &kernel("k", 4), 1001, SimMode::FastForward),
            "cycle budget"
        );
        assert_ne!(
            base,
            SimKey::digest(&config, &kernel("k", 4), 1000, SimMode::Naive),
            "mode"
        );
        let other_config = GpuConfig::virgo().with_clusters(2);
        assert_ne!(
            base,
            SimKey::digest(&other_config, &kernel("k", 4), 1000, SimMode::FastForward),
            "config"
        );
        let channel_config = GpuConfig::virgo().with_dram_channels(2);
        assert_ne!(
            base,
            SimKey::digest(&channel_config, &kernel("k", 4), 1000, SimMode::FastForward),
            "DRAM channel count"
        );
        let dsm_config = GpuConfig::virgo().with_dsm_enabled();
        assert_ne!(
            base,
            SimKey::digest(&dsm_config, &kernel("k", 4), 1000, SimMode::FastForward),
            "DSM fabric"
        );
        let fault_config =
            GpuConfig::virgo().with_faults(virgo_sim::FaultPlan::seeded(1).with_event(
                virgo_sim::FaultKind::DsmLinkDown { link: 0 },
                0,
                100,
            ));
        assert_ne!(
            base,
            SimKey::digest(&fault_config, &kernel("k", 4), 1000, SimMode::FastForward),
            "fault plan"
        );
    }

    #[test]
    fn key_is_stable_for_equal_inputs() {
        let config = GpuConfig::ampere_style();
        let a = SimKey::digest(&config, &kernel("k", 4), 1000, SimMode::FastForward);
        let b = SimKey::digest(&config.clone(), &kernel("k", 4), 1000, SimMode::FastForward);
        assert_eq!(a, b);
    }

    #[test]
    fn key_absorbs_simulator_source_digest() {
        // The build script must have produced a well-formed 64-bit hex
        // digest of the model crates' sources; a malformed value here means
        // every key silently stops discriminating simulator versions.
        let digest = env!("VIRGO_SOURCE_DIGEST");
        assert_eq!(digest.len(), 16, "{digest:?}");
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()), "{digest:?}");
    }

    #[test]
    fn hex_roundtrip() {
        let key = SimKey::digest(
            &GpuConfig::virgo(),
            &kernel("k", 1),
            100,
            SimMode::FastForward,
        );
        assert_eq!(SimKey::from_hex(&key.to_hex()), Some(key));
        assert_eq!(SimKey::from_hex("nope"), None);
        assert_eq!(SimKey::from_hex(&"g".repeat(32)), None);
    }
}
