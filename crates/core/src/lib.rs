//! The Virgo GPU cluster simulator.
//!
//! This crate assembles the substrates of the workspace — SIMT cores
//! (`virgo-simt`), the banked shared memory, caches, DRAM and DMA
//! (`virgo-mem`), the core-coupled tensor units (`virgo-tensor`), the
//! disaggregated cluster-level matrix unit (`virgo-gemmini`) and the
//! energy/area models (`virgo-energy`) — into the four GPU design points the
//! paper evaluates:
//!
//! * **Volta-style** — tightly-coupled tensor cores, no DMA,
//! * **Ampere-style** — tightly-coupled tensor cores plus a cluster DMA,
//! * **Hopper-style** — operand-decoupled tensor cores plus a cluster DMA,
//! * **Virgo** — a single disaggregated matrix unit at the cluster level.
//!
//! The machine scales out by *clusters*, the paper's Table 1 argument: a
//! [`GpuConfig`] describes one cluster plus a cluster count, and the
//! simulated machine instantiates that many identical clusters all
//! contending for a single shared L2/DRAM back-end
//! (`virgo_mem::MemoryBackend`).
//!
//! The main entry point is [`Gpu`]: configure it with a [`GpuConfig`] preset
//! (scaled out with [`GpuConfig::with_clusters`] if desired), hand it a
//! [`Kernel`](virgo_isa::Kernel) built by `virgo-kernels`, and it returns a
//! [`SimReport`] containing the cycle count, MAC utilization, per-component
//! active power and energy, per-cluster breakdowns (including DRAM-contention
//! stalls on the shared channel) and the raw event statistics the paper's
//! tables and figures are derived from.
//!
//! # Example
//!
//! ```
//! use virgo::{DesignKind, Gpu, GpuConfig};
//! use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};
//! use std::sync::Arc;
//!
//! // A trivial kernel: one warp executing a few ALU instructions.
//! let mut b = ProgramBuilder::new();
//! b.op_n(8, WarpOp::Alu { rf_reads: 2, rf_writes: 1 });
//! let program = Arc::new(b.build());
//! let kernel = Kernel::new(
//!     KernelInfo::new("smoke", 0, DataType::Fp16),
//!     vec![WarpAssignment::new(0, 0, program)],
//! );
//!
//! let mut gpu = Gpu::new(GpuConfig::for_design(DesignKind::Virgo));
//! let report = gpu.run(&kernel, 10_000).expect("kernel finishes");
//! assert!(report.cycles().get() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod config;
pub mod jobs;
pub mod key;
mod machine;
pub mod report;
pub mod run;
pub mod snapshot;

pub use cluster::{Cluster, ClusterDevices, ClusterStats, PlacedWarpSnapshot};
pub use config::{DesignKind, GpuConfig, MatrixUnitSpec};
pub use jobs::{JobCompletion, JobId, JobTable};
pub use key::SimKey;
pub use report::{ClusterReport, LoadImbalance, SchedStats, SimReport};
pub use run::{
    BlockedOn, Gpu, SimError, SimMode, TimeoutDiagnosis, WarpDiagnosis, WatchdogVerdict,
};
pub use snapshot::SnapshotError;
// Fault-injection vocabulary, re-exported so callers can build a
// [`GpuConfig::with_faults`] plan without depending on `virgo-sim` directly.
pub use virgo_sim::{ClusterFaultStats, FaultEvent, FaultKind, FaultPlan, FaultStats};
