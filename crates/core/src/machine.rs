//! The machine under simulation, factored out of the run loop so that both
//! the single-kernel drivers ([`crate::run::Gpu`]) and the multi-job
//! residency session ([`crate::jobs::JobTable`]) share one substrate.
//!
//! A [`Machine`] is every cluster plus the shared L2/DRAM back-end they
//! contend for and the inter-cluster DSM fabric linking their scratchpads.
//! The multi-job extensions treat the cluster vector as a slot table: a job
//! is *loaded* by rebuilding its subset of cluster slots around a kernel
//! (fresh cores, engines and scratchpads — exactly what [`Machine::new`]
//! does for the whole machine), and *unloaded* by putting an idle cluster
//! back in the slot. The shared back-end and fabric deliberately persist
//! across loads: cross-job contention there is the phenomenon the job table
//! exists to model.

use virgo_isa::Kernel;
use virgo_mem::{DsmFabric, MemoryBackend};
use virgo_sim::{earliest, Cycle, NextActivity};
use virgo_simt::BlockReason;

use crate::cluster::Cluster;
use crate::config::GpuConfig;
use crate::report::{SchedStats, SimReport};
use crate::run::{BlockedOn, TimeoutDiagnosis, WarpDiagnosis, WatchdogVerdict};

/// The machine under simulation: every cluster plus the shared memory
/// back-end they contend for and the inter-cluster DSM fabric linking their
/// scratchpads.
#[derive(Debug)]
pub(crate) struct Machine {
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) backend: MemoryBackend,
    pub(crate) fabric: DsmFabric,
}

/// A kernel with no warps: the program loaded into a cluster slot that no
/// resident job owns. Its clusters are finished on arrival, report no
/// future activity and never touch the shared back-end.
fn idle_kernel(config: &GpuConfig) -> Kernel {
    Kernel::new(
        virgo_isa::KernelInfo::new("idle", 0, config.dtype),
        Vec::new(),
    )
}

impl Machine {
    pub(crate) fn new(config: &GpuConfig, kernel: &Kernel) -> Machine {
        let cluster_count = config.clusters.max(1);
        let mut backend = MemoryBackend::new(config.global_memory(), cluster_count);
        let mut fabric = DsmFabric::new(config.dsm, cluster_count);
        if !config.faults.events.is_empty() {
            // An empty plan must not touch the components at all: the
            // faults-off machine stays bit-identical to the pre-fault model.
            backend.apply_faults(&config.faults);
            fabric.apply_faults(&config.faults);
        }
        let clusters = (0..cluster_count)
            .map(|c| Cluster::new(config.clone(), kernel, c))
            .collect();
        Machine {
            clusters,
            backend,
            fabric,
        }
    }

    /// An all-idle machine: every cluster slot holds the empty kernel, the
    /// shared back-end and fabric are cold. The starting state of a
    /// [`crate::jobs::JobTable`] session.
    pub(crate) fn idle(config: &GpuConfig) -> Machine {
        Machine::new(config, &idle_kernel(config))
    }

    /// Loads `kernel` onto the cluster slots in `ids`, replacing whatever
    /// occupied them with freshly-built clusters whose hold-in-reset window
    /// ends at `at` (or later, if the fault plan starts the cluster late).
    pub(crate) fn load(&mut self, config: &GpuConfig, kernel: &Kernel, ids: &[u32], at: u64) {
        for &id in ids {
            self.clusters[id as usize] = Cluster::new_at(config.clone(), kernel, id, at);
        }
    }

    /// Returns the cluster slots in `ids` to the idle state.
    pub(crate) fn unload(&mut self, config: &GpuConfig, ids: &[u32], at: u64) {
        let kernel = idle_kernel(config);
        for &id in ids {
            self.clusters[id as usize] = Cluster::new_at(config.clone(), &kernel, id, at);
        }
    }

    /// Replaces the shared back-end and DSM fabric with cold instances
    /// (re-applying the fault plan). Called by the job table whenever the
    /// machine goes fully idle, so a job admitted at cycle `T` onto an empty
    /// machine sees exactly the cold caches a standalone [`crate::run::Gpu`]
    /// run would — the mechanism behind the sequential ≡ standalone
    /// bit-identity guarantee.
    pub(crate) fn reset_shared(&mut self, config: &GpuConfig) {
        let cluster_count = config.clusters.max(1);
        self.backend = MemoryBackend::new(config.global_memory(), cluster_count);
        self.fabric = DsmFabric::new(config.dsm, cluster_count);
        if !config.faults.events.is_empty() {
            self.backend.apply_faults(&config.faults);
            self.fabric.apply_faults(&config.faults);
        }
    }

    pub(crate) fn finished(&self) -> bool {
        self.clusters.iter().all(Cluster::finished) && self.fabric.quiescent()
    }

    /// Whether the job occupying the cluster slots in `ids` has finished.
    ///
    /// The fabric has no per-endpoint in-flight tracking, so its global
    /// quiescence stands in for the job's: conservative (another job's DSM
    /// traffic delays retirement by its delivery latency) but exact for
    /// jobs that never touch the DSM — which includes every workload the
    /// serving layer generates.
    pub(crate) fn finished_on(&self, ids: &[u32]) -> bool {
        ids.iter().all(|&id| self.clusters[id as usize].finished()) && self.fabric.quiescent()
    }

    pub(crate) fn tick(&mut self, now: Cycle) {
        self.fabric.tick(now);
        for cluster in &mut self.clusters {
            cluster.tick(now, &mut self.backend, &mut self.fabric);
        }
    }

    /// Folds every cluster's event horizon, plus the DSM fabric's earliest
    /// in-flight delivery. `Some(now)` short-circuits: some component can act
    /// this cycle, so nothing may be skipped. `None` means nothing will ever
    /// act again — a machine-wide deadlock.
    pub(crate) fn next_activity(&mut self, now: Cycle) -> Option<Cycle> {
        let mut next = self.fabric.next_activity(now);
        if next == Some(now) {
            return next;
        }
        for cluster in &mut self.clusters {
            match cluster.next_activity(now, &mut self.backend, &mut self.fabric) {
                Some(t) if t <= now => return Some(now),
                event => next = earliest(next, event),
            }
        }
        next
    }

    /// [`Machine::next_activity`] restricted to the cluster slots in `ids`
    /// (plus the shared fabric) — the per-job deadlock probe.
    pub(crate) fn next_activity_on(&mut self, ids: &[u32], now: Cycle) -> Option<Cycle> {
        let mut next = self.fabric.next_activity(now);
        if next == Some(now) {
            return next;
        }
        for &id in ids {
            let cluster = &mut self.clusters[id as usize];
            match cluster.next_activity(now, &mut self.backend, &mut self.fabric) {
                Some(t) if t <= now => return Some(now),
                event => next = earliest(next, event),
            }
        }
        next
    }

    /// Bulk-replays a globally-quiescent gap of `cycles` cycles starting at
    /// `from` on every cluster. Safe only when [`Machine::next_activity`]
    /// reported no activity strictly before `from + cycles`: the skipped
    /// window then contains nothing but time-uniform stall/idle accounting,
    /// which `fast_forward` replays in bulk (the same soundness contract the
    /// event-queue driver relies on). The fabric needs no replay — its tick
    /// is a pure no-op while quiescent.
    pub(crate) fn fast_forward_all(&mut self, from: Cycle, cycles: u64) {
        for cluster in &mut self.clusters {
            cluster.fast_forward(from, cycles);
        }
    }

    pub(crate) fn report(
        &self,
        info: &virgo_isa::KernelInfo,
        cycles: Cycle,
        sched: SchedStats,
    ) -> SimReport {
        SimReport::from_machine(
            &self.clusters,
            &self.backend,
            &self.fabric,
            info,
            cycles,
            sched,
        )
    }

    /// Real (non-poll) instructions retired so far, machine-wide — the
    /// watchdog's forward-progress measure.
    pub(crate) fn retired_instructions(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.core_stats().instrs_issued)
            .sum()
    }

    /// Instructions retired on the cluster slots in `ids` — the per-job
    /// watchdog's forward-progress measure.
    pub(crate) fn retired_on(&self, ids: &[u32]) -> u64 {
        ids.iter()
            .map(|&id| self.clusters[id as usize].core_stats().instrs_issued)
            .sum()
    }

    pub(crate) fn timeout_diagnosis(
        &self,
        verdict: WatchdogVerdict,
        active_fault_windows: u64,
    ) -> TimeoutDiagnosis {
        TimeoutDiagnosis {
            verdict,
            active_fault_windows,
            warps: diagnose(self.clusters.iter()),
            job: None,
        }
    }

    /// Per-job timeout diagnosis: only the warps on the job's clusters, with
    /// the owning job named so a multi-resident timeout is attributable.
    pub(crate) fn timeout_diagnosis_on(
        &self,
        ids: &[u32],
        job: &str,
        verdict: WatchdogVerdict,
        active_fault_windows: u64,
    ) -> TimeoutDiagnosis {
        TimeoutDiagnosis {
            verdict,
            active_fault_windows,
            warps: diagnose(ids.iter().map(|&id| &self.clusters[id as usize])),
            job: Some(job.to_string()),
        }
    }
}

/// Collects the blocked-on state of every unfinished warp on the given
/// clusters, in (cluster, core, warp) order.
fn diagnose<'a>(clusters: impl Iterator<Item = &'a Cluster>) -> Vec<WarpDiagnosis> {
    let mut warps = Vec::new();
    for cluster in clusters {
        for placed in cluster.unfinished_warps() {
            let blocked_on = match placed.snapshot.block {
                Some(BlockReason::Fence { max_outstanding }) => BlockedOn::Fence {
                    max_outstanding,
                    outstanding: placed.async_outstanding,
                },
                Some(BlockReason::Barrier { id, .. }) => BlockedOn::Barrier { id },
                Some(BlockReason::WgmmaDrain) => BlockedOn::WgmmaDrain,
                Some(BlockReason::Loads) => BlockedOn::Loads {
                    in_flight: placed.snapshot.loads_in_flight as u32,
                },
                None => BlockedOn::Stalled,
            };
            warps.push(WarpDiagnosis {
                cluster: placed.cluster,
                core: placed.core,
                warp: placed.snapshot.global_id,
                blocked_on,
            });
        }
    }
    warps
}
