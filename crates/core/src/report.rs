//! Simulation reports: cycles, utilization, energy, power and area.

use virgo_energy::{
    AreaModel, AreaReport, Component, EnergyEvent, EnergyLedger, EnergyTable, MatrixSubcomponent,
    PowerReport,
};
use virgo_isa::KernelInfo;
use virgo_mem::{DmaStats, DramStats, GlobalMemoryStats, SmemStats};
use virgo_sim::{Cycle, Frequency, Ratio};
use virgo_simt::CoreStats;

use crate::cluster::{Cluster, ClusterStats};
use crate::config::DesignKind;

/// The result of simulating one kernel on one GPU configuration.
///
/// A report bundles the raw event statistics together with the derived
/// quantities the paper's evaluation uses: cycle count, MAC utilization
/// (Table 3), per-component active power (Figures 8–10), matrix-unit energy
/// breakdown (Figure 11), shared-memory read footprint (Table 4) and the SoC
/// area breakdown (Figure 7).
#[derive(Debug, Clone)]
pub struct SimReport {
    design: DesignKind,
    kernel_name: String,
    cycles: Cycle,
    frequency: Frequency,
    kernel_macs: u64,
    performed_macs: u64,
    peak_macs_per_cycle: u64,
    core_stats: CoreStats,
    smem_stats: SmemStats,
    gmem_stats: GlobalMemoryStats,
    dram_stats: DramStats,
    dma_stats: Option<DmaStats>,
    cluster_stats: ClusterStats,
    power: PowerReport,
    area: AreaReport,
}

impl SimReport {
    /// Builds a report from a finished cluster.
    pub(crate) fn from_cluster(cluster: &Cluster, info: &KernelInfo, cycles: Cycle) -> Self {
        let config = cluster.config();
        let devices = cluster.devices();
        let core_stats = cluster.core_stats();

        let performed_macs = devices
            .tightly_units
            .iter()
            .map(|u| u.stats().macs)
            .chain(devices.decoupled_units.iter().map(|u| u.stats().macs))
            .chain(devices.gemmini_units.iter().map(|u| u.stats().macs))
            .sum();

        let ledger = build_ledger(cluster, &core_stats);
        let table = EnergyTable::default_16nm();
        let power = PowerReport::from_ledger(&ledger, &table, cycles, config.frequency);
        let area = AreaModel::default_16nm().estimate(&config.area_params());

        SimReport {
            design: config.design,
            kernel_name: info.name.clone(),
            cycles,
            frequency: config.frequency,
            kernel_macs: info.total_macs,
            performed_macs,
            peak_macs_per_cycle: config.peak_macs_per_cycle(),
            core_stats,
            smem_stats: devices.smem.stats(),
            gmem_stats: devices.gmem.stats(),
            dram_stats: devices.gmem.dram_stats(),
            dma_stats: devices.dma.as_ref().map(|d| d.stats()),
            cluster_stats: devices.stats(),
            power,
            area,
        }
    }

    /// The design point that ran the kernel.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// The kernel's name.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Simulated cycles from kernel launch to completion.
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// Simulated runtime in seconds at the SoC clock.
    pub fn runtime_seconds(&self) -> f64 {
        self.frequency.cycles_to_seconds(self.cycles)
    }

    /// Multiply-accumulates actually performed by the matrix units.
    pub fn performed_macs(&self) -> u64 {
        self.performed_macs
    }

    /// Multiply-accumulates the kernel was expected to perform.
    pub fn kernel_macs(&self) -> u64 {
        self.kernel_macs
    }

    /// MAC utilization — the Table 3 metric: performed MACs divided by the
    /// cluster's peak MAC capacity over the runtime.
    pub fn mac_utilization(&self) -> Ratio {
        Ratio::new(
            self.performed_macs as f64,
            self.cycles.as_f64() * self.peak_macs_per_cycle as f64,
        )
    }

    /// Total instructions retired by the SIMT cores (excluding fence polls).
    pub fn instructions_retired(&self) -> u64 {
        self.core_stats.instrs_issued
    }

    /// Busy-register polls issued inside `virgo_fence` loops.
    pub fn fence_poll_instructions(&self) -> u64 {
        self.core_stats.fence_poll_instrs
    }

    /// Cycles during which at least one warp was spinning in `virgo_fence`
    /// (Section 4.5.1's synchronization-overhead metric).
    pub fn fence_wait_cycles(&self) -> u64 {
        self.core_stats.fence_wait_cycles
    }

    /// The shared-memory read footprint in bytes (Table 4).
    pub fn smem_read_footprint_bytes(&self) -> u64 {
        self.smem_stats.bytes_read
    }

    /// Aggregated SIMT-core statistics.
    pub fn core_stats(&self) -> &CoreStats {
        &self.core_stats
    }

    /// Shared-memory statistics.
    pub fn smem_stats(&self) -> &SmemStats {
        &self.smem_stats
    }

    /// Global-memory (cache hierarchy) statistics.
    pub fn gmem_stats(&self) -> &GlobalMemoryStats {
        &self.gmem_stats
    }

    /// DRAM interface statistics.
    pub fn dram_stats(&self) -> &DramStats {
        &self.dram_stats
    }

    /// DMA statistics, when the design has a DMA engine.
    pub fn dma_stats(&self) -> Option<&DmaStats> {
        self.dma_stats.as_ref()
    }

    /// Cluster-level (MMIO / async tracking) statistics.
    pub fn cluster_stats(&self) -> &ClusterStats {
        &self.cluster_stats
    }

    /// The active power / energy report (Figures 8–11).
    pub fn power(&self) -> &PowerReport {
        &self.power
    }

    /// The SoC area breakdown (Figure 7).
    pub fn area(&self) -> &AreaReport {
        &self.area
    }

    /// Total active energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.power.total_energy_mj()
    }

    /// Total SoC active power in milliwatts.
    pub fn active_power_mw(&self) -> f64 {
        self.power.active_power_mw()
    }
}

/// Converts the event counters of every cluster component into an energy
/// ledger.
fn build_ledger(cluster: &Cluster, core_stats: &CoreStats) -> EnergyLedger {
    let devices = cluster.devices();
    let mut ledger = EnergyLedger::new();

    // SIMT cores (Figure 10 stages). Register reads are part of the issue /
    // operand-collection stage; register writes are charged to writeback,
    // matching the paper's attribution of register-file power.
    ledger.record(
        Component::CoreIssue,
        EnergyEvent::InstrIssued,
        core_stats.instrs_issued + core_stats.fence_poll_instrs,
    );
    ledger.record(
        Component::CoreIssue,
        EnergyEvent::RegRead,
        core_stats.rf_reads,
    );
    ledger.record(
        Component::CoreWriteback,
        EnergyEvent::RegWrite,
        core_stats.rf_writes,
    );
    ledger.record(
        Component::CoreWriteback,
        EnergyEvent::Writeback,
        core_stats.writebacks,
    );
    ledger.record(
        Component::CoreAlu,
        EnergyEvent::AluOp,
        core_stats.alu_lane_ops,
    );
    ledger.record(
        Component::CoreFpu,
        EnergyEvent::FpuOp,
        core_stats.fpu_lane_ops,
    );
    ledger.record(
        Component::CoreLsu,
        EnergyEvent::LsuOp,
        core_stats.lsu_lane_ops,
    );
    ledger.record(
        Component::CoreLsu,
        EnergyEvent::CoalescerOp,
        devices.coalescer_ops(),
    );
    ledger.record(
        Component::CoreOther,
        EnergyEvent::BarrierEvent,
        core_stats.barrier_arrivals + devices.synchronizer.release_events(),
    );
    ledger.record(
        Component::CoreOther,
        EnergyEvent::MmioAccess,
        core_stats.fence_poll_instrs,
    );

    // Instruction fetch: one L1I line access per group of issued
    // instructions, plus the data-side cache traffic.
    let gmem = devices.gmem.stats();
    ledger.record(
        Component::L1Cache,
        EnergyEvent::L1Access,
        core_stats.icache_accesses + gmem.l1_accesses,
    );
    ledger.record(Component::L1Cache, EnergyEvent::L1Fill, gmem.l1_misses);
    ledger.record(Component::L2Cache, EnergyEvent::L2Access, gmem.l2_accesses);
    let dram = devices.gmem.dram_stats();
    ledger.record(Component::DmaOther, EnergyEvent::DramBurst, dram.bursts);

    // Shared memory.
    let smem = devices.smem.stats();
    ledger.record(
        Component::SharedMem,
        EnergyEvent::SmemWordAccess,
        smem.words_read + smem.words_written,
    );
    ledger.record(
        Component::SharedMem,
        EnergyEvent::SmemConflict,
        smem.conflict_cycles,
    );

    // DMA engine and MMIO plumbing.
    if let Some(dma) = &devices.dma {
        ledger.record(Component::DmaOther, EnergyEvent::DmaBeat, dma.stats().beats);
    }
    ledger.record(
        Component::DmaOther,
        EnergyEvent::MmioAccess,
        devices.stats().mmio_writes,
    );

    // Tightly-coupled tensor units (Volta/Ampere-style).
    for unit in &devices.tightly_units {
        let s = unit.stats();
        ledger.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacTreePe, s.macs);
        ledger.record_matrix(
            MatrixSubcomponent::OperandBuffer,
            EnergyEvent::OperandBufferAccess,
            s.operand_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::ResultBuffer,
            EnergyEvent::ResultBufferAccess,
            s.result_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
    }

    // Operand-decoupled tensor units (Hopper-style). Their accumulator
    // traffic hits the core register file.
    for unit in &devices.decoupled_units {
        let s = unit.stats();
        ledger.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacTreePe, s.macs);
        ledger.record_matrix(
            MatrixSubcomponent::OperandBuffer,
            EnergyEvent::OperandBufferAccess,
            s.operand_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::ResultBuffer,
            EnergyEvent::ResultBufferAccess,
            s.result_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
        ledger.record(Component::CoreIssue, EnergyEvent::RegRead, s.rf_accum_reads);
        ledger.record(
            Component::CoreWriteback,
            EnergyEvent::RegWrite,
            s.rf_accum_writes,
        );
    }

    // Disaggregated matrix units (Virgo).
    for unit in &devices.gemmini_units {
        let s = unit.stats();
        ledger.record_matrix(
            MatrixSubcomponent::PeArray,
            EnergyEvent::MacSystolic,
            s.macs,
        );
        ledger.record_matrix(
            MatrixSubcomponent::SmemInterface,
            EnergyEvent::OperandBufferAccess,
            s.smem_words_read,
        );
        ledger.record_matrix(
            MatrixSubcomponent::AccumMem,
            EnergyEvent::AccumWordAccess,
            s.accum_words_read + s.accum_words_written,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
    }

    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::run::Gpu;
    use std::sync::Arc;
    use virgo_isa::{DataType, Kernel, ProgramBuilder, WarpAssignment, WarpOp};

    fn trivial_kernel(macs_claimed: u64) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            32,
            WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new("alu-only", macs_claimed, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        )
    }

    #[test]
    fn report_exposes_basic_quantities() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(0), 100_000).unwrap();
        assert_eq!(report.design(), DesignKind::Virgo);
        assert_eq!(report.kernel_name(), "alu-only");
        assert_eq!(report.instructions_retired(), 32);
        assert!(report.cycles().get() >= 32);
        assert!(report.runtime_seconds() > 0.0);
        assert!(report.total_energy_mj() > 0.0);
        assert!(report.active_power_mw() > 0.0);
        assert!(report.area().total_mm2() > 0.0);
    }

    #[test]
    fn utilization_is_zero_without_matrix_work() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(1000), 100_000).unwrap();
        assert_eq!(report.performed_macs(), 0);
        assert_eq!(report.mac_utilization().as_percent(), 0.0);
    }

    #[test]
    fn core_energy_dominates_for_alu_only_kernel() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(0), 100_000).unwrap();
        let core = report.power().core_energy_uj();
        let total = report.power().total_energy_uj();
        assert!(core > 0.0);
        assert!(core / total > 0.5, "core fraction {}", core / total);
    }
}
