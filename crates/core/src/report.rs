//! Simulation reports: cycles, utilization, energy, power and area, with
//! per-cluster breakdowns and machine-wide aggregates.

use virgo_energy::{
    AreaModel, AreaReport, Component, EnergyEvent, EnergyLedger, EnergyTable, MatrixSubcomponent,
    PowerReport,
};
use virgo_isa::KernelInfo;
use virgo_mem::{
    BackendAttribution, ClusterContentionStats, ClusterDsmStats, DmaStats, DramStats, DsmFabric,
    DsmFabricStats, DsmLinkStats, FabricAttribution, GlobalMemoryStats, MemoryBackend, SmemStats,
};
use virgo_sim::{ClusterFaultStats, Cycle, FaultPlan, FaultStats, Frequency, Ratio};
use virgo_simt::CoreStats;

use crate::cluster::{Cluster, ClusterStats};
use crate::config::DesignKind;

/// Event-driven scheduler statistics: how the fast-forward driver spent the
/// run and which component class pinned each scheduled event.
///
/// These counters describe the *driver*, not the architecture: they are all
/// zero under `SimMode::Naive` (which has no scheduler) and are deliberately
/// excluded from the report digest/fingerprint, so the two simulation modes
/// stay bit-identical on every architectural statistic while still exposing
/// where the event queue's time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Cycles on which at least one component was scheduled and ticked.
    pub processed_cycles: u64,
    /// Cycles the driver jumped over without touching any component.
    pub skipped_cycles: u64,
    /// SIMT-core ticks the scheduler dispatched.
    pub simt_events: u64,
    /// Device ticks pinned by a disaggregated Gemmini matrix unit (an event
    /// horizon — typically a block boundary of a batched operand schedule —
    /// at or before the dispatched cycle).
    pub gemmini_events: u64,
    /// Device ticks pinned by an operand-decoupled tensor unit.
    pub tensor_events: u64,
    /// Device ticks pinned by the cluster DMA engine.
    pub dma_events: u64,
    /// Inter-cluster DSM fabric ticks (dispatched at transfer deliveries).
    pub dsm_events: u64,
    /// Always zero: the L2/DRAM back-end is purely reactive (its
    /// `NextActivity` is unconditionally `None`), so it never schedules an
    /// event of its own — latency surfaces through the components that access
    /// it. The counter exists so the attribution table is exhaustive.
    pub dram_events: u64,
    /// Times the scheduler fell back to plain naive stepping because every
    /// component was due for several consecutive cycles. With batched operand
    /// streaming this should stay at zero on dense GEMM workloads.
    pub bailout_engagements: u64,
}

/// Per-cluster slice of a [`SimReport`].
///
/// Each entry aggregates one cluster's private resources (cores, shared
/// memory, L1 front-end, DMA engine, matrix units) plus that cluster's share
/// of the contention on the shared L2/DRAM back-end.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The cluster's index within the machine.
    pub cluster: u32,
    /// Aggregated SIMT-core statistics for this cluster.
    pub core_stats: CoreStats,
    /// This cluster's shared-memory statistics.
    pub smem_stats: SmemStats,
    /// This cluster's L1 front-end statistics (`l2_*`/`dma_bytes` fields are
    /// zero here — the L2 is shared; see [`ClusterReport::contention`]).
    pub gmem_stats: GlobalMemoryStats,
    /// This cluster's DMA statistics, when the design has a DMA engine.
    pub dma_stats: Option<DmaStats>,
    /// This cluster's MMIO / async-tracking statistics.
    pub cluster_stats: ClusterStats,
    /// This cluster's contention counters on the shared L2/DRAM back-end.
    pub contention: ClusterContentionStats,
    /// This cluster's traffic over the inter-cluster DSM fabric (all
    /// counters zero when the fabric is disabled or unused).
    pub dsm: ClusterDsmStats,
    /// Multiply-accumulates performed by this cluster's matrix units.
    pub performed_macs: u64,
    /// Active energy this cluster's events contributed, in millijoules.
    pub energy_mj: f64,
    /// This cluster's slice of the fault-injection accounting (all zero
    /// without a fault plan): cluster-scoped windows that activated, this
    /// cluster's scratchpad ECC events and its degraded-mode cycles.
    pub fault: ClusterFaultStats,
}

impl ClusterReport {
    /// Cycles this cluster's DRAM transfers spent queued behind busy shared
    /// channels (critical-path wait per logical transfer) — the per-cluster
    /// contention metric of the scaling study. See
    /// [`ClusterContentionStats::dram_stall_cycles`] for the exact
    /// accounting and `contention.per_channel` for the channel breakdown.
    pub fn dram_stall_cycles(&self) -> u64 {
        self.contention.dram_stall_cycles
    }
}

/// How evenly a kernel's work landed on the clusters, derived from the
/// per-cluster report slices (see [`SimReport::load_imbalance`]).
///
/// Two axes, both expressed as a max/mean spread where 1.0 is a perfectly
/// balanced machine and N is everything-on-one-cluster:
///
/// * **active cycles** — per-cluster SIMT active cycles, the compute-side
///   view of tail-cluster effects on irregular grids, and
/// * **DSM ingress bytes** — per-destination fabric traffic, the
///   reduction-side view: an all-to-one reduction shows a spread of N (the
///   whole reduction funnels into one ingress link) while a rotated one sits
///   near 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadImbalance {
    /// SIMT active cycles per cluster, in cluster order.
    pub active_cycles: Vec<u64>,
    /// DSM ingress bytes per cluster (traffic *arriving at* each cluster's
    /// port), in cluster order; all zero when the fabric is unused.
    pub dsm_ingress_bytes: Vec<u64>,
    /// `max / mean` of the per-cluster active cycles (0.0 when no cluster
    /// recorded an active cycle).
    pub active_spread: f64,
    /// `max / mean` of the per-cluster ingress bytes (0.0 when the fabric
    /// moved no bytes).
    pub dsm_ingress_spread: f64,
}

/// `max / mean` of a sample vector, 0.0 for an empty or all-zero vector.
fn spread(samples: &[u64]) -> f64 {
    let total: u64 = samples.iter().sum();
    if total == 0 || samples.is_empty() {
        return 0.0;
    }
    let mean = total as f64 / samples.len() as f64;
    let max = samples.iter().copied().max().unwrap_or(0);
    max as f64 / mean
}

/// The result of simulating one kernel on one GPU configuration.
///
/// A report bundles the raw event statistics together with the derived
/// quantities the paper's evaluation uses: cycle count, MAC utilization
/// (Table 3), per-component active power (Figures 8–10), matrix-unit energy
/// breakdown (Figure 11), shared-memory read footprint (Table 4) and the SoC
/// area breakdown (Figure 7). The machine-wide aggregates sum over every
/// cluster; [`SimReport::per_cluster`] exposes the per-cluster slices, and
/// with a single cluster the aggregate event statistics equal the slice's.
/// (The one exception is energy: [`ClusterReport::energy_mj`] covers the
/// cluster's own events, while the machine total additionally charges the
/// shared DRAM channel's burst energy, so the slice is slightly below the
/// total even at one cluster.)
#[derive(Debug, Clone)]
pub struct SimReport {
    // Fields are `pub(crate)` so the sibling `snapshot` module can serialize
    // and rehydrate reports for the sweep cache; external code goes through
    // the accessors below.
    pub(crate) design: DesignKind,
    pub(crate) kernel_name: String,
    pub(crate) cycles: Cycle,
    pub(crate) frequency: Frequency,
    pub(crate) kernel_macs: u64,
    pub(crate) performed_macs: u64,
    pub(crate) peak_macs_per_cycle: u64,
    pub(crate) core_stats: CoreStats,
    pub(crate) smem_stats: SmemStats,
    pub(crate) gmem_stats: GlobalMemoryStats,
    pub(crate) dram_stats: DramStats,
    pub(crate) dram_channel_stats: Vec<DramStats>,
    pub(crate) dma_stats: Option<DmaStats>,
    pub(crate) cluster_stats: ClusterStats,
    pub(crate) per_cluster: Vec<ClusterReport>,
    pub(crate) dram_contention_stall_cycles: u64,
    pub(crate) dsm_stats: DsmFabricStats,
    pub(crate) dsm_link_stats: Vec<DsmLinkStats>,
    pub(crate) fault: FaultStats,
    pub(crate) sched: SchedStats,
    pub(crate) power: PowerReport,
    pub(crate) area: AreaReport,
}

/// One job's view of the machine at retirement: the cluster slots the job
/// owned plus the shared-resource counters accumulated over its residency
/// window (an attribution delta between retirement and admission snapshots).
///
/// The single-kernel drivers build the degenerate view — every cluster,
/// zero-base attribution, `admitted = 0` — so [`SimReport::from_parts`]
/// reproduces the pre-refactor report byte for byte.
pub(crate) struct JobView<'a> {
    /// The cluster slots the job ran on, in cluster-id order.
    pub(crate) clusters: Vec<&'a Cluster>,
    /// Shared back-end counters accumulated over the residency window.
    pub(crate) backend: BackendAttribution,
    /// DSM fabric counters accumulated over the residency window.
    pub(crate) fabric: FabricAttribution,
    /// Absolute cycle the job was admitted (0 for a standalone run).
    pub(crate) admitted: u64,
    /// Absolute cycle the window closed (equals the relative cycle count
    /// for a standalone run).
    pub(crate) end: u64,
}

/// Fault windows first activated inside `(admitted, end]` — all of them when
/// `admitted` is zero, so the standalone path is unchanged.
fn windows_between(count_by: impl Fn(u64) -> u64, admitted: u64, end: u64) -> u64 {
    let before = if admitted == 0 {
        0
    } else {
        count_by(admitted - 1)
    };
    count_by(end).saturating_sub(before)
}

impl SimReport {
    /// Builds a report from the finished machine: every cluster plus the
    /// shared memory back-end. The degenerate single-job view of
    /// [`SimReport::from_parts`].
    pub(crate) fn from_machine(
        clusters: &[Cluster],
        backend: &MemoryBackend,
        fabric: &DsmFabric,
        info: &KernelInfo,
        cycles: Cycle,
        sched: SchedStats,
    ) -> Self {
        let view = JobView {
            clusters: clusters.iter().collect(),
            backend: backend.attribution(),
            fabric: fabric.attribution(),
            admitted: 0,
            end: cycles.get(),
        };
        SimReport::from_parts(&view, info, cycles, sched)
    }

    /// Builds a report from one job's view of the machine.
    ///
    /// `cycles` is the job's residency duration (`end - admitted`). All
    /// plan-derived fault counters are windowed to the residency; machine
    /// aggregates derived from the attribution deltas (`dram_stats`,
    /// `dsm_stats`, DRAM burst energy) are exact when the job had the
    /// machine to itself and a shared-window approximation under concurrent
    /// residency, while per-cluster counters (contention slices, core/smem
    /// stats, ECC) are exact always.
    pub(crate) fn from_parts(
        view: &JobView<'_>,
        info: &KernelInfo,
        cycles: Cycle,
        sched: SchedStats,
    ) -> Self {
        let config = view.clusters[0].config();
        let table = EnergyTable::default_16nm();
        let plan: &FaultPlan = &config.faults;
        let (admitted, end) = (view.admitted, view.end);

        // Per-cluster slices, each with its own energy ledger; the machine
        // ledger is their merge plus the shared back-end's DRAM traffic.
        let mut machine_ledger = EnergyLedger::new();
        let mut per_cluster = Vec::with_capacity(view.clusters.len());
        let mut ecc_total = virgo_sim::EccStats::default();
        for &cluster in &view.clusters {
            let id = cluster.cluster_id();
            let contention = view.backend.per_cluster[id as usize].clone();
            let dsm = view.fabric.per_cluster[id as usize].clone();
            let ledger = build_cluster_ledger(cluster, &contention, &dsm);
            let devices = cluster.devices();
            let ecc = devices.smem.ecc_stats();
            ecc_total.injected += ecc.injected;
            ecc_total.detected += ecc.detected;
            ecc_total.corrected += ecc.corrected;
            per_cluster.push(ClusterReport {
                cluster: id,
                core_stats: cluster.core_stats(),
                smem_stats: devices.smem.stats(),
                gmem_stats: devices.gmem.stats(),
                dma_stats: devices.dma.as_ref().map(|d| d.stats()),
                cluster_stats: devices.stats(),
                contention,
                dsm,
                performed_macs: cluster.performed_macs(),
                energy_mj: ledger.total_energy_pj(&table) * 1e-9,
                fault: ClusterFaultStats {
                    injected: windows_between(
                        |c| plan.cluster_windows_activated_by(id, c),
                        admitted,
                        end,
                    ) + ecc.injected,
                    detected: ecc.detected,
                    corrected: ecc.corrected,
                    degraded_cycles: plan
                        .cluster_degraded_cycles(id, end)
                        .saturating_sub(plan.cluster_degraded_cycles(id, admitted)),
                },
            });
            machine_ledger.merge(&ledger);
        }
        // Degraded-mode cycles come analytically from the plan (union of
        // windows clipped to the run), while reroute/re-stripe/recovery
        // counters come from the components that actually absorbed the
        // faults — so the two simulation modes agree bit-for-bit.
        let dsm_fault = view.fabric.fault;
        let dram_fault = view.backend.dram_fault;
        let fault = FaultStats {
            injected: windows_between(|c| plan.windows_activated_by(c), admitted, end)
                + ecc_total.injected,
            detected: ecc_total.detected,
            corrected: ecc_total.corrected,
            degraded_cycles: plan
                .degraded_cycles(end)
                .saturating_sub(plan.degraded_cycles(admitted)),
            dsm_rerouted_transfers: dsm_fault.rerouted_transfers,
            dsm_blocked_cycles: dsm_fault.blocked_cycles,
            dram_restriped_accesses: dram_fault.restriped_accesses,
            recovery_cycles: dsm_fault.recovery_cycles + dram_fault.recovery_cycles,
        };
        // DRAM interface energy is charged per channel: each channel's PHY
        // and controller see only the bursts routed to it. The counts are
        // integers, so the per-channel sum is exactly the old single-channel
        // charge when `channels = 1`.
        for channel in &view.backend.dram_channels {
            machine_ledger.record(Component::DmaOther, EnergyEvent::DramBurst, channel.bursts);
        }

        // Machine-wide aggregates over the job's clusters. The DSM link
        // merge runs over the job's requesters only, which on the full
        // machine is every requester — the pre-refactor per-link view.
        let mut core_stats = CoreStats::default();
        let mut smem_stats = SmemStats::default();
        let mut gmem_stats = GlobalMemoryStats::default();
        let mut cluster_stats = ClusterStats::default();
        let mut dma_stats: Option<DmaStats> = None;
        let mut performed_macs = 0u64;
        let mut dram_contention_stall_cycles = 0u64;
        let links = view
            .fabric
            .per_cluster
            .iter()
            .map(|c| c.per_link.len())
            .max()
            .unwrap_or(0);
        let mut dsm_link_stats = vec![DsmLinkStats::default(); links];
        for slice in &per_cluster {
            core_stats.merge(&slice.core_stats);
            smem_stats.merge(&slice.smem_stats);
            gmem_stats.merge(&slice.gmem_stats);
            cluster_stats.merge(&slice.cluster_stats);
            if let Some(dma) = &slice.dma_stats {
                dma_stats.get_or_insert_with(DmaStats::default).merge(dma);
            }
            performed_macs += slice.performed_macs;
            dram_contention_stall_cycles += slice.contention.dram_stall_cycles;
            for (link, stats) in dsm_link_stats.iter_mut().zip(&slice.dsm.per_link) {
                link.merge(stats);
            }
        }
        gmem_stats.l2_accesses = view.backend.stats.l2_accesses;
        gmem_stats.l2_misses = view.backend.stats.l2_misses;
        gmem_stats.dma_bytes = view.backend.stats.dma_bytes;

        let power = PowerReport::from_ledger(&machine_ledger, &table, cycles, config.frequency);
        let area = AreaModel::default_16nm().estimate(&config.area_params());

        SimReport {
            design: config.design,
            kernel_name: info.name.clone(),
            cycles,
            frequency: config.frequency,
            kernel_macs: info.total_macs,
            performed_macs,
            peak_macs_per_cycle: config.machine_peak_macs_per_cycle(),
            core_stats,
            smem_stats,
            gmem_stats,
            dram_stats: view.backend.dram,
            dram_channel_stats: view.backend.dram_channels.clone(),
            dma_stats,
            cluster_stats,
            per_cluster,
            dram_contention_stall_cycles,
            dsm_stats: view.fabric.stats,
            dsm_link_stats,
            fault,
            sched,
            power,
            area,
        }
    }

    /// The design point that ran the kernel.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// The kernel's name.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Simulated cycles from kernel launch to completion.
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// Simulated runtime in seconds at the SoC clock.
    pub fn runtime_seconds(&self) -> f64 {
        self.frequency.cycles_to_seconds(self.cycles)
    }

    /// Multiply-accumulates actually performed by the matrix units, summed
    /// over every cluster.
    pub fn performed_macs(&self) -> u64 {
        self.performed_macs
    }

    /// Multiply-accumulates the kernel was expected to perform.
    pub fn kernel_macs(&self) -> u64 {
        self.kernel_macs
    }

    /// MAC utilization — the Table 3 metric: performed MACs divided by the
    /// machine's peak MAC capacity over the runtime.
    pub fn mac_utilization(&self) -> Ratio {
        Ratio::new(
            self.performed_macs as f64,
            self.cycles.as_f64() * self.peak_macs_per_cycle as f64,
        )
    }

    /// Total instructions retired by the SIMT cores (excluding fence polls).
    pub fn instructions_retired(&self) -> u64 {
        self.core_stats.instrs_issued
    }

    /// Busy-register polls issued inside `virgo_fence` loops.
    pub fn fence_poll_instructions(&self) -> u64 {
        self.core_stats.fence_poll_instrs
    }

    /// Cycles during which at least one warp was spinning in `virgo_fence`
    /// (Section 4.5.1's synchronization-overhead metric), summed over cores.
    pub fn fence_wait_cycles(&self) -> u64 {
        self.core_stats.fence_wait_cycles
    }

    /// The shared-memory read footprint in bytes (Table 4).
    pub fn smem_read_footprint_bytes(&self) -> u64 {
        self.smem_stats.bytes_read
    }

    /// Aggregated SIMT-core statistics across the machine.
    pub fn core_stats(&self) -> &CoreStats {
        &self.core_stats
    }

    /// Shared-memory statistics, summed over clusters.
    pub fn smem_stats(&self) -> &SmemStats {
        &self.smem_stats
    }

    /// Event-driven scheduler statistics (all zero under `SimMode::Naive`;
    /// excluded from the report digest).
    pub fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Global-memory (cache hierarchy) statistics: L1 counters summed over
    /// clusters, L2/DMA counters from the shared back-end.
    pub fn gmem_stats(&self) -> &GlobalMemoryStats {
        &self.gmem_stats
    }

    /// DRAM interface statistics, summed over the shared channels.
    pub fn dram_stats(&self) -> &DramStats {
        &self.dram_stats
    }

    /// Per-channel DRAM interface statistics, in channel order. A
    /// single-channel machine has exactly one entry, equal to
    /// [`SimReport::dram_stats`].
    pub fn dram_channel_stats(&self) -> &[DramStats] {
        &self.dram_channel_stats
    }

    /// Number of DRAM channels the machine's back-end was configured with.
    pub fn dram_channels(&self) -> usize {
        self.dram_channel_stats.len()
    }

    /// DMA statistics summed over clusters, when the design has DMA engines.
    pub fn dma_stats(&self) -> Option<&DmaStats> {
        self.dma_stats.as_ref()
    }

    /// Cluster-level (MMIO / async tracking) statistics, summed over
    /// clusters.
    pub fn cluster_stats(&self) -> &ClusterStats {
        &self.cluster_stats
    }

    /// Per-cluster breakdowns, in cluster order.
    pub fn per_cluster(&self) -> &[ClusterReport] {
        &self.per_cluster
    }

    /// Number of clusters the machine simulated.
    pub fn clusters(&self) -> usize {
        self.per_cluster.len()
    }

    /// Total wall-clock cycles DRAM transfers lost to channel contention,
    /// summed over clusters — the machine-wide contention metric of the
    /// cluster-scaling study. Each logical transfer contributes its exposed
    /// critical-path wait: queueing the fixed DRAM latency hides costs
    /// nothing, and a DMA split across channels counts the slowest
    /// channel's queue rather than the sum of concurrent queues, so the
    /// metric is comparable across DRAM channel counts.
    pub fn dram_contention_stall_cycles(&self) -> u64 {
        self.dram_contention_stall_cycles
    }

    /// Machine-wide inter-cluster DSM fabric counters (all zero when the
    /// fabric is disabled or the kernel never issued remote traffic).
    pub fn dsm_stats(&self) -> &DsmFabricStats {
        &self.dsm_stats
    }

    /// Per-ingress-link DSM traffic, summed over requester clusters, in
    /// link (= destination cluster) order.
    pub fn dsm_link_stats(&self) -> &[DsmLinkStats] {
        &self.dsm_link_stats
    }

    /// Bytes moved cluster-to-cluster over the DSM fabric.
    pub fn dsm_bytes(&self) -> u64 {
        self.dsm_stats.bytes
    }

    /// The per-cluster load-imbalance view: SIMT active cycles per cluster
    /// and DSM ingress bytes per destination cluster, each with its
    /// `max / mean` spread. Derived entirely from the stored per-cluster
    /// slices, so it is available on cache-rehydrated reports too.
    pub fn load_imbalance(&self) -> LoadImbalance {
        let active_cycles: Vec<u64> = self
            .per_cluster
            .iter()
            .map(|c| c.core_stats.active_cycles)
            .collect();
        let dsm_ingress_bytes: Vec<u64> = self.dsm_link_stats.iter().map(|l| l.bytes).collect();
        LoadImbalance {
            active_spread: spread(&active_cycles),
            dsm_ingress_spread: spread(&dsm_ingress_bytes),
            active_cycles,
            dsm_ingress_bytes,
        }
    }

    /// Machine-wide fault-injection and degraded-mode accounting (all zero
    /// when the configuration carries no fault plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault
    }

    /// True when any fault activity was recorded: a window activated, an
    /// ECC upset was injected, or a component ran in degraded mode.
    pub fn faults_injected(&self) -> bool {
        self.fault.injected > 0 || self.fault.degraded_cycles > 0
    }

    /// Total DRAM traffic in bytes at the channel interface (after burst
    /// rounding) — the demand the DSM fabric exists to reduce.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_stats.bytes
    }

    /// The active power / energy report (Figures 8–11).
    pub fn power(&self) -> &PowerReport {
        &self.power
    }

    /// The SoC area breakdown (Figure 7).
    pub fn area(&self) -> &AreaReport {
        &self.area
    }

    /// Total active energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.power.total_energy_mj()
    }

    /// Total SoC active power in milliwatts.
    pub fn active_power_mw(&self) -> f64 {
        self.power.active_power_mw()
    }
}

/// Converts the event counters of one cluster's components into an energy
/// ledger. Shared-L2 accesses are charged to the requesting cluster via its
/// `contention` counters, and DSM link-hop traversals via its `dsm`
/// counters; DRAM bursts are *not* recorded here — the channel is shared, so
/// the machine report charges it once from the back-end's counters.
fn build_cluster_ledger(
    cluster: &Cluster,
    contention: &ClusterContentionStats,
    dsm: &ClusterDsmStats,
) -> EnergyLedger {
    let devices = cluster.devices();
    let core_stats = cluster.core_stats();
    let mut ledger = EnergyLedger::new();

    // SIMT cores (Figure 10 stages). Register reads are part of the issue /
    // operand-collection stage; register writes are charged to writeback,
    // matching the paper's attribution of register-file power.
    ledger.record(
        Component::CoreIssue,
        EnergyEvent::InstrIssued,
        core_stats.instrs_issued + core_stats.fence_poll_instrs,
    );
    ledger.record(
        Component::CoreIssue,
        EnergyEvent::RegRead,
        core_stats.rf_reads,
    );
    ledger.record(
        Component::CoreWriteback,
        EnergyEvent::RegWrite,
        core_stats.rf_writes,
    );
    ledger.record(
        Component::CoreWriteback,
        EnergyEvent::Writeback,
        core_stats.writebacks,
    );
    ledger.record(
        Component::CoreAlu,
        EnergyEvent::AluOp,
        core_stats.alu_lane_ops,
    );
    ledger.record(
        Component::CoreFpu,
        EnergyEvent::FpuOp,
        core_stats.fpu_lane_ops,
    );
    ledger.record(
        Component::CoreLsu,
        EnergyEvent::LsuOp,
        core_stats.lsu_lane_ops,
    );
    ledger.record(
        Component::CoreLsu,
        EnergyEvent::CoalescerOp,
        devices.coalescer_ops(),
    );
    ledger.record(
        Component::CoreOther,
        EnergyEvent::BarrierEvent,
        core_stats.barrier_arrivals + devices.synchronizer.release_events(),
    );
    ledger.record(
        Component::CoreOther,
        EnergyEvent::MmioAccess,
        core_stats.fence_poll_instrs,
    );

    // Instruction fetch: one L1I line access per group of issued
    // instructions, plus the data-side L1 traffic of this cluster's
    // front-end. The shared L2 is charged with the cluster's own accesses so
    // contention energy follows the requester.
    let gmem = devices.gmem.stats();
    ledger.record(
        Component::L1Cache,
        EnergyEvent::L1Access,
        core_stats.icache_accesses + gmem.l1_accesses,
    );
    ledger.record(Component::L1Cache, EnergyEvent::L1Fill, gmem.l1_misses);
    ledger.record(
        Component::L2Cache,
        EnergyEvent::L2Access,
        contention.l2_accesses,
    );

    // Shared memory.
    let smem = devices.smem.stats();
    ledger.record(
        Component::SharedMem,
        EnergyEvent::SmemWordAccess,
        smem.words_read + smem.words_written,
    );
    ledger.record(
        Component::SharedMem,
        EnergyEvent::SmemConflict,
        smem.conflict_cycles,
    );

    // DMA engine and MMIO plumbing.
    if let Some(dma) = &devices.dma {
        ledger.record(Component::DmaOther, EnergyEvent::DmaBeat, dma.stats().beats);
    }
    // Inter-cluster DSM fabric: each flit-hop traversal is charged to the
    // requesting cluster (zero when the fabric is disabled, so the ledger —
    // and every pinned energy bit — is untouched on non-DSM machines).
    ledger.record(Component::DmaOther, EnergyEvent::DsmLinkHop, dsm.hop_flits);
    ledger.record(
        Component::DmaOther,
        EnergyEvent::MmioAccess,
        devices.stats().mmio_writes,
    );

    // Tightly-coupled tensor units (Volta/Ampere-style).
    for unit in &devices.tightly_units {
        let s = unit.stats();
        ledger.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacTreePe, s.macs);
        ledger.record_matrix(
            MatrixSubcomponent::OperandBuffer,
            EnergyEvent::OperandBufferAccess,
            s.operand_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::ResultBuffer,
            EnergyEvent::ResultBufferAccess,
            s.result_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
    }

    // Operand-decoupled tensor units (Hopper-style). Their accumulator
    // traffic hits the core register file.
    for unit in &devices.decoupled_units {
        let s = unit.stats();
        ledger.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacTreePe, s.macs);
        ledger.record_matrix(
            MatrixSubcomponent::OperandBuffer,
            EnergyEvent::OperandBufferAccess,
            s.operand_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::ResultBuffer,
            EnergyEvent::ResultBufferAccess,
            s.result_buffer_words,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
        ledger.record(Component::CoreIssue, EnergyEvent::RegRead, s.rf_accum_reads);
        ledger.record(
            Component::CoreWriteback,
            EnergyEvent::RegWrite,
            s.rf_accum_writes,
        );
    }

    // Disaggregated matrix units (Virgo).
    for unit in &devices.gemmini_units {
        let s = unit.stats();
        ledger.record_matrix(
            MatrixSubcomponent::PeArray,
            EnergyEvent::MacSystolic,
            s.macs,
        );
        ledger.record_matrix(
            MatrixSubcomponent::SmemInterface,
            EnergyEvent::OperandBufferAccess,
            s.smem_words_read,
        );
        ledger.record_matrix(
            MatrixSubcomponent::AccumMem,
            EnergyEvent::AccumWordAccess,
            s.accum_words_read + s.accum_words_written,
        );
        ledger.record_matrix(
            MatrixSubcomponent::Control,
            EnergyEvent::MatrixControl,
            s.control_events,
        );
    }

    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::run::Gpu;
    use std::sync::Arc;
    use virgo_isa::{DataType, Kernel, ProgramBuilder, WarpAssignment, WarpOp};

    fn trivial_kernel(macs_claimed: u64) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            32,
            WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new("alu-only", macs_claimed, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        )
    }

    #[test]
    fn report_exposes_basic_quantities() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(0), 100_000).unwrap();
        assert_eq!(report.design(), DesignKind::Virgo);
        assert_eq!(report.kernel_name(), "alu-only");
        assert_eq!(report.instructions_retired(), 32);
        assert!(report.cycles().get() >= 32);
        assert!(report.runtime_seconds() > 0.0);
        assert!(report.total_energy_mj() > 0.0);
        assert!(report.active_power_mw() > 0.0);
        assert!(report.area().total_mm2() > 0.0);
        assert_eq!(report.clusters(), 1);
        assert_eq!(report.per_cluster().len(), 1);
    }

    #[test]
    fn utilization_is_zero_without_matrix_work() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(1000), 100_000).unwrap();
        assert_eq!(report.performed_macs(), 0);
        assert_eq!(report.mac_utilization().as_percent(), 0.0);
    }

    #[test]
    fn core_energy_dominates_for_alu_only_kernel() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(0), 100_000).unwrap();
        let core = report.power().core_energy_uj();
        let total = report.power().total_energy_uj();
        assert!(core > 0.0);
        assert!(core / total > 0.5, "core fraction {}", core / total);
    }

    #[test]
    fn single_cluster_slice_matches_machine_aggregates() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let report = gpu.run(&trivial_kernel(0), 100_000).unwrap();
        let slice = &report.per_cluster()[0];
        assert_eq!(&slice.core_stats, report.core_stats());
        assert_eq!(&slice.smem_stats, report.smem_stats());
        assert_eq!(slice.performed_macs, report.performed_macs());
        assert_eq!(
            slice.dram_stall_cycles(),
            report.dram_contention_stall_cycles()
        );
    }

    #[test]
    fn multi_cluster_report_has_one_slice_per_cluster() {
        let program = {
            let mut b = ProgramBuilder::new();
            b.op_n(
                8,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
            Arc::new(b.build())
        };
        let kernel = Kernel::new(
            KernelInfo::new("pair", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(0, 0, 0, Arc::clone(&program)),
                WarpAssignment::on_cluster(1, 0, 0, Arc::clone(&program)),
            ],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo().with_clusters(2));
        let report = gpu.run(&kernel, 100_000).unwrap();
        assert_eq!(report.clusters(), 2);
        assert_eq!(report.instructions_retired(), 16);
        let total: u64 = report
            .per_cluster()
            .iter()
            .map(|c| c.core_stats.instrs_issued)
            .sum();
        assert_eq!(total, 16);
        // Cluster energies sum to (almost exactly) the machine energy; the
        // shared DRAM burst charge is the only machine-level extra.
        let summed: f64 = report.per_cluster().iter().map(|c| c.energy_mj).sum();
        assert!(summed <= report.total_energy_mj() + 1e-12);
    }

    #[test]
    fn spread_handles_degenerate_inputs() {
        assert_eq!(spread(&[]), 0.0);
        assert_eq!(spread(&[0, 0, 0]), 0.0);
        assert_eq!(spread(&[100, 100, 100, 100]), 1.0);
        // Everything on one of four clusters: max / mean = 4.
        assert_eq!(spread(&[400, 0, 0, 0]), 4.0);
    }

    #[test]
    fn load_imbalance_reflects_uneven_cluster_work() {
        // Cluster 0 runs 4x the instructions of cluster 1.
        let busy = {
            let mut b = ProgramBuilder::new();
            b.op_n(
                64,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
            Arc::new(b.build())
        };
        let light = {
            let mut b = ProgramBuilder::new();
            b.op_n(
                16,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
            Arc::new(b.build())
        };
        let kernel = Kernel::new(
            KernelInfo::new("skew", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(0, 0, 0, busy),
                WarpAssignment::on_cluster(1, 0, 0, light),
            ],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo().with_clusters(2));
        let report = gpu.run(&kernel, 100_000).unwrap();
        let imbalance = report.load_imbalance();
        assert_eq!(imbalance.active_cycles.len(), 2);
        assert!(imbalance.active_cycles[0] > imbalance.active_cycles[1]);
        assert!(
            imbalance.active_spread > 1.0 && imbalance.active_spread <= 2.0,
            "spread {}",
            imbalance.active_spread
        );
        // No DSM traffic: the ingress axis reports zero, not NaN.
        assert_eq!(imbalance.dsm_ingress_spread, 0.0);
    }
}
