//! The top-level GPU object and simulation driver.

use std::fmt;

use virgo_isa::Kernel;
use virgo_sim::Cycle;

use crate::cluster::Cluster;
use crate::config::GpuConfig;
use crate::report::SimReport;

/// Errors returned by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel did not finish within the cycle budget — usually a
    /// deadlocked synchronization pattern (mismatched barriers or a fence on
    /// an operation that was never launched).
    Timeout {
        /// The cycle budget that was exhausted.
        limit: u64,
    },
    /// The kernel uses no warps.
    EmptyKernel,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { limit } => {
                write!(f, "kernel did not finish within {limit} cycles")
            }
            SimError::EmptyKernel => write!(f, "kernel has no warps"),
        }
    }
}

impl std::error::Error for SimError {}

/// How the simulation driver advances time.
///
/// Both modes produce **bit-identical** [`SimReport`]s — the fast-forward
/// engine's soundness contract (see `virgo_sim::activity`) guarantees that
/// skipped cycles could only have performed time-uniform stall accounting,
/// which is replayed in bulk. [`SimMode::Naive`] is retained as the reference
/// implementation for equivalence testing and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Tick every component once per cycle, the classic cycle-stepped loop.
    Naive,
    /// Skip quiescent regions: when no core or device can make progress
    /// before cycle `t`, jump straight to `t` and bulk-account the skipped
    /// stall/idle cycles. This is the default; on stall-heavy workloads
    /// (DRAM/DMA-bound tiles, fence waits) it reduces wall-clock time by
    /// orders of magnitude.
    #[default]
    FastForward,
}

impl fmt::Display for SimMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimMode::Naive => write!(f, "naive"),
            SimMode::FastForward => write!(f, "fast-forward"),
        }
    }
}

/// A simulated GPU (one cluster plus its memory system) at a fixed
/// configuration.
///
/// Each [`Gpu::run`] builds a fresh cluster (cold caches, idle engines) so
/// runs are independent and reproducible.
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        Gpu { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates `kernel` to completion, up to `max_cycles`, using the
    /// default [`SimMode::FastForward`] driver.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the kernel has not finished within
    /// `max_cycles`, and [`SimError::EmptyKernel`] if the kernel contains no
    /// warps.
    pub fn run(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_with_mode(kernel, max_cycles, SimMode::FastForward)
    }

    /// Simulates `kernel` with the naive one-cycle-at-a-time reference loop.
    ///
    /// # Errors
    ///
    /// Same as [`Gpu::run`].
    pub fn run_naive(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_with_mode(kernel, max_cycles, SimMode::Naive)
    }

    /// Simulates `kernel` to completion, up to `max_cycles`, with an explicit
    /// time-advance mode.
    ///
    /// In [`SimMode::FastForward`] the driver asks the cluster for the
    /// earliest cycle at which any component can make progress; if that is in
    /// the future it jumps there directly, bulk-accounting the skipped
    /// stall/idle cycles so every statistic stays bit-identical to the naive
    /// loop. A cluster with no future activity at all (a deadlock) is
    /// forwarded straight to the cycle budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the kernel has not finished within
    /// `max_cycles`, and [`SimError::EmptyKernel`] if the kernel contains no
    /// warps.
    pub fn run_with_mode(
        &mut self,
        kernel: &Kernel,
        max_cycles: u64,
        mode: SimMode,
    ) -> Result<SimReport, SimError> {
        if kernel.warps.is_empty() {
            return Err(SimError::EmptyKernel);
        }
        let mut cluster = Cluster::new(self.config.clone(), kernel);
        let mut cycle = 0u64;
        while cycle < max_cycles {
            if cluster.finished() {
                return Ok(SimReport::from_cluster(
                    &cluster,
                    &kernel.info,
                    Cycle::new(cycle),
                ));
            }
            if mode == SimMode::FastForward {
                let target = cluster
                    .next_activity(Cycle::new(cycle))
                    .map_or(max_cycles, |t| t.get().min(max_cycles));
                if target > cycle {
                    cluster.fast_forward(Cycle::new(cycle), target - cycle);
                    cycle = target;
                    continue;
                }
            }
            cluster.tick(Cycle::new(cycle));
            cycle += 1;
        }
        if cluster.finished() {
            Ok(SimReport::from_cluster(
                &cluster,
                &kernel.info,
                Cycle::new(cycle),
            ))
        } else {
            Err(SimError::Timeout { limit: max_cycles })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignKind, GpuConfig};
    use std::sync::Arc;
    use virgo_isa::{DataType, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn kernel(ops: u32) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new("k", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        )
    }

    #[test]
    fn run_returns_report_for_finishing_kernel() {
        let mut gpu = Gpu::new(GpuConfig::for_design(DesignKind::AmpereStyle));
        let report = gpu.run(&kernel(4), 1000).unwrap();
        assert_eq!(report.instructions_retired(), 4);
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let empty = Kernel::new(KernelInfo::new("none", 0, DataType::Fp16), Vec::new());
        assert_eq!(gpu.run(&empty, 100).unwrap_err(), SimError::EmptyKernel);
    }

    #[test]
    fn deadlocked_kernel_times_out() {
        // A single warp waiting at a two-participant barrier never finishes.
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Barrier { id: 0 });
        let lonely = Kernel::new(
            KernelInfo::new("deadlock", 0, DataType::Fp16),
            vec![
                WarpAssignment::new(0, 0, Arc::new(b.build())),
                WarpAssignment::new(0, 1, Arc::new(ProgramBuilder::new().build())),
            ],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let result = gpu.run(&lonely, 2000);
        assert_eq!(result.unwrap_err(), SimError::Timeout { limit: 2000 });
    }

    #[test]
    fn runs_are_reproducible() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let a = gpu.run(&kernel(64), 100_000).unwrap();
        let b = gpu.run(&kernel(64), 100_000).unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.instructions_retired(), b.instructions_retired());
        assert!((a.total_energy_mj() - b.total_energy_mj()).abs() < 1e-15);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SimError::Timeout { limit: 5 }
            .to_string()
            .contains("5 cycles"));
        assert!(SimError::EmptyKernel.to_string().contains("no warps"));
    }
}
