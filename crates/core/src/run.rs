//! The top-level GPU object and simulation driver.

use std::fmt;

use virgo_isa::Kernel;
use virgo_sim::{Cycle, EventQueue, NextActivity};

use crate::config::GpuConfig;
use crate::machine::Machine;
use crate::report::{SchedStats, SimReport};

/// What one unfinished warp was stuck on when the cycle budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Spinning in `virgo_fence(max_outstanding)` while `outstanding`
    /// asynchronous operations had still not completed.
    Fence {
        /// The fence's threshold.
        max_outstanding: u32,
        /// Asynchronous operations outstanding on the warp's cluster at
        /// timeout.
        outstanding: u32,
    },
    /// Waiting at cluster barrier `id` for a release that never came
    /// (mismatched barrier participation).
    Barrier {
        /// Barrier id.
        id: u8,
    },
    /// Waiting for the core's operand-decoupled tensor unit to drain.
    WgmmaDrain,
    /// Waiting for `in_flight` outstanding loads to write back.
    Loads {
        /// Loads still in flight.
        in_flight: u32,
    },
    /// Runnable but unable to issue — typically a structural hazard such as
    /// an `HMMA` step retried forever against a busy or absent unit.
    Stalled,
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Fence {
                max_outstanding,
                outstanding,
            } => write!(
                f,
                "virgo_fence({max_outstanding}) with {outstanding} async ops outstanding"
            ),
            BlockedOn::Barrier { id } => write!(f, "barrier {id}"),
            BlockedOn::WgmmaDrain => write!(f, "wgmma drain"),
            BlockedOn::Loads { in_flight } => write!(f, "{in_flight} outstanding loads"),
            BlockedOn::Stalled => write!(f, "issue stall (busy unit or hazard)"),
        }
    }
}

/// The placement and blocked state of one unfinished warp at timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpDiagnosis {
    /// Cluster the warp ran on.
    pub cluster: u32,
    /// Core within the cluster.
    pub core: u32,
    /// The warp's cluster-unique id.
    pub warp: u32,
    /// What the warp was stuck on.
    pub blocked_on: BlockedOn,
}

/// The progress watchdog's classification of why the cycle budget ran out.
///
/// The driver distinguishes a machine that *cannot* make progress from one
/// that is merely not getting anywhere, folding the event-horizon probe and
/// retirement accounting it already maintains:
///
/// * **Deadlock** — no component reports any future activity: every
///   unfinished warp is blocked on a condition nothing can ever satisfy
///   (mismatched barriers, a fence on an operation that was never launched).
/// * **Livelock** — the machine stays busy (fence-poll spinning keeps the
///   event horizon at `now`) but retired no real instruction over the second
///   half of the budget.
/// * **SlowProgress** — instructions were still retiring; the budget was
///   simply too small for the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WatchdogVerdict {
    /// No component will ever act again.
    Deadlock,
    /// Activity without retirement (e.g. every live warp spinning in
    /// `virgo_fence`).
    Livelock,
    /// The kernel was still making forward progress at timeout.
    #[default]
    SlowProgress,
}

impl fmt::Display for WatchdogVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogVerdict::Deadlock => write!(f, "deadlock"),
            WatchdogVerdict::Livelock => write!(f, "livelock"),
            WatchdogVerdict::SlowProgress => write!(f, "slow progress"),
        }
    }
}

/// Structured diagnosis attached to [`SimError::Timeout`]: the progress
/// watchdog's verdict plus every unfinished warp with its placement and
/// blocking condition, captured at the moment the cycle budget ran out. This
/// replaces the old workflow of re-running a deadlocked kernel under
/// [`SimMode::Naive`] with ad-hoc tracing just to find out which warp was
/// stuck on what.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeoutDiagnosis {
    /// The watchdog's deadlock / livelock / slow-progress classification.
    pub verdict: WatchdogVerdict,
    /// Fault windows from the configuration's [`crate::FaultPlan`] that were
    /// active at the timeout cycle — a degraded machine that stops making
    /// progress usually implicates them.
    pub active_fault_windows: u64,
    /// One entry per unfinished warp, in (cluster, core, warp) order.
    pub warps: Vec<WarpDiagnosis>,
    /// The job (or tenant request) that owned the timed-out clusters, when
    /// the timeout came from a multi-job residency session. `None` for the
    /// single-kernel drivers, whose machine has exactly one owner.
    pub job: Option<String>,
}

impl TimeoutDiagnosis {
    /// True when no warp information was captured (e.g. a hand-constructed
    /// error).
    pub fn is_empty(&self) -> bool {
        self.warps.is_empty()
    }

    /// Unfinished warps blocked on a given kind of condition.
    pub fn count_where(&self, pred: impl Fn(&BlockedOn) -> bool) -> usize {
        self.warps.iter().filter(|w| pred(&w.blocked_on)).count()
    }
}

impl fmt::Display for TimeoutDiagnosis {
    /// Renders the verdict headline followed by a per-warp table, one
    /// indented line per stuck warp (capped at eight rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} unfinished warp(s)",
            self.verdict,
            self.warps.len()
        )?;
        if let Some(job) = &self.job {
            write!(f, " in job '{job}'")?;
        }
        if self.active_fault_windows > 0 {
            write!(
                f,
                ", {} injected fault window(s) active",
                self.active_fault_windows
            )?;
        }
        const SHOWN: usize = 8;
        for w in self.warps.iter().take(SHOWN) {
            write!(
                f,
                "\n  cluster {} core {} warp {}: {}",
                w.cluster, w.core, w.warp, w.blocked_on
            )?;
        }
        if self.warps.len() > SHOWN {
            write!(f, "\n  ... {} more", self.warps.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// Errors returned by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel did not finish within the cycle budget — usually a
    /// deadlocked synchronization pattern (mismatched barriers or a fence on
    /// an operation that was never launched). The diagnosis names every
    /// unfinished warp and what it was blocked on.
    Timeout {
        /// The cycle budget that was exhausted.
        limit: u64,
        /// Per-warp blocked-on state at timeout.
        diagnosis: TimeoutDiagnosis,
    },
    /// The kernel uses no warps.
    EmptyKernel,
    /// The kernel assigns warps to cluster indices outside the configuration.
    ClusterOutOfRange {
        /// The highest cluster index the kernel uses.
        max_cluster: u32,
        /// The number of clusters the configuration provides.
        clusters: u32,
    },
    /// A [`crate::jobs::JobTable`] admission targeted a cluster slot that is
    /// not free for the job: either another resident job still owns it, or
    /// the kernel assigns warps to a cluster outside the job's allocation.
    ClusterBusy {
        /// The contested cluster index.
        cluster: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { limit, diagnosis } => {
                write!(f, "kernel did not finish within {limit} cycles")?;
                if !diagnosis.is_empty() {
                    write!(f, ": {diagnosis}")?;
                }
                Ok(())
            }
            SimError::EmptyKernel => write!(f, "kernel has no warps"),
            SimError::ClusterOutOfRange {
                max_cluster,
                clusters,
            } => write!(
                f,
                "kernel assigns warps to cluster {max_cluster} but the machine has {clusters} cluster(s)"
            ),
            SimError::ClusterBusy { cluster } => {
                write!(f, "cluster {cluster} is not free for the job")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How the simulation driver advances time.
///
/// Both modes produce **bit-identical** [`SimReport`]s — the fast-forward
/// engine's soundness contract (see `virgo_sim::activity`) guarantees that
/// skipped cycles could only have performed time-uniform stall accounting,
/// which is replayed in bulk. [`SimMode::Naive`] is retained as the reference
/// implementation for equivalence testing and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Tick every component once per cycle, the classic cycle-stepped loop.
    Naive,
    /// Skip quiescent regions: when no core or device in *any* cluster can
    /// make progress before cycle `t`, jump straight to `t` and bulk-account
    /// the skipped stall/idle cycles. This is the default; on stall-heavy
    /// workloads (DRAM/DMA-bound tiles, fence waits) it reduces wall-clock
    /// time by orders of magnitude.
    #[default]
    FastForward,
}

impl fmt::Display for SimMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimMode::Naive => write!(f, "naive"),
            SimMode::FastForward => write!(f, "fast-forward"),
        }
    }
}

impl virgo_sim::StableHash for SimMode {
    fn stable_hash(&self, h: &mut virgo_sim::StableHasher) {
        h.write_u64(match self {
            SimMode::Naive => 0,
            SimMode::FastForward => 1,
        });
    }
}

/// A simulated GPU — `clusters` identical clusters sharing one L2/DRAM
/// back-end — at a fixed configuration.
///
/// Each [`Gpu::run`] builds a fresh machine (cold caches, idle engines) so
/// runs are independent and reproducible.
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        Gpu { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates `kernel` to completion, up to `max_cycles`, using the
    /// default [`SimMode::FastForward`] driver.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the kernel has not finished within
    /// `max_cycles`, [`SimError::EmptyKernel`] if the kernel contains no
    /// warps, and [`SimError::ClusterOutOfRange`] if the kernel targets
    /// clusters the configuration does not have.
    pub fn run(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_with_mode(kernel, max_cycles, SimMode::FastForward)
    }

    /// Simulates `kernel` with the naive one-cycle-at-a-time reference loop.
    ///
    /// # Errors
    ///
    /// Same as [`Gpu::run`].
    pub fn run_naive(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_with_mode(kernel, max_cycles, SimMode::Naive)
    }

    /// Simulates `kernel` to completion, up to `max_cycles`, with an explicit
    /// time-advance mode.
    ///
    /// [`SimMode::FastForward`] runs the event-queue scheduler: every
    /// component (DSM fabric, each cluster's devices, each SIMT core)
    /// registers the cycle of its next event on a deterministic
    /// [`EventQueue`], the driver jumps straight from event to event, and a
    /// component's parked gap is bulk-replayed right before its next tick so
    /// every statistic stays bit-identical to the naive loop. A machine with
    /// no future activity at all (a deadlock) is forwarded straight to the
    /// cycle budget.
    ///
    /// # Errors
    ///
    /// Same as [`Gpu::run`].
    pub fn run_with_mode(
        &mut self,
        kernel: &Kernel,
        max_cycles: u64,
        mode: SimMode,
    ) -> Result<SimReport, SimError> {
        if kernel.warps.is_empty() {
            return Err(SimError::EmptyKernel);
        }
        let clusters = self.config.clusters.max(1);
        if let Some(max_cluster) = kernel.max_cluster() {
            if max_cluster >= clusters {
                return Err(SimError::ClusterOutOfRange {
                    max_cluster,
                    clusters,
                });
            }
        }
        let machine = Machine::new(&self.config, kernel);
        match mode {
            SimMode::Naive => self.run_naive_loop(kernel, max_cycles, machine),
            SimMode::FastForward => self.run_event_loop(kernel, max_cycles, machine),
        }
    }

    /// The reference driver: tick every component once per cycle.
    fn run_naive_loop(
        &self,
        kernel: &Kernel,
        max_cycles: u64,
        mut machine: Machine,
    ) -> Result<SimReport, SimError> {
        // Progress watchdog: one retirement checkpoint at half budget. If
        // the run times out having retired nothing since the checkpoint
        // while the event horizon still shows activity, that is a livelock
        // (spinning without progress) rather than a slow kernel.
        let watchdog_at = max_cycles / 2;
        let mut watchdog_sample: Option<u64> = None;
        let mut cycle = 0u64;
        while cycle < max_cycles {
            if watchdog_sample.is_none() && cycle >= watchdog_at {
                watchdog_sample = Some(machine.retired_instructions());
            }
            if machine.finished() {
                return Ok(machine.report(&kernel.info, Cycle::new(cycle), SchedStats::default()));
            }
            machine.tick(Cycle::new(cycle));
            cycle += 1;
        }
        if machine.finished() {
            Ok(machine.report(&kernel.info, Cycle::new(cycle), SchedStats::default()))
        } else {
            Err(self.timeout_error(&mut machine, max_cycles, watchdog_sample))
        }
    }

    /// The event-driven driver behind [`SimMode::FastForward`].
    ///
    /// Components are identified by dense ids in the naive loop's tick order
    /// — id 0 is the DSM fabric, then per cluster the devices followed by
    /// each core — and all components due at a cycle are processed in
    /// ascending id order, so execution visits components in exactly the
    /// reference sequence. `synced[id]` is the first cycle a component has
    /// not yet accounted; the gap up to the dispatched cycle is bulk-replayed
    /// (`fast_forward_*`) before the tick, which by the `virgo_sim::activity`
    /// contract only contains time-uniform stall/idle accounting.
    ///
    /// Wakes between components are edge-triggered off monotone signatures:
    ///
    /// * a barrier release during core `i`'s tick re-dispatches later cores
    ///   the same cycle and earlier ones the next cycle (naive timing);
    /// * a submission into the devices (`inbox_mark`) wakes the devices next
    ///   cycle — they tick before the cores, so a same-cycle wake would run
    ///   too early;
    /// * an async completion during a devices tick re-dispatches that
    ///   cluster's cores the same cycle (they tick after the devices);
    /// * new DSM traffic registers the fabric at its next delivery cycle.
    fn run_event_loop(
        &self,
        kernel: &Kernel,
        max_cycles: u64,
        mut machine: Machine,
    ) -> Result<SimReport, SimError> {
        // Vestigial dense-region bailout: if every component stays due for
        // `ALL_DUE_BAILOUT` consecutive processed cycles, the scheduler is
        // pure overhead — fall back to plain naive stepping for a burst
        // (doubling while the region stays dense). With batched operand
        // streaming the matrix units only wake at block boundaries, so dense
        // GEMMs no longer trip this; `SchedStats::bailout_engagements`
        // records when it does fire.
        const ALL_DUE_BAILOUT: u32 = 8;
        const NAIVE_BURST_MIN: u64 = 64;
        const NAIVE_BURST_MAX: u64 = 4096;
        const FABRIC: usize = 0;

        let cores_per_cluster = machine.clusters[0].cores().len();
        let span = 1 + cores_per_cluster;
        let total = 1 + machine.clusters.len() * span;
        let devices_id = |k: usize| 1 + k * span;

        let mut queue = EventQueue::new(total);
        let mut synced = vec![0u64; total];
        let mut due = vec![false; total];
        // Fast path for the overwhelmingly common "due again next cycle"
        // case: a bool per component instead of a heap round-trip. Invariant:
        // `due_next` marks components due at cycle `resume_at`.
        let mut due_next = vec![false; total];
        let mut any_next = false;
        for (k, cluster) in machine.clusters.iter().enumerate() {
            // Late-started clusters (fault windows) hold everything in reset
            // until `start_at`; neither mode accounts the held cycles.
            let start = cluster.start_at();
            for (id, sync) in synced.iter_mut().enumerate().skip(devices_id(k)).take(span) {
                *sync = start;
                queue.schedule(id as u32, Cycle::new(start));
            }
        }

        let mut sched = SchedStats::default();
        let watchdog_at = max_cycles / 2;
        let mut watchdog_sample: Option<u64> = None;
        let mut all_due_streak = 0u32;
        let mut naive_burst = NAIVE_BURST_MIN;
        // First cycle not yet dispatched or jumped over (skip accounting).
        let mut resume_at = 0u64;

        // A kernel of empty programs is finished before anything ticks.
        if machine.finished() {
            return Ok(machine.report(&kernel.info, Cycle::new(0), sched));
        }

        loop {
            let next_c = if any_next {
                Some(resume_at)
            } else {
                queue.next_cycle()
            };
            let c = match next_c {
                Some(c) if c < max_cycles => c,
                // Drained queue (machine-wide deadlock) or the next event is
                // past the budget: replay every parked component to the
                // budget edge — exactly the ticks the naive loop would still
                // perform — and time out. If the jump crossed the watchdog
                // checkpoint, sample now: nothing has ticked since the
                // checkpoint cycle, so retirement is unchanged and the
                // verdict stays mode-identical.
                _ => {
                    for (k, cluster) in machine.clusters.iter_mut().enumerate() {
                        let base = devices_id(k);
                        let lag = max_cycles.saturating_sub(synced[base]);
                        if lag > 0 {
                            cluster.fast_forward_devices(Cycle::new(synced[base]), lag);
                        }
                        for i in 0..cores_per_cluster {
                            let id = base + 1 + i;
                            let lag = max_cycles.saturating_sub(synced[id]);
                            if lag > 0 {
                                cluster.fast_forward_core(i, Cycle::new(synced[id]), lag);
                            }
                        }
                    }
                    let sample = watchdog_sample.unwrap_or_else(|| machine.retired_instructions());
                    return Err(self.timeout_error(&mut machine, max_cycles, Some(sample)));
                }
            };
            if watchdog_sample.is_none() && c >= watchdog_at {
                watchdog_sample = Some(machine.retired_instructions());
            }
            // `due_next` (marks for this cycle) becomes `due`; the recycled
            // buffer is cleared for the upcoming cycle's marks. Heap events
            // landing on the same cycle are merged in.
            std::mem::swap(&mut due, &mut due_next);
            due_next.fill(false);
            any_next = false;
            if queue.next_cycle() == Some(c) {
                queue.pop_due(c, &mut due);
            }
            sched.skipped_cycles += c.saturating_sub(resume_at);
            sched.processed_cycles += 1;
            resume_at = c + 1;
            let all_components_due = due[1..].iter().all(|&d| d);
            let now = Cycle::new(c);
            let next = Cycle::new(c + 1);
            // The machine-wide finish walk only runs when this cycle saw an
            // event that can flip it: a warp retiring, a device/fabric tick
            // (engines draining), or a core horizon going dormant.
            let mut check_finish = false;

            let Machine {
                clusters,
                backend,
                fabric,
            } = &mut machine;
            if due[FABRIC] {
                fabric.tick(now);
                sched.dsm_events += 1;
                check_finish = true;
                if let Some(t) = fabric.next_activity(now) {
                    if t <= next {
                        due_next[FABRIC] = true;
                        any_next = true;
                    } else {
                        queue.schedule(FABRIC as u32, t);
                    }
                }
            }
            for (k, cluster) in clusters.iter_mut().enumerate() {
                let base = devices_id(k);
                if due[base] {
                    let lag = c.saturating_sub(synced[base]);
                    if lag > 0 {
                        cluster.fast_forward_devices(Cycle::new(synced[base]), lag);
                    }
                    let (dma, gemmini, tensor) = cluster.due_engines(now);
                    sched.dma_events += u64::from(dma);
                    sched.gemmini_events += u64::from(gemmini);
                    sched.tensor_events += u64::from(tensor);
                    let completions = cluster.completion_mark();
                    let transfers = fabric.stats().transfers;
                    cluster.tick_devices(now, backend, fabric);
                    synced[base] = c + 1;
                    check_finish = true;
                    if cluster.completion_mark() != completions {
                        for i in 0..cores_per_cluster {
                            due[base + 1 + i] = true;
                        }
                    }
                    if fabric.stats().transfers != transfers {
                        if let Some(t) = fabric.next_activity(now) {
                            if t <= next {
                                due_next[FABRIC] = true;
                                any_next = true;
                            } else {
                                queue.schedule(FABRIC as u32, t);
                            }
                        }
                    }
                    match cluster.devices_next_activity(now) {
                        Some(t) if t <= next => {
                            due_next[base] = true;
                            any_next = true;
                        }
                        Some(t) => queue.schedule(base as u32, t),
                        None => {}
                    }
                }
                for i in 0..cores_per_cluster {
                    let id = base + 1 + i;
                    if !due[id] {
                        continue;
                    }
                    let lag = c.saturating_sub(synced[id]);
                    if lag > 0 {
                        cluster.fast_forward_core(i, Cycle::new(synced[id]), lag);
                    }
                    sched.simt_events += 1;
                    let releases = cluster.barrier_release_events();
                    let inbox = cluster.inbox_mark();
                    let transfers = fabric.stats().transfers;
                    let outcome = cluster.tick_core(i, now, backend, fabric);
                    synced[id] = c + 1;
                    check_finish |= outcome.warp_retired;
                    if outcome.acted {
                        // Only a real issue or a barrier arrival can change
                        // anything outside the core, so the signature checks
                        // are skipped on all other ticks.
                        if cluster.barrier_release_events() != releases {
                            for j in 0..cores_per_cluster {
                                if j > i {
                                    due[base + 1 + j] = true;
                                } else {
                                    due_next[base + 1 + j] = true;
                                    any_next = true;
                                }
                            }
                        }
                        if cluster.inbox_mark() != inbox {
                            due_next[base] = true;
                            any_next = true;
                        }
                        if fabric.stats().transfers != transfers {
                            if let Some(t) = fabric.next_activity(now) {
                                if t <= next {
                                    due_next[FABRIC] = true;
                                    any_next = true;
                                } else {
                                    queue.schedule(FABRIC as u32, t);
                                }
                            }
                        }
                    }
                    if outcome.retry_next {
                        // A ready warp lost slot arbitration this cycle and
                        // retries next cycle.
                        due_next[id] = true;
                        any_next = true;
                    } else {
                        // The tick folded the core's event horizon from the
                        // warp walk it performed anyway — no separate
                        // `next_activity` probe.
                        match outcome.horizon {
                            Some(t) if t <= next => {
                                due_next[id] = true;
                                any_next = true;
                            }
                            Some(t) => queue.schedule(id as u32, t),
                            None => check_finish = true,
                        }
                    }
                }
            }
            if check_finish && machine.finished() {
                // Account every parked component's tail so stall/idle
                // counters match the naive loop, which ticked everything
                // through cycle `c`.
                for (k, cluster) in machine.clusters.iter_mut().enumerate() {
                    let base = devices_id(k);
                    for (off, id) in (base..base + span).enumerate() {
                        let lag = (c + 1).saturating_sub(synced[id]);
                        if lag == 0 {
                            continue;
                        }
                        if off == 0 {
                            cluster.fast_forward_devices(Cycle::new(synced[id]), lag);
                        } else {
                            cluster.fast_forward_core(off - 1, Cycle::new(synced[id]), lag);
                        }
                    }
                }
                return Ok(machine.report(&kernel.info, next, sched));
            }

            if all_components_due {
                all_due_streak += 1;
            } else {
                all_due_streak = 0;
                naive_burst = NAIVE_BURST_MIN;
            }
            if all_due_streak >= ALL_DUE_BAILOUT {
                // Every component just ticked at `c`, so all of them are
                // synced to `c + 1` and plain naive stepping is safe.
                sched.bailout_engagements += 1;
                let end = (c + 1).saturating_add(naive_burst).min(max_cycles);
                let mut cy = c + 1;
                while cy < end {
                    if watchdog_sample.is_none() && cy >= watchdog_at {
                        watchdog_sample = Some(machine.retired_instructions());
                    }
                    if machine.finished() {
                        break;
                    }
                    machine.tick(Cycle::new(cy));
                    sched.processed_cycles += 1;
                    cy += 1;
                }
                naive_burst = (naive_burst * 2).min(NAIVE_BURST_MAX);
                all_due_streak = 0;
                resume_at = cy;
                for s in synced.iter_mut().skip(1) {
                    *s = (*s).max(cy);
                }
                if machine.finished() {
                    return Ok(machine.report(&kernel.info, Cycle::new(cy), sched));
                }
                // Re-register everything from scratch at the burst edge. The
                // burst already ticked whatever `due_next` pointed at, so its
                // marks are stale.
                queue.clear();
                due_next.fill(false);
                any_next = false;
                let resume = Cycle::new(cy);
                let Machine {
                    clusters,
                    backend,
                    fabric,
                } = &mut machine;
                if let Some(t) = fabric.next_activity(resume) {
                    if t <= resume {
                        due_next[FABRIC] = true;
                        any_next = true;
                    } else {
                        queue.schedule(FABRIC as u32, t);
                    }
                }
                for (k, cluster) in clusters.iter_mut().enumerate() {
                    let base = devices_id(k);
                    if let Some(t) = cluster.devices_next_activity(resume) {
                        if t <= resume {
                            due_next[base] = true;
                            any_next = true;
                        } else {
                            queue.schedule(base as u32, t);
                        }
                    }
                    for i in 0..cores_per_cluster {
                        if let Some(t) = cluster.core_next_activity(i, resume, backend, fabric) {
                            if t <= resume {
                                due_next[base + 1 + i] = true;
                                any_next = true;
                            } else {
                                queue.schedule((base + 1 + i) as u32, t);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Builds the timeout error: deadlock / livelock / slow-progress verdict
    /// plus the per-warp blocked-on table, captured at the budget edge.
    fn timeout_error(
        &self,
        machine: &mut Machine,
        max_cycles: u64,
        watchdog_sample: Option<u64>,
    ) -> SimError {
        let verdict = if machine.next_activity(Cycle::new(max_cycles)).is_none() {
            WatchdogVerdict::Deadlock
        } else {
            match watchdog_sample {
                Some(sample) if machine.retired_instructions() == sample => {
                    WatchdogVerdict::Livelock
                }
                _ => WatchdogVerdict::SlowProgress,
            }
        };
        SimError::Timeout {
            limit: max_cycles,
            diagnosis: machine.timeout_diagnosis(verdict, self.config.faults.active_at(max_cycles)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignKind, GpuConfig};
    use std::sync::Arc;
    use virgo_isa::{DataType, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn kernel(ops: u32) -> Kernel {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        Kernel::new(
            KernelInfo::new("k", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        )
    }

    #[test]
    fn run_returns_report_for_finishing_kernel() {
        let mut gpu = Gpu::new(GpuConfig::for_design(DesignKind::AmpereStyle));
        let report = gpu.run(&kernel(4), 1000).unwrap();
        assert_eq!(report.instructions_retired(), 4);
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let empty = Kernel::new(KernelInfo::new("none", 0, DataType::Fp16), Vec::new());
        assert_eq!(gpu.run(&empty, 100).unwrap_err(), SimError::EmptyKernel);
    }

    #[test]
    fn out_of_range_cluster_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Nop);
        let kernel = Kernel::new(
            KernelInfo::new("far", 0, DataType::Fp16),
            vec![WarpAssignment::on_cluster(3, 0, 0, Arc::new(b.build()))],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo().with_clusters(2));
        assert_eq!(
            gpu.run(&kernel, 100).unwrap_err(),
            SimError::ClusterOutOfRange {
                max_cluster: 3,
                clusters: 2
            }
        );
    }

    #[test]
    fn deadlocked_kernel_times_out_with_diagnosis() {
        // A single warp waiting at a two-participant barrier never finishes.
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Barrier { id: 0 });
        let lonely = Kernel::new(
            KernelInfo::new("deadlock", 0, DataType::Fp16),
            vec![
                WarpAssignment::new(0, 0, Arc::new(b.build())),
                WarpAssignment::new(0, 1, Arc::new(ProgramBuilder::new().build())),
            ],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let Err(SimError::Timeout { limit, diagnosis }) = gpu.run(&lonely, 2000) else {
            panic!("expected a timeout");
        };
        assert_eq!(limit, 2000);
        assert_eq!(diagnosis.verdict, WatchdogVerdict::Deadlock);
        assert_eq!(diagnosis.active_fault_windows, 0);
        assert_eq!(diagnosis.warps.len(), 1);
        assert_eq!(diagnosis.warps[0].cluster, 0);
        assert_eq!(diagnosis.warps[0].core, 0);
        assert_eq!(diagnosis.warps[0].blocked_on, BlockedOn::Barrier { id: 0 });
        assert_eq!(
            diagnosis.count_where(|b| matches!(b, BlockedOn::Barrier { .. })),
            1
        );
    }

    #[test]
    fn fence_deadlock_diagnosis_reports_outstanding_ops() {
        // A fence that can never be satisfied: threshold 0 with an async
        // matrix command the (unit-less) configuration will never complete.
        let cmd = virgo_isa::MmioCommand::MatrixCompute(virgo_isa::MatrixComputeCmd {
            a: virgo_isa::AddrExpr::fixed(0),
            b: virgo_isa::AddrExpr::fixed(0),
            acc_addr: 0,
            m: 64,
            n: 64,
            k: 1024,
            accumulate: false,
            dtype: DataType::Fp16,
        });
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::MmioWrite {
            device: virgo_isa::DeviceId::MATRIX0,
            cmd,
        });
        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
        let kernel = Kernel::new(
            KernelInfo::new("fence-stuck", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo());
        // Budget too small for the 64x64x1024 command to finish streaming.
        let Err(SimError::Timeout { diagnosis, .. }) = gpu.run(&kernel, 500) else {
            panic!("expected a timeout");
        };
        assert_eq!(diagnosis.warps.len(), 1);
        assert!(matches!(
            diagnosis.warps[0].blocked_on,
            BlockedOn::Fence {
                max_outstanding: 0,
                outstanding: 1
            }
        ));
        // The unit keeps streaming (activity) while the warp spins without
        // retiring anything: the watchdog calls that a livelock.
        assert_eq!(diagnosis.verdict, WatchdogVerdict::Livelock);
        let msg = SimError::Timeout {
            limit: 500,
            diagnosis,
        }
        .to_string();
        assert!(msg.contains("virgo_fence(0)"), "{msg}");
        assert!(msg.contains("livelock"), "{msg}");
    }

    #[test]
    fn undersized_budget_is_classified_as_slow_progress() {
        // 1000 back-to-back ALU instructions cannot retire in 100 cycles,
        // but the core retires one every cycle right up to the limit.
        let mut gpu = Gpu::new(GpuConfig::virgo());
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let Err(SimError::Timeout { diagnosis, .. }) =
                gpu.run_with_mode(&kernel(1000), 100, mode)
            else {
                panic!("expected a timeout");
            };
            assert_eq!(diagnosis.verdict, WatchdogVerdict::SlowProgress, "{mode}");
        }
    }

    #[test]
    fn deadlock_verdict_is_mode_identical() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Barrier { id: 0 });
        let lonely = Kernel::new(
            KernelInfo::new("deadlock", 0, DataType::Fp16),
            vec![
                WarpAssignment::new(0, 0, Arc::new(b.build())),
                WarpAssignment::new(0, 1, Arc::new(ProgramBuilder::new().build())),
            ],
        );
        let mut gpu = Gpu::new(GpuConfig::virgo());
        for mode in [SimMode::Naive, SimMode::FastForward] {
            let Err(SimError::Timeout { diagnosis, .. }) = gpu.run_with_mode(&lonely, 2000, mode)
            else {
                panic!("expected a timeout");
            };
            assert_eq!(diagnosis.verdict, WatchdogVerdict::Deadlock, "{mode}");
        }
    }

    #[test]
    fn timeout_diagnosis_renders_fault_windows_and_warp_table() {
        let diag = TimeoutDiagnosis {
            verdict: WatchdogVerdict::Deadlock,
            active_fault_windows: 2,
            warps: vec![
                WarpDiagnosis {
                    cluster: 0,
                    core: 0,
                    warp: 0,
                    blocked_on: BlockedOn::Barrier { id: 1 },
                },
                WarpDiagnosis {
                    cluster: 1,
                    core: 3,
                    warp: 7,
                    blocked_on: BlockedOn::Stalled,
                },
            ],
            job: None,
        };
        let msg = diag.to_string();
        assert!(msg.starts_with("deadlock: 2 unfinished warp(s)"), "{msg}");
        assert!(msg.contains("2 injected fault window(s) active"), "{msg}");
        // One indented table row per warp.
        assert_eq!(msg.lines().count(), 3, "{msg}");
        assert!(msg.contains("\n  cluster 1 core 3 warp 7"), "{msg}");
        // A session timeout names the owning job right after the headline.
        let named = TimeoutDiagnosis {
            job: Some("tenant-a/req3".to_string()),
            ..diag
        };
        let msg = named.to_string();
        assert!(
            msg.starts_with("deadlock: 2 unfinished warp(s) in job 'tenant-a/req3'"),
            "{msg}"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let mut gpu = Gpu::new(GpuConfig::virgo());
        let a = gpu.run(&kernel(64), 100_000).unwrap();
        let b = gpu.run(&kernel(64), 100_000).unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.instructions_retired(), b.instructions_retired());
        assert!((a.total_energy_mj() - b.total_energy_mj()).abs() < 1e-15);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SimError::Timeout {
            limit: 5,
            diagnosis: TimeoutDiagnosis::default()
        }
        .to_string()
        .contains("5 cycles"));
        assert!(SimError::EmptyKernel.to_string().contains("no warps"));
        let diag = TimeoutDiagnosis {
            warps: vec![WarpDiagnosis {
                cluster: 1,
                core: 2,
                warp: 3,
                blocked_on: BlockedOn::Barrier { id: 7 },
            }],
            ..TimeoutDiagnosis::default()
        };
        let msg = SimError::Timeout {
            limit: 9,
            diagnosis: diag,
        }
        .to_string();
        assert!(msg.contains("cluster 1 core 2 warp 3"), "{msg}");
        assert!(msg.contains("barrier 7"), "{msg}");
    }
}
