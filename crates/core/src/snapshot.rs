//! Serialization of finished [`SimReport`]s for the sweep engine's on-disk
//! report cache.
//!
//! A cache entry is a plain JSON document with a small envelope:
//!
//! ```json
//! {"format":"virgo-simreport","version":1,"key":"<32-hex SimKey>",
//!  "checksum":"<16-hex>","payload":{...}}
//! ```
//!
//! The payload captures **every** field of the report, so a rehydrated
//! report is *bit-identical* to the one that was simulated: integer counters
//! round-trip trivially and floating-point values are written with Rust's
//! shortest-round-trip `{:?}` formatting, which `str::parse::<f64>` decodes
//! back to the exact same bits. The checksum is the stable hash of the
//! canonical payload text; any corruption of the file fails parsing, the key
//! check or the checksum and surfaces as a [`SnapshotError`] — the cache
//! treats that as a miss and re-simulates, never as a panic.
//!
//! No external dependencies: the writer emits compact JSON directly and the
//! reader is a ~150-line recursive-descent parser over the same subset.

use std::fmt;

use virgo_energy::{AreaReport, Component, MatrixSubcomponent, PowerReport};
use virgo_mem::{
    ChannelContentionStats, ClusterContentionStats, ClusterDsmStats, DmaStats, DramStats,
    DsmFabricStats, DsmLinkStats, GlobalMemoryStats, SmemStats,
};
use virgo_sim::{ClusterFaultStats, Cycle, FaultStats, Frequency, StableHasher};
use virgo_simt::CoreStats;

use crate::cluster::ClusterStats;
use crate::config::DesignKind;
use crate::report::{ClusterReport, SchedStats, SimReport};

/// Why a cache entry could not be rehydrated. The sweep cache treats every
/// variant as a miss (the entry is re-simulated and rewritten).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    fn new(msg: impl Into<String>) -> Self {
        SnapshotError(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid report snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

type Result<T> = std::result::Result<T, SnapshotError>;

const FORMAT: &str = "virgo-simreport";
// v2: multi-channel DRAM — the payload gained `dram_channel_stats` and the
// per-cluster contention objects gained a `per_channel` breakdown; v1
// entries (pre-channel timing model) must miss cleanly.
// v3: inter-cluster DSM — the payload gained `dsm_stats` / `dsm_link_stats`
// and the per-cluster slices a `dsm` breakdown; v2 entries (pre-DSM model)
// must miss cleanly.
// v4: fault injection — the payload gained `fault` and the per-cluster
// slices a `fault` breakdown; v3 entries (pre-fault model) must miss
// cleanly.
// v5: event-driven scheduler — the payload gained `sched` (driver event
// attribution); v4 entries (pre-scheduler) must miss cleanly.
const VERSION: u64 = 6;

// ---------------------------------------------------------------------------
// A minimal JSON document model.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so both `u64` and `f64`
/// parse losslessly, and so re-rendering a parsed document is byte-identical
/// (which is what makes the payload checksum verifiable after a round trip).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

impl Json {
    /// Re-renders the value in the same compact form the writer emits.
    fn render(&self, out: &mut String) {
        match self {
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Num(raw) => out.push_str(raw),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
        }
    }

    fn as_object(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(SnapshotError::new(format!(
                "expected object, got {other:?}"
            ))),
        }
    }

    fn as_array(&self) -> Result<&[Json]> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(SnapshotError::new(format!("expected array, got {other:?}"))),
        }
    }

    fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(SnapshotError::new(format!(
                "expected string, got {other:?}"
            ))),
        }
    }

    fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|e| SnapshotError::new(format!("bad u64 {raw:?}: {e}"))),
            other => Err(SnapshotError::new(format!(
                "expected number, got {other:?}"
            ))),
        }
    }

    fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|e| SnapshotError::new(format!("bad f64 {raw:?}: {e}"))),
            other => Err(SnapshotError::new(format!(
                "expected number, got {other:?}"
            ))),
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| SnapshotError::new(format!("missing field {key:?}")))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64> {
    get(obj, key)?.as_u64()
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64> {
    get(obj, key)?.as_f64()
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> SnapshotError {
        SnapshotError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a (possibly multi-byte) UTF-8 sequence; the
                    // input is a &str so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("empty number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

fn parse_document(text: &str) -> Result<Json> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer helpers.
// ---------------------------------------------------------------------------

fn write_json_string(value: &str, out: &mut String) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` so it round-trips exactly (`{:?}` is Rust's
/// shortest-representation formatting). The simulator never produces
/// non-finite values, but reject them rather than emitting invalid JSON.
fn fmt_f64(value: f64) -> String {
    assert!(value.is_finite(), "reports never contain non-finite floats");
    format!("{value:?}")
}

struct ObjWriter {
    out: String,
    first: bool,
}

impl ObjWriter {
    fn new() -> Self {
        ObjWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_json_string(key, &mut self.out);
        self.out.push(':');
        self.out.push_str(value);
        self
    }

    fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, &fmt_f64(value))
    }

    fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let mut quoted = String::new();
        write_json_string(value, &mut quoted);
        self.raw(key, &quoted)
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

// ---------------------------------------------------------------------------
// Per-struct (de)serializers. The flat all-`u64` stats structs are handled
// by one macro; everything else is written out by hand.
// ---------------------------------------------------------------------------

macro_rules! u64_stats_codec {
    ($ty:ident, $write:ident, $read:ident, [$($field:ident),+ $(,)?]) => {
        fn $write(s: &$ty) -> String {
            let mut w = ObjWriter::new();
            $(w.u64(stringify!($field), s.$field);)+
            w.finish()
        }

        fn $read(v: &Json) -> Result<$ty> {
            let o = v.as_object()?;
            Ok($ty {
                $($field: get_u64(o, stringify!($field))?,)+
            })
        }
    };
}

u64_stats_codec!(
    CoreStats,
    write_core_stats,
    read_core_stats,
    [
        instrs_issued,
        rf_reads,
        rf_writes,
        alu_lane_ops,
        fpu_lane_ops,
        lsu_lane_ops,
        writebacks,
        icache_accesses,
        hmma_steps,
        wgmma_ops,
        mmio_writes,
        fence_poll_instrs,
        fence_wait_cycles,
        barrier_arrivals,
        active_cycles,
        stall_cycles,
        idle_cycles,
        total_cycles,
    ]
);

u64_stats_codec!(
    SmemStats,
    write_smem_stats,
    read_smem_stats,
    [
        words_read,
        words_written,
        bytes_read,
        bytes_written,
        simt_accesses,
        wide_accesses,
        conflict_cycles,
        unaligned_serialized,
    ]
);

u64_stats_codec!(
    GlobalMemoryStats,
    write_gmem_stats,
    read_gmem_stats,
    [l1_accesses, l1_misses, l2_accesses, l2_misses, dma_bytes,]
);

u64_stats_codec!(
    DramStats,
    write_dram_stats,
    read_dram_stats,
    [reads, writes, bytes, bursts,]
);

u64_stats_codec!(
    DmaStats,
    write_dma_stats,
    read_dma_stats,
    [transfers, bytes_moved, beats, busy_cycles,]
);

u64_stats_codec!(
    ClusterStats,
    write_cluster_stats,
    read_cluster_stats,
    [
        mmio_writes,
        mmio_rejects,
        async_ops_launched,
        async_ops_completed,
    ]
);

u64_stats_codec!(
    ChannelContentionStats,
    write_channel_contention,
    read_channel_contention,
    [requests, stall_cycles,]
);

u64_stats_codec!(
    DsmLinkStats,
    write_dsm_link,
    read_dsm_link,
    [requests, bytes, stall_cycles,]
);

u64_stats_codec!(
    DsmFabricStats,
    write_dsm_fabric,
    read_dsm_fabric,
    [transfers, bytes, hop_flits, stall_cycles,]
);

u64_stats_codec!(
    FaultStats,
    write_fault_stats,
    read_fault_stats,
    [
        injected,
        detected,
        corrected,
        degraded_cycles,
        dsm_rerouted_transfers,
        dsm_blocked_cycles,
        dram_restriped_accesses,
        recovery_cycles,
    ]
);

u64_stats_codec!(
    ClusterFaultStats,
    write_cluster_fault,
    read_cluster_fault,
    [injected, detected, corrected, degraded_cycles,]
);

u64_stats_codec!(
    SchedStats,
    write_sched_stats,
    read_sched_stats,
    [
        processed_cycles,
        skipped_cycles,
        simt_events,
        gemmini_events,
        tensor_events,
        dma_events,
        dsm_events,
        dram_events,
        bailout_engagements,
    ]
);

// `ClusterContentionStats` carries a per-channel array, so it cannot use the
// flat-`u64` macro.
fn write_contention(s: &ClusterContentionStats) -> String {
    let per_channel: Vec<String> = s.per_channel.iter().map(write_channel_contention).collect();
    let mut w = ObjWriter::new();
    w.u64("l2_accesses", s.l2_accesses)
        .u64("l2_misses", s.l2_misses)
        .u64("dma_bytes", s.dma_bytes)
        .u64("dram_requests", s.dram_requests)
        .u64("dram_bytes", s.dram_bytes)
        .u64("dram_stall_cycles", s.dram_stall_cycles)
        .raw("per_channel", &format!("[{}]", per_channel.join(",")));
    w.finish()
}

fn read_contention(v: &Json) -> Result<ClusterContentionStats> {
    let o = v.as_object()?;
    Ok(ClusterContentionStats {
        l2_accesses: get_u64(o, "l2_accesses")?,
        l2_misses: get_u64(o, "l2_misses")?,
        dma_bytes: get_u64(o, "dma_bytes")?,
        dram_requests: get_u64(o, "dram_requests")?,
        dram_bytes: get_u64(o, "dram_bytes")?,
        dram_stall_cycles: get_u64(o, "dram_stall_cycles")?,
        per_channel: get(o, "per_channel")?
            .as_array()?
            .iter()
            .map(read_channel_contention)
            .collect::<Result<Vec<_>>>()?,
    })
}

// `ClusterDsmStats` carries a per-link array, so it cannot use the
// flat-`u64` macro either.
fn write_cluster_dsm(s: &ClusterDsmStats) -> String {
    let per_link: Vec<String> = s.per_link.iter().map(write_dsm_link).collect();
    let mut w = ObjWriter::new();
    w.u64("requests", s.requests)
        .u64("bytes", s.bytes)
        .u64("stall_cycles", s.stall_cycles)
        .u64("hop_flits", s.hop_flits)
        .raw("per_link", &format!("[{}]", per_link.join(",")));
    w.finish()
}

fn read_cluster_dsm(v: &Json) -> Result<ClusterDsmStats> {
    let o = v.as_object()?;
    Ok(ClusterDsmStats {
        requests: get_u64(o, "requests")?,
        bytes: get_u64(o, "bytes")?,
        stall_cycles: get_u64(o, "stall_cycles")?,
        hop_flits: get_u64(o, "hop_flits")?,
        per_link: get(o, "per_link")?
            .as_array()?
            .iter()
            .map(read_dsm_link)
            .collect::<Result<Vec<_>>>()?,
    })
}

fn write_opt_dma(stats: &Option<DmaStats>) -> String {
    match stats {
        Some(s) => write_dma_stats(s),
        None => "null".to_string(),
    }
}

fn read_opt_dma(v: &Json) -> Result<Option<DmaStats>> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(read_dma_stats(other)?)),
    }
}

/// Serializes an enum-keyed `(E, f64)` breakdown as an ordered object of
/// `{"VariantDebugName": value}` pairs.
fn write_breakdown<E: fmt::Debug + Copy>(entries: &[(E, f64)]) -> String {
    let mut w = ObjWriter::new();
    for (e, value) in entries {
        w.f64(&format!("{e:?}"), *value);
    }
    w.finish()
}

fn read_breakdown<E: fmt::Debug + Copy>(v: &Json, variants: &[E]) -> Result<Vec<(E, f64)>> {
    let o = v.as_object()?;
    o.iter()
        .map(|(name, value)| {
            let e = variants
                .iter()
                .find(|e| format!("{e:?}") == *name)
                .ok_or_else(|| SnapshotError::new(format!("unknown component {name:?}")))?;
            Ok((*e, value.as_f64()?))
        })
        .collect()
}

fn write_cluster_report(c: &ClusterReport) -> String {
    let mut w = ObjWriter::new();
    w.u64("cluster", u64::from(c.cluster))
        .raw("core_stats", &write_core_stats(&c.core_stats))
        .raw("smem_stats", &write_smem_stats(&c.smem_stats))
        .raw("gmem_stats", &write_gmem_stats(&c.gmem_stats))
        .raw("dma_stats", &write_opt_dma(&c.dma_stats))
        .raw("cluster_stats", &write_cluster_stats(&c.cluster_stats))
        .raw("contention", &write_contention(&c.contention))
        .raw("dsm", &write_cluster_dsm(&c.dsm))
        .u64("performed_macs", c.performed_macs)
        .f64("energy_mj", c.energy_mj)
        .raw("fault", &write_cluster_fault(&c.fault));
    w.finish()
}

fn read_cluster_report(v: &Json) -> Result<ClusterReport> {
    let o = v.as_object()?;
    Ok(ClusterReport {
        cluster: u32::try_from(get_u64(o, "cluster")?)
            .map_err(|_| SnapshotError::new("cluster index overflows u32"))?,
        core_stats: read_core_stats(get(o, "core_stats")?)?,
        smem_stats: read_smem_stats(get(o, "smem_stats")?)?,
        gmem_stats: read_gmem_stats(get(o, "gmem_stats")?)?,
        dma_stats: read_opt_dma(get(o, "dma_stats")?)?,
        cluster_stats: read_cluster_stats(get(o, "cluster_stats")?)?,
        contention: read_contention(get(o, "contention")?)?,
        dsm: read_cluster_dsm(get(o, "dsm")?)?,
        performed_macs: get_u64(o, "performed_macs")?,
        energy_mj: get_f64(o, "energy_mj")?,
        fault: read_cluster_fault(get(o, "fault")?)?,
    })
}

fn write_power(p: &PowerReport) -> String {
    let mut w = ObjWriter::new();
    w.u64("cycles", p.cycles().get())
        .u64("frequency_hz", p.frequency().as_hz())
        .raw("components", &write_breakdown(p.energy_breakdown_uj()))
        .raw("matrix", &write_breakdown(p.matrix_energy_breakdown_uj()));
    w.finish()
}

fn read_power(v: &Json) -> Result<PowerReport> {
    let o = v.as_object()?;
    Ok(PowerReport::from_parts(
        Cycle::new(get_u64(o, "cycles")?),
        read_frequency(o, "frequency_hz")?,
        read_breakdown(get(o, "components")?, &Component::all())?,
        read_breakdown(get(o, "matrix")?, &MatrixSubcomponent::all())?,
    ))
}

fn read_frequency(o: &[(String, Json)], key: &str) -> Result<Frequency> {
    let hz = get_u64(o, key)?;
    if hz == 0 {
        return Err(SnapshotError::new("zero clock frequency"));
    }
    Ok(Frequency::from_hz(hz))
}

// ---------------------------------------------------------------------------
// The public entry points.
// ---------------------------------------------------------------------------

fn write_payload(report: &SimReport) -> String {
    let per_cluster: Vec<String> = report
        .per_cluster
        .iter()
        .map(write_cluster_report)
        .collect();
    let mut w = ObjWriter::new();
    w.str("design", report.design.name())
        .str("kernel_name", &report.kernel_name)
        .u64("cycles", report.cycles.get())
        .u64("frequency_hz", report.frequency.as_hz())
        .u64("kernel_macs", report.kernel_macs)
        .u64("performed_macs", report.performed_macs)
        .u64("peak_macs_per_cycle", report.peak_macs_per_cycle)
        .raw("core_stats", &write_core_stats(&report.core_stats))
        .raw("smem_stats", &write_smem_stats(&report.smem_stats))
        .raw("gmem_stats", &write_gmem_stats(&report.gmem_stats))
        .raw("dram_stats", &write_dram_stats(&report.dram_stats))
        .raw("dram_channel_stats", &{
            let channels: Vec<String> = report
                .dram_channel_stats
                .iter()
                .map(write_dram_stats)
                .collect();
            format!("[{}]", channels.join(","))
        })
        .raw("dma_stats", &write_opt_dma(&report.dma_stats))
        .raw("cluster_stats", &write_cluster_stats(&report.cluster_stats))
        .raw("per_cluster", &format!("[{}]", per_cluster.join(",")))
        .u64(
            "dram_contention_stall_cycles",
            report.dram_contention_stall_cycles,
        )
        .raw("dsm_stats", &write_dsm_fabric(&report.dsm_stats))
        .raw("dsm_link_stats", &{
            let links: Vec<String> = report.dsm_link_stats.iter().map(write_dsm_link).collect();
            format!("[{}]", links.join(","))
        })
        .raw("fault", &write_fault_stats(&report.fault))
        .raw("sched", &write_sched_stats(&report.sched))
        .raw("power", &write_power(&report.power))
        .raw("area", &write_breakdown(report.area.breakdown()));
    w.finish()
}

fn read_payload(v: &Json) -> Result<SimReport> {
    let o = v.as_object()?;
    let design: DesignKind = get(o, "design")?
        .as_str()?
        .parse()
        .map_err(SnapshotError::new)?;
    Ok(SimReport {
        design,
        kernel_name: get(o, "kernel_name")?.as_str()?.to_string(),
        cycles: Cycle::new(get_u64(o, "cycles")?),
        frequency: read_frequency(o, "frequency_hz")?,
        kernel_macs: get_u64(o, "kernel_macs")?,
        performed_macs: get_u64(o, "performed_macs")?,
        peak_macs_per_cycle: get_u64(o, "peak_macs_per_cycle")?,
        core_stats: read_core_stats(get(o, "core_stats")?)?,
        smem_stats: read_smem_stats(get(o, "smem_stats")?)?,
        gmem_stats: read_gmem_stats(get(o, "gmem_stats")?)?,
        dram_stats: read_dram_stats(get(o, "dram_stats")?)?,
        dram_channel_stats: get(o, "dram_channel_stats")?
            .as_array()?
            .iter()
            .map(read_dram_stats)
            .collect::<Result<Vec<_>>>()?,
        dma_stats: read_opt_dma(get(o, "dma_stats")?)?,
        cluster_stats: read_cluster_stats(get(o, "cluster_stats")?)?,
        per_cluster: get(o, "per_cluster")?
            .as_array()?
            .iter()
            .map(read_cluster_report)
            .collect::<Result<Vec<_>>>()?,
        dram_contention_stall_cycles: get_u64(o, "dram_contention_stall_cycles")?,
        dsm_stats: read_dsm_fabric(get(o, "dsm_stats")?)?,
        dsm_link_stats: get(o, "dsm_link_stats")?
            .as_array()?
            .iter()
            .map(read_dsm_link)
            .collect::<Result<Vec<_>>>()?,
        fault: read_fault_stats(get(o, "fault")?)?,
        sched: read_sched_stats(get(o, "sched")?)?,
        power: read_power(get(o, "power")?)?,
        area: AreaReport::from_entries(read_breakdown(get(o, "area")?, &Component::all())?),
    })
}

/// Stable checksum of the canonical payload text, rendered as 16 hex chars.
fn checksum(payload: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(payload);
    let (hi, _) = h.finish128();
    format!("{hi:016x}")
}

impl SimReport {
    /// Serializes the report as a self-verifying cache entry. `key` is the
    /// hex form of the [`SimKey`](crate::SimKey) the entry is stored under;
    /// it is embedded so a renamed or misfiled entry is rejected on load.
    pub fn to_cache_json(&self, key: &str) -> String {
        let payload = write_payload(self);
        let mut w = ObjWriter::new();
        w.str("format", FORMAT)
            .u64("version", VERSION)
            .str("key", key)
            .str("checksum", &checksum(&payload))
            .raw("payload", &payload);
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Rehydrates a report from [`SimReport::to_cache_json`] output,
    /// verifying the format tag, version, key and payload checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] describing the first problem found —
    /// malformed JSON, wrong format/version, a key mismatch, a checksum
    /// mismatch or a payload that does not describe a valid report.
    pub fn from_cache_json(text: &str, expected_key: &str) -> Result<SimReport> {
        let doc = parse_document(text.trim_end())?;
        let o = doc.as_object()?;
        let format = get(o, "format")?.as_str()?;
        if format != FORMAT {
            return Err(SnapshotError::new(format!("wrong format tag {format:?}")));
        }
        let version = get_u64(o, "version")?;
        if version != VERSION {
            return Err(SnapshotError::new(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let key = get(o, "key")?.as_str()?;
        if key != expected_key {
            return Err(SnapshotError::new(format!(
                "key mismatch: entry is {key}, expected {expected_key}"
            )));
        }
        let payload = get(o, "payload")?;
        let mut canonical = String::new();
        payload.render(&mut canonical);
        let stored = get(o, "checksum")?.as_str()?;
        let computed = checksum(&canonical);
        if stored != computed {
            return Err(SnapshotError::new(format!(
                "checksum mismatch: stored {stored}, computed {computed}"
            )));
        }
        read_payload(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::key::SimKey;
    use crate::run::{Gpu, SimMode};
    use std::sync::Arc;
    use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn sample_report(clusters: u32) -> (SimReport, String) {
        sample_report_channels(clusters, 1)
    }

    fn sample_report_channels(clusters: u32, dram_channels: u32) -> (SimReport, String) {
        let program = {
            let mut b = ProgramBuilder::new();
            b.op_n(
                16,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
            Arc::new(b.build())
        };
        let warps = (0..clusters)
            .map(|c| WarpAssignment::on_cluster(c, 0, 0, Arc::clone(&program)))
            .collect();
        let kernel = Kernel::new(KernelInfo::new("snapshot-test", 0, DataType::Fp16), warps);
        let config = GpuConfig::virgo()
            .with_clusters(clusters)
            .with_dram_channels(dram_channels);
        let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward).to_hex();
        let report = Gpu::new(config).run(&kernel, 100_000).unwrap();
        (report, key)
    }

    /// Field-exact equality via the full debug rendering: `SimReport`
    /// intentionally does not implement `PartialEq`, but its Debug output
    /// includes every field bit-exactly (floats use `{:?}`).
    fn assert_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for clusters in [1, 2] {
            let (report, key) = sample_report(clusters);
            let text = report.to_cache_json(&key);
            let back = SimReport::from_cache_json(&text, &key).unwrap();
            assert_identical(&report, &back);
        }
    }

    #[test]
    fn multi_channel_report_roundtrips_per_channel_arrays() {
        let (report, key) = sample_report_channels(2, 4);
        assert_eq!(report.dram_channels(), 4);
        assert_eq!(report.per_cluster()[0].contention.per_channel.len(), 4);
        let text = report.to_cache_json(&key);
        let back = SimReport::from_cache_json(&text, &key).unwrap();
        assert_identical(&report, &back);
        assert_eq!(back.dram_channel_stats().len(), 4);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let (report, key) = sample_report(1);
        let text = report.to_cache_json(&key);
        let err = SimReport::from_cache_json(&text, &"0".repeat(32)).unwrap_err();
        assert!(err.to_string().contains("key mismatch"), "{err}");
    }

    #[test]
    fn corrupted_payload_fails_checksum_not_panic() {
        let (report, key) = sample_report(1);
        let text = report.to_cache_json(&key);
        // Flip one digit inside the payload (the cycles count).
        let idx = text.find("\"payload\"").unwrap();
        let digit = text[idx..]
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| idx + i)
            .unwrap();
        let mut corrupted = text.clone();
        let old = corrupted.as_bytes()[digit];
        let new = if old == b'9' { b'0' } else { old + 1 };
        // SAFETY-free byte replace via String rebuild.
        corrupted.replace_range(digit..digit + 1, &(new as char).to_string());
        let err = SimReport::from_cache_json(&corrupted, &key).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "expected checksum failure, got: {err}"
        );
    }

    #[test]
    fn truncated_and_garbage_inputs_are_errors() {
        let (report, key) = sample_report(1);
        let text = report.to_cache_json(&key);
        assert!(SimReport::from_cache_json(&text[..text.len() / 2], &key).is_err());
        assert!(SimReport::from_cache_json("", &key).is_err());
        assert!(SimReport::from_cache_json("not json at all", &key).is_err());
        assert!(SimReport::from_cache_json("{\"format\":\"other\"}", &key).is_err());
    }

    #[test]
    fn version_and_format_are_checked() {
        let (report, key) = sample_report(1);
        let text = report.to_cache_json(&key);
        let bumped = text.replace("\"version\":6", "\"version\":99");
        let err = SimReport::from_cache_json(&bumped, &key).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_document(r#"{"a":[1,2.5,-3],"b":"x\"y\\z\nw","c":null,"d":true}"#).unwrap();
        let o = doc.as_object().unwrap();
        assert_eq!(get(o, "b").unwrap().as_str().unwrap(), "x\"y\\z\nw");
        let arr = get(o, "a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].as_f64().unwrap(), 2.5);
        assert_eq!(arr[2].as_f64().unwrap(), -3.0);
        assert_eq!(get(o, "c").unwrap(), &Json::Null);
        assert_eq!(get(o, "d").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn f64_text_roundtrips_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, 4.9e-324, -0.0] {
            let text = fmt_f64(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }
}
