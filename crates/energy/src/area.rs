//! Per-component SoC area model (Figure 7).
//!
//! The paper reports the synthesized area breakdown of the three evaluated
//! SoCs in a commercial 16 nm process. We model area with simple per-unit
//! constants (mm² per core, per KiB of SRAM, per MAC, ...) calibrated so the
//! *proportions* of Figure 7 are reproduced: the L1 caches dominate (they are
//! synthesized as flop arrays in the paper), the Vortex cores come second,
//! and the Virgo SoC lands within a few percent of the Volta-style SoC
//! (-0.1% in the paper) and slightly above the Hopper-style SoC (+3.0%).

use crate::component::Component;

/// Parameters describing the hardware configuration whose area is estimated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// Number of SIMT cores in the cluster.
    pub cores: u32,
    /// L1 instruction + data cache capacity per core, in KiB.
    pub l1_kib_per_core: u32,
    /// Shared L2 capacity in KiB.
    pub l2_kib: u32,
    /// Cluster shared-memory capacity in KiB.
    pub smem_kib: u32,
    /// Register file capacity per core in KiB (INT + FP).
    pub regfile_kib_per_core: u32,
    /// Total matrix-unit MACs in the cluster (tensor cores or systolic PEs).
    pub matrix_macs: u32,
    /// Accumulator SRAM capacity in KiB (0 for core-coupled designs).
    pub accum_kib: u32,
    /// Whether a cluster DMA engine is instantiated.
    pub has_dma: bool,
    /// Whether the shared memory needs the wide matrix-unit port
    /// (adds interconnect area; Section 3.2.1 reports +9.6% shared-memory
    /// area for Gemmini support).
    pub smem_wide_port: bool,
}

impl AreaParams {
    /// Total L1 capacity across cores in KiB.
    pub fn total_l1_kib(&self) -> u32 {
        self.cores * self.l1_kib_per_core
    }
}

/// Per-component area estimates in square millimetres.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    entries: Vec<(Component, f64)>,
}

impl AreaReport {
    /// Reassembles a report from its breakdown entries — the inverse of
    /// [`AreaReport::breakdown`], used when rehydrating a cached `SimReport`
    /// snapshot.
    pub fn from_entries(entries: Vec<(Component, f64)>) -> Self {
        AreaReport { entries }
    }

    /// Area of one component in mm².
    pub fn component_mm2(&self, component: Component) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == component)
            .map(|(_, a)| *a)
            .unwrap_or(0.0)
    }

    /// Total SoC area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.entries.iter().map(|(_, a)| a).sum()
    }

    /// The full breakdown, in report order.
    pub fn breakdown(&self) -> &[(Component, f64)] {
        &self.entries
    }

    /// Fraction of total area contributed by `component`.
    pub fn fraction(&self, component: Component) -> f64 {
        let total = self.total_mm2();
        if total == 0.0 {
            0.0
        } else {
            self.component_mm2(component) / total
        }
    }
}

/// The area model: per-unit area constants for a 16 nm-class process.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// mm² per SIMT core (datapath, scheduler, LSU), excluding register file
    /// and caches.
    pub core_logic_mm2: f64,
    /// mm² per KiB of register file (flop-array based, hence expensive).
    pub regfile_mm2_per_kib: f64,
    /// mm² per KiB of L1 cache. The paper's L1 is synthesized as flop arrays,
    /// making it disproportionately large (Section 5.3).
    pub l1_mm2_per_kib: f64,
    /// mm² per KiB of L2 SRAM.
    pub l2_mm2_per_kib: f64,
    /// mm² per KiB of shared-memory SRAM (including its interconnect).
    pub smem_mm2_per_kib: f64,
    /// Extra shared-memory interconnect factor when the wide matrix port is
    /// instantiated (+9.6% per Section 3.2.1).
    pub smem_wide_port_factor: f64,
    /// mm² per matrix MAC unit (FP16 multiply-accumulate datapath plus its
    /// share of buffers).
    pub mac_mm2: f64,
    /// mm² per KiB of accumulator SRAM (single-banked, dense).
    pub accum_mm2_per_kib: f64,
    /// mm² for the DMA engine and miscellaneous cluster glue.
    pub dma_mm2: f64,
    /// mm² of fixed SoC overhead (bus, host interface, clocking).
    pub soc_overhead_mm2: f64,
}

impl AreaModel {
    /// The default 16 nm-class calibration.
    pub fn default_16nm() -> Self {
        AreaModel {
            core_logic_mm2: 0.22,
            regfile_mm2_per_kib: 0.012,
            l1_mm2_per_kib: 0.014,
            l2_mm2_per_kib: 0.0032,
            smem_mm2_per_kib: 0.0042,
            smem_wide_port_factor: 1.096,
            mac_mm2: 0.0011,
            accum_mm2_per_kib: 0.0028,
            dma_mm2: 0.06,
            soc_overhead_mm2: 0.35,
        }
    }

    /// Estimates the per-component area for a configuration.
    pub fn estimate(&self, params: &AreaParams) -> AreaReport {
        let cores = f64::from(params.cores);
        let core_area = cores
            * (self.core_logic_mm2
                + self.regfile_mm2_per_kib * f64::from(params.regfile_kib_per_core));
        let l1_area = self.l1_mm2_per_kib * f64::from(params.total_l1_kib());
        let l2_area = self.l2_mm2_per_kib * f64::from(params.l2_kib);
        let smem_factor = if params.smem_wide_port {
            self.smem_wide_port_factor
        } else {
            1.0
        };
        let smem_area = self.smem_mm2_per_kib * f64::from(params.smem_kib) * smem_factor;
        let matrix_area = self.mac_mm2 * f64::from(params.matrix_macs);
        let accum_area = self.accum_mm2_per_kib * f64::from(params.accum_kib);
        let dma_area = if params.has_dma { self.dma_mm2 } else { 0.0 } + self.soc_overhead_mm2;

        let entries = vec![
            (Component::L2Cache, l2_area),
            (Component::L1Cache, l1_area),
            (Component::SharedMem, smem_area),
            (Component::CoreIssue, core_area), // whole core reported as one bucket
            (Component::AccumMem, accum_area),
            (Component::MatrixUnit, matrix_area),
            (Component::DmaOther, dma_area),
        ];
        AreaReport { entries }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::default_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volta_params() -> AreaParams {
        AreaParams {
            cores: 8,
            l1_kib_per_core: 32,
            l2_kib: 512,
            smem_kib: 128,
            regfile_kib_per_core: 16,
            matrix_macs: 256,
            accum_kib: 0,
            has_dma: false,
            smem_wide_port: false,
        }
    }

    fn virgo_params() -> AreaParams {
        AreaParams {
            cores: 8,
            l1_kib_per_core: 32,
            l2_kib: 512,
            smem_kib: 128,
            regfile_kib_per_core: 16,
            matrix_macs: 256,
            accum_kib: 32,
            has_dma: true,
            smem_wide_port: true,
        }
    }

    #[test]
    fn total_is_sum_of_breakdown() {
        let model = AreaModel::default_16nm();
        let report = model.estimate(&volta_params());
        let sum: f64 = report.breakdown().iter().map(|(_, a)| a).sum();
        assert!((report.total_mm2() - sum).abs() < 1e-12);
        assert!(report.total_mm2() > 0.0);
    }

    #[test]
    fn l1_and_core_dominate_area() {
        // Figure 7: the L1 caches (flop arrays) and the Vortex cores are the
        // two largest contributors.
        let model = AreaModel::default_16nm();
        let report = model.estimate(&volta_params());
        let l1 = report.component_mm2(Component::L1Cache);
        let core = report.component_mm2(Component::CoreIssue);
        for c in [
            Component::L2Cache,
            Component::SharedMem,
            Component::MatrixUnit,
        ] {
            assert!(l1 > report.component_mm2(c));
            assert!(core > report.component_mm2(c));
        }
    }

    #[test]
    fn virgo_area_close_to_volta_area() {
        // Paper: Virgo SoC is 0.1% smaller than Volta-style and 3.0% larger
        // than Hopper-style. We check the looser property that the two are
        // within ~10% of each other: disaggregation does not blow up area.
        let model = AreaModel::default_16nm();
        let volta = model.estimate(&volta_params()).total_mm2();
        let virgo = model.estimate(&virgo_params()).total_mm2();
        let ratio = virgo / volta;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    }

    #[test]
    fn wide_port_increases_smem_area_by_about_ten_percent() {
        let model = AreaModel::default_16nm();
        let mut with = volta_params();
        with.smem_wide_port = true;
        let base = model.estimate(&volta_params());
        let wide = model.estimate(&with);
        let ratio =
            wide.component_mm2(Component::SharedMem) / base.component_mm2(Component::SharedMem);
        assert!((ratio - 1.096).abs() < 1e-9);
    }

    #[test]
    fn fraction_sums_to_one() {
        let model = AreaModel::default_16nm();
        let report = model.estimate(&virgo_params());
        let sum: f64 = report
            .breakdown()
            .iter()
            .map(|(c, _)| report.fraction(*c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_fraction_is_modest() {
        // Section 3.2.1: the shared memory accounts for 5.5% of SoC area.
        let model = AreaModel::default_16nm();
        let report = model.estimate(&virgo_params());
        let f = report.fraction(Component::SharedMem);
        assert!(f > 0.02 && f < 0.12, "smem fraction {f}");
    }
}
