//! Hardware components used as energy/power/area accounting buckets.
//!
//! The granularity follows the paper's breakdown figures: Figure 9 splits the
//! SoC into L2 cache, L1 cache, shared memory, Vortex core, accumulator
//! memory, matrix unit and "DMA & other"; Figure 10 further splits the Vortex
//! core into pipeline stages; Figure 11 splits the matrix unit internally.

/// A component of the GPU SoC, at the granularity of the paper's power
/// breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// The shared last-level (L2) cache.
    L2Cache,
    /// Per-core L1 instruction and data caches.
    L1Cache,
    /// The cluster shared memory (scratchpad) including its interconnect.
    SharedMem,
    /// SIMT core: instruction issue (fetch, decode, scoreboard, warp
    /// scheduler, operand collection / register file access).
    CoreIssue,
    /// SIMT core: integer ALU datapath.
    CoreAlu,
    /// SIMT core: floating-point datapath.
    CoreFpu,
    /// SIMT core: load/store unit and memory coalescer.
    CoreLsu,
    /// SIMT core: writeback stage.
    CoreWriteback,
    /// SIMT core: everything else (branch handling, CSR, synchronization).
    CoreOther,
    /// The disaggregated matrix unit's private accumulator SRAM.
    AccumMem,
    /// The matrix unit (tensor core or systolic array) datapath and buffers.
    MatrixUnit,
    /// Cluster DMA engine, MMIO plumbing and remaining SoC glue.
    DmaOther,
}

impl Component {
    /// Every distinct component, in report order.
    pub fn all() -> [Component; 12] {
        [
            Component::L2Cache,
            Component::L1Cache,
            Component::SharedMem,
            Component::CoreIssue,
            Component::CoreAlu,
            Component::CoreFpu,
            Component::CoreLsu,
            Component::CoreWriteback,
            Component::CoreOther,
            Component::AccumMem,
            Component::MatrixUnit,
            Component::DmaOther,
        ]
    }

    /// True when the component is one of the SIMT core pipeline stages
    /// (the "Vortex Core" group of Figure 9).
    pub fn is_core(self) -> bool {
        matches!(
            self,
            Component::CoreIssue
                | Component::CoreAlu
                | Component::CoreFpu
                | Component::CoreLsu
                | Component::CoreWriteback
                | Component::CoreOther
        )
    }

    /// Display name matching the labels used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Component::L2Cache => "L2 Cache",
            Component::L1Cache => "L1 Cache",
            Component::SharedMem => "Shared Mem",
            Component::CoreIssue => "Core: Issue",
            Component::CoreAlu => "Core: ALU",
            Component::CoreFpu => "Core: FPU",
            Component::CoreLsu => "Core: LSU",
            Component::CoreWriteback => "Core: Writeback",
            Component::CoreOther => "Core: Other",
            Component::AccumMem => "Accum Mem",
            Component::MatrixUnit => "Matrix Unit",
            Component::DmaOther => "DMA & Other",
        }
    }

    /// The coarse SoC-level group (Figure 9 granularity) this component
    /// belongs to; core pipeline stages all map to "Vortex Core".
    pub fn soc_group(self) -> &'static str {
        if self.is_core() {
            "Vortex Core"
        } else {
            self.name()
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The SIMT-core pipeline stages of the Figure 10 breakdown.
///
/// This is a convenience projection of the `Core*` variants of [`Component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreStage {
    /// Instruction issue, scheduling and register file access.
    Issue,
    /// Integer ALU.
    Alu,
    /// Floating-point unit.
    Fpu,
    /// Load/store unit.
    Lsu,
    /// Writeback.
    Writeback,
    /// Remaining core logic.
    Other,
}

impl CoreStage {
    /// All stages in Figure 10 order.
    pub fn all() -> [CoreStage; 6] {
        [
            CoreStage::Issue,
            CoreStage::Alu,
            CoreStage::Fpu,
            CoreStage::Lsu,
            CoreStage::Writeback,
            CoreStage::Other,
        ]
    }

    /// The corresponding SoC component.
    pub fn component(self) -> Component {
        match self {
            CoreStage::Issue => Component::CoreIssue,
            CoreStage::Alu => Component::CoreAlu,
            CoreStage::Fpu => Component::CoreFpu,
            CoreStage::Lsu => Component::CoreLsu,
            CoreStage::Writeback => Component::CoreWriteback,
            CoreStage::Other => Component::CoreOther,
        }
    }
}

/// Internal subcomponents of a matrix unit, used for the Figure 11 energy
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatrixSubcomponent {
    /// The processing elements: dot-product units (tensor cores) or the
    /// systolic array (Virgo).
    PeArray,
    /// Operand staging buffers of core-coupled tensor cores.
    OperandBuffer,
    /// Result staging buffers of core-coupled tensor cores.
    ResultBuffer,
    /// The shared-memory interface of the disaggregated unit.
    SmemInterface,
    /// The accumulator memory of the disaggregated unit.
    AccumMem,
    /// Sequencing / control logic.
    Control,
}

impl MatrixSubcomponent {
    /// Every distinct subcomponent, in the Figure 11 report order.
    pub fn all() -> [MatrixSubcomponent; 6] {
        [
            MatrixSubcomponent::PeArray,
            MatrixSubcomponent::OperandBuffer,
            MatrixSubcomponent::ResultBuffer,
            MatrixSubcomponent::SmemInterface,
            MatrixSubcomponent::AccumMem,
            MatrixSubcomponent::Control,
        ]
    }

    /// Display name matching Figure 11's legend.
    pub fn name(self) -> &'static str {
        match self {
            MatrixSubcomponent::PeArray => "PE Array",
            MatrixSubcomponent::OperandBuffer => "Operands Buffer",
            MatrixSubcomponent::ResultBuffer => "Result Buffer",
            MatrixSubcomponent::SmemInterface => "SMEM Interface",
            MatrixSubcomponent::AccumMem => "Accum Mem",
            MatrixSubcomponent::Control => "Control",
        }
    }
}

impl std::fmt::Display for MatrixSubcomponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_stage_components_are_core() {
        for stage in CoreStage::all() {
            assert!(stage.component().is_core());
        }
    }

    #[test]
    fn non_core_components_are_not_core() {
        assert!(!Component::L2Cache.is_core());
        assert!(!Component::MatrixUnit.is_core());
        assert!(!Component::AccumMem.is_core());
    }

    #[test]
    fn soc_group_merges_core_stages() {
        assert_eq!(Component::CoreAlu.soc_group(), "Vortex Core");
        assert_eq!(Component::CoreIssue.soc_group(), "Vortex Core");
        assert_eq!(Component::L1Cache.soc_group(), "L1 Cache");
    }

    #[test]
    fn all_components_have_unique_names() {
        let names: Vec<_> = Component::all().iter().map(|c| c.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Component::SharedMem.to_string(), "Shared Mem");
        assert_eq!(MatrixSubcomponent::PeArray.to_string(), "PE Array");
    }
}
