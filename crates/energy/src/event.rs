//! The taxonomy of energy-consuming events recorded by the timing model.

/// A single countable hardware activity with an associated per-event energy.
///
/// Events are deliberately fine-grained and hardware-oriented (per word, per
/// lane-operation, per burst) so that the same table applies to all four
/// design points, keeping comparisons apples-to-apples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergyEvent {
    /// One instruction passing through fetch/decode/scoreboard/warp scheduler.
    InstrIssued,
    /// One 32-bit register file read (per lane).
    RegRead,
    /// One 32-bit register file write (per lane).
    RegWrite,
    /// One integer ALU lane-operation.
    AluOp,
    /// One floating-point lane-operation (an FMA counts as two).
    FpuOp,
    /// One load/store lane-operation handled by the LSU (address generation,
    /// queue management).
    LsuOp,
    /// One instruction writeback.
    Writeback,
    /// One 32-bit word read or written in the shared memory.
    SmemWordAccess,
    /// One shared-memory bank-conflict replay cycle.
    SmemConflict,
    /// One L1 cache access (tag + data).
    L1Access,
    /// One L1 cache line fill or eviction.
    L1Fill,
    /// One L2 cache access.
    L2Access,
    /// One DRAM burst (32 bytes) transferred.
    DramBurst,
    /// One multiply-accumulate in a tree-reduction dot-product unit
    /// (separate multiplier and adder, as in Tensor Cores).
    MacTreePe,
    /// One multiply-accumulate in a fused systolic processing element.
    MacSystolic,
    /// One 32-bit word staged through a tensor core operand buffer.
    OperandBufferAccess,
    /// One 32-bit word staged through a tensor core result buffer.
    ResultBufferAccess,
    /// One 32-bit word read or written in the accumulator SRAM.
    AccumWordAccess,
    /// One 32-byte beat moved by the DMA engine.
    DmaBeat,
    /// One 32-byte flit traversing one hop of the inter-cluster DSM fabric
    /// (link wires plus router crossing).
    DsmLinkHop,
    /// One MMIO register access over the cluster interconnect.
    MmioAccess,
    /// One control/sequencing step inside a matrix unit (FSM transition,
    /// HMMA step sequencing, wgmma address generation).
    MatrixControl,
    /// One coalescer lookup/merge operation.
    CoalescerOp,
    /// One cluster synchronizer barrier event.
    BarrierEvent,
}

impl EnergyEvent {
    /// Every event kind, used to size dense tables.
    pub const ALL: [EnergyEvent; 24] = [
        EnergyEvent::InstrIssued,
        EnergyEvent::RegRead,
        EnergyEvent::RegWrite,
        EnergyEvent::AluOp,
        EnergyEvent::FpuOp,
        EnergyEvent::LsuOp,
        EnergyEvent::Writeback,
        EnergyEvent::SmemWordAccess,
        EnergyEvent::SmemConflict,
        EnergyEvent::L1Access,
        EnergyEvent::L1Fill,
        EnergyEvent::L2Access,
        EnergyEvent::DramBurst,
        EnergyEvent::MacTreePe,
        EnergyEvent::MacSystolic,
        EnergyEvent::OperandBufferAccess,
        EnergyEvent::ResultBufferAccess,
        EnergyEvent::AccumWordAccess,
        EnergyEvent::DmaBeat,
        EnergyEvent::DsmLinkHop,
        EnergyEvent::MmioAccess,
        EnergyEvent::MatrixControl,
        EnergyEvent::CoalescerOp,
        EnergyEvent::BarrierEvent,
    ];

    /// A dense index for table lookups.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|e| *e == self)
            .expect("event present in ALL")
    }

    /// Short lower-case name used in traces and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            EnergyEvent::InstrIssued => "instr_issued",
            EnergyEvent::RegRead => "reg_read",
            EnergyEvent::RegWrite => "reg_write",
            EnergyEvent::AluOp => "alu_op",
            EnergyEvent::FpuOp => "fpu_op",
            EnergyEvent::LsuOp => "lsu_op",
            EnergyEvent::Writeback => "writeback",
            EnergyEvent::SmemWordAccess => "smem_word",
            EnergyEvent::SmemConflict => "smem_conflict",
            EnergyEvent::L1Access => "l1_access",
            EnergyEvent::L1Fill => "l1_fill",
            EnergyEvent::L2Access => "l2_access",
            EnergyEvent::DramBurst => "dram_burst",
            EnergyEvent::MacTreePe => "mac_tree",
            EnergyEvent::MacSystolic => "mac_systolic",
            EnergyEvent::OperandBufferAccess => "operand_buffer",
            EnergyEvent::ResultBufferAccess => "result_buffer",
            EnergyEvent::AccumWordAccess => "accum_word",
            EnergyEvent::DmaBeat => "dma_beat",
            EnergyEvent::DsmLinkHop => "dsm_link_hop",
            EnergyEvent::MmioAccess => "mmio_access",
            EnergyEvent::MatrixControl => "matrix_control",
            EnergyEvent::CoalescerOp => "coalescer_op",
            EnergyEvent::BarrierEvent => "barrier_event",
        }
    }
}

impl std::fmt::Display for EnergyEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_events_have_unique_indices() {
        let indices: HashSet<usize> = EnergyEvent::ALL.iter().map(|e| e.index()).collect();
        assert_eq!(indices.len(), EnergyEvent::ALL.len());
    }

    #[test]
    fn indices_are_dense() {
        for (i, event) in EnergyEvent::ALL.iter().enumerate() {
            assert_eq!(event.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = EnergyEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), EnergyEvent::ALL.len());
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(EnergyEvent::MacSystolic.to_string(), "mac_systolic");
    }
}
