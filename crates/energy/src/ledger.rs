//! The energy ledger: per-component event counts.

use std::collections::BTreeMap;

use crate::component::{Component, MatrixSubcomponent};
use crate::event::EnergyEvent;
use crate::table::EnergyTable;

/// Accumulates event counts per SoC component (and, for matrix units, per
/// internal subcomponent) during a simulation.
///
/// The ledger is purely additive, so per-module ledgers can be merged into a
/// cluster- or SoC-level ledger at the end of a run.
///
/// # Example
///
/// ```
/// use virgo_energy::{Component, EnergyEvent, EnergyLedger, EnergyTable};
///
/// let mut a = EnergyLedger::new();
/// a.record(Component::CoreAlu, EnergyEvent::AluOp, 10);
/// let mut b = EnergyLedger::new();
/// b.record(Component::CoreAlu, EnergyEvent::AluOp, 5);
/// a.merge(&b);
/// assert_eq!(a.count(Component::CoreAlu, EnergyEvent::AluOp), 15);
///
/// let table = EnergyTable::default_16nm();
/// assert!(a.component_energy_pj(&table, Component::CoreAlu) > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyLedger {
    counts: BTreeMap<(Component, EnergyEvent), u64>,
    matrix_counts: BTreeMap<(MatrixSubcomponent, EnergyEvent), u64>,
    /// Busy/idle cluster-cycle side-channel for static power (see
    /// [`crate::StaticPowerModel`]). Deliberately **not** part of
    /// [`EnergyLedger::total_energy_pj`]: the active-energy definition the
    /// paper's figures (and the pinned fingerprints) rest on is untouched.
    busy_cluster_cycles: u64,
    idle_cluster_cycles: u64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` occurrences of `event` attributed to `component`.
    pub fn record(&mut self, component: Component, event: EnergyEvent, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry((component, event)).or_insert(0) += count;
    }

    /// Records `count` occurrences of `event` attributed to a matrix-unit
    /// subcomponent. The events are **also** added to the SoC-level
    /// [`Component::MatrixUnit`] (or [`Component::AccumMem`] for accumulator
    /// accesses) bucket so that SoC totals remain consistent.
    pub fn record_matrix(&mut self, sub: MatrixSubcomponent, event: EnergyEvent, count: u64) {
        if count == 0 {
            return;
        }
        *self.matrix_counts.entry((sub, event)).or_insert(0) += count;
        let soc_component = match sub {
            MatrixSubcomponent::AccumMem => Component::AccumMem,
            _ => Component::MatrixUnit,
        };
        self.record(soc_component, event, count);
    }

    /// Records a busy/idle cluster-cycle split in the static-power
    /// side-channel. Does not contribute to any active-energy total; convert
    /// it with [`crate::StaticPowerModel::ledger_energy_pj`].
    pub fn record_cluster_cycles(&mut self, busy: u64, idle: u64) {
        self.busy_cluster_cycles += busy;
        self.idle_cluster_cycles += idle;
    }

    /// Cluster-cycles recorded as busy (a job resident on the cluster).
    pub fn busy_cluster_cycles(&self) -> u64 {
        self.busy_cluster_cycles
    }

    /// Cluster-cycles recorded as idle (the cluster slot unallocated).
    pub fn idle_cluster_cycles(&self) -> u64 {
        self.idle_cluster_cycles
    }

    /// Returns the recorded count for one `(component, event)` pair.
    pub fn count(&self, component: Component, event: EnergyEvent) -> u64 {
        self.counts.get(&(component, event)).copied().unwrap_or(0)
    }

    /// Returns the recorded count for one matrix subcomponent/event pair.
    pub fn matrix_count(&self, sub: MatrixSubcomponent, event: EnergyEvent) -> u64 {
        self.matrix_counts.get(&(sub, event)).copied().unwrap_or(0)
    }

    /// Total events recorded for a component across all event kinds.
    pub fn component_events(&self, component: Component) -> u64 {
        self.counts
            .iter()
            .filter(|((c, _), _)| *c == component)
            .map(|(_, n)| n)
            .sum()
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (&key, &count) in &other.counts {
            *self.counts.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &other.matrix_counts {
            *self.matrix_counts.entry(key).or_insert(0) += count;
        }
        self.busy_cluster_cycles += other.busy_cluster_cycles;
        self.idle_cluster_cycles += other.idle_cluster_cycles;
    }

    /// Energy attributed to `component` in picojoules under `table`.
    pub fn component_energy_pj(&self, table: &EnergyTable, component: Component) -> f64 {
        self.counts
            .iter()
            .filter(|((c, _), _)| *c == component)
            .map(|((_, e), &n)| table.energy_pj(*e) * n as f64)
            .sum()
    }

    /// Energy attributed to a matrix subcomponent in picojoules.
    pub fn matrix_energy_pj(&self, table: &EnergyTable, sub: MatrixSubcomponent) -> f64 {
        self.matrix_counts
            .iter()
            .filter(|((s, _), _)| *s == sub)
            .map(|((_, e), &n)| table.energy_pj(*e) * n as f64)
            .sum()
    }

    /// Total SoC energy in picojoules under `table`.
    pub fn total_energy_pj(&self, table: &EnergyTable) -> f64 {
        Component::all()
            .iter()
            .map(|&c| self.component_energy_pj(table, c))
            .sum()
    }

    /// Per-component energy breakdown in picojoules, in report order.
    pub fn breakdown_pj(&self, table: &EnergyTable) -> Vec<(Component, f64)> {
        Component::all()
            .iter()
            .map(|&c| (c, self.component_energy_pj(table, c)))
            .collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.matrix_counts.is_empty()
    }

    /// Iterates over all `(component, event, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Component, EnergyEvent, u64)> + '_ {
        self.counts.iter().map(|(&(c, e), &n)| (c, e, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count_roundtrip() {
        let mut l = EnergyLedger::new();
        assert!(l.is_empty());
        l.record(Component::L1Cache, EnergyEvent::L1Access, 7);
        l.record(Component::L1Cache, EnergyEvent::L1Access, 3);
        assert_eq!(l.count(Component::L1Cache, EnergyEvent::L1Access), 10);
        assert!(!l.is_empty());
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut l = EnergyLedger::new();
        l.record(Component::L2Cache, EnergyEvent::L2Access, 0);
        assert!(l.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EnergyLedger::new();
        a.record(Component::CoreIssue, EnergyEvent::InstrIssued, 100);
        let mut b = EnergyLedger::new();
        b.record(Component::CoreIssue, EnergyEvent::InstrIssued, 50);
        b.record(Component::CoreFpu, EnergyEvent::FpuOp, 25);
        a.merge(&b);
        assert_eq!(a.count(Component::CoreIssue, EnergyEvent::InstrIssued), 150);
        assert_eq!(a.count(Component::CoreFpu, EnergyEvent::FpuOp), 25);
    }

    #[test]
    fn matrix_events_propagate_to_soc_bucket() {
        let mut l = EnergyLedger::new();
        l.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacSystolic, 1000);
        l.record_matrix(
            MatrixSubcomponent::AccumMem,
            EnergyEvent::AccumWordAccess,
            64,
        );
        assert_eq!(
            l.matrix_count(MatrixSubcomponent::PeArray, EnergyEvent::MacSystolic),
            1000
        );
        // PE MACs land in the MatrixUnit SoC bucket, accumulator accesses in
        // the AccumMem bucket (Figure 9 vs Figure 11 granularity).
        assert_eq!(
            l.count(Component::MatrixUnit, EnergyEvent::MacSystolic),
            1000
        );
        assert_eq!(
            l.count(Component::AccumMem, EnergyEvent::AccumWordAccess),
            64
        );
    }

    #[test]
    fn energy_computation_uses_table() {
        let mut l = EnergyLedger::new();
        l.record(Component::CoreAlu, EnergyEvent::AluOp, 10);
        let table = EnergyTable::default_16nm();
        let expected = 10.0 * table.energy_pj(EnergyEvent::AluOp);
        assert!((l.component_energy_pj(&table, Component::CoreAlu) - expected).abs() < 1e-9);
        assert!((l.total_energy_pj(&table) - expected).abs() < 1e-9);
    }

    #[test]
    fn breakdown_covers_all_components() {
        let l = EnergyLedger::new();
        let table = EnergyTable::default_16nm();
        let breakdown = l.breakdown_pj(&table);
        assert_eq!(breakdown.len(), Component::all().len());
        assert!(breakdown.iter().all(|(_, e)| *e == 0.0));
    }

    #[test]
    fn component_events_sums_over_event_kinds() {
        let mut l = EnergyLedger::new();
        l.record(Component::SharedMem, EnergyEvent::SmemWordAccess, 5);
        l.record(Component::SharedMem, EnergyEvent::SmemConflict, 2);
        assert_eq!(l.component_events(Component::SharedMem), 7);
    }
}
