//! Energy, power and area models for the Virgo GPU simulator.
//!
//! The paper evaluates *active power* (nominal package power minus idle
//! power) and active energy, measured with Cadence Joules on a commercial
//! 16 nm netlist. A commercial PDK is not reproducible, so this crate models
//! the same quantity bottom-up: every hardware component records *events*
//! (instructions issued, register-file words read, MACs performed, SRAM words
//! accessed, DRAM bursts, ...), and a per-event energy table converts event
//! counts to energy. Because the per-event costs are held constant across the
//! four design points, every relative comparison in the paper's evaluation is
//! driven purely by the event counts — which is exactly the paper's own
//! argument for why Virgo wins (Section 6.1.2: the savings come from
//! instruction processing and operand delivery, not the matrix unit itself).
//!
//! The crate also provides:
//!
//! * [`AreaModel`] — a per-component area estimate reproducing the SoC area
//!   breakdown of Figure 7,
//! * [`scaling`] — the analytical model behind Table 1 (NVIDIA datacenter GPU
//!   generational scaling and CUTLASS kernel occupancy).
//!
//! # Example
//!
//! ```
//! use virgo_energy::{Component, EnergyEvent, EnergyLedger, EnergyTable, PowerReport};
//! use virgo_sim::{Cycle, Frequency};
//!
//! let mut ledger = EnergyLedger::new();
//! ledger.record(Component::CoreIssue, EnergyEvent::InstrIssued, 1_000_000);
//! ledger.record(Component::MatrixUnit, EnergyEvent::MacSystolic, 16_000_000);
//!
//! let table = EnergyTable::default_16nm();
//! let report = PowerReport::from_ledger(
//!     &ledger,
//!     &table,
//!     Cycle::new(100_000),
//!     Frequency::VIRGO_SOC,
//! );
//! assert!(report.total_energy_uj() > 0.0);
//! assert!(report.active_power_mw() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod component;
pub mod event;
pub mod ledger;
pub mod power;
pub mod scaling;
pub mod static_power;
pub mod table;

pub use area::{AreaModel, AreaParams, AreaReport};
pub use component::{Component, CoreStage, MatrixSubcomponent};
pub use event::EnergyEvent;
pub use ledger::EnergyLedger;
pub use power::PowerReport;
pub use static_power::StaticPowerModel;
pub use table::EnergyTable;
