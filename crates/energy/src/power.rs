//! Active power and energy reports derived from an [`EnergyLedger`].

use virgo_sim::{Cycle, Frequency};

use crate::component::{Component, MatrixSubcomponent};
use crate::ledger::EnergyLedger;
use crate::table::EnergyTable;

/// An active power / active energy report for one simulated kernel run.
///
/// "Active" mirrors the paper's measurement methodology (Section 5.3): idle
/// (leakage and clock-tree) power is excluded; only event-proportional
/// switching energy is counted.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    cycles: Cycle,
    frequency: Frequency,
    /// Per-component energy in microjoules, in [`Component::all`] order.
    component_energy_uj: Vec<(Component, f64)>,
    /// Matrix-unit internal energy breakdown in microjoules.
    matrix_energy_uj: Vec<(MatrixSubcomponent, f64)>,
}

impl PowerReport {
    /// Builds a report from a ledger, the energy table, the kernel's cycle
    /// count and the SoC clock.
    pub fn from_ledger(
        ledger: &EnergyLedger,
        table: &EnergyTable,
        cycles: Cycle,
        frequency: Frequency,
    ) -> Self {
        let component_energy_uj = Component::all()
            .iter()
            .map(|&c| (c, ledger.component_energy_pj(table, c) * 1e-6))
            .collect();
        let matrix_energy_uj = MatrixSubcomponent::all()
            .iter()
            .map(|&s| (s, ledger.matrix_energy_pj(table, s) * 1e-6))
            .collect();
        PowerReport {
            cycles,
            frequency,
            component_energy_uj,
            matrix_energy_uj,
        }
    }

    /// Reassembles a report from its parts — the inverse of the accessors,
    /// used when rehydrating a cached [`SimReport`] snapshot. The entry
    /// vectors must be in the same order the accessors report
    /// ([`Component::all`] / [`MatrixSubcomponent::all`]).
    pub fn from_parts(
        cycles: Cycle,
        frequency: Frequency,
        component_energy_uj: Vec<(Component, f64)>,
        matrix_energy_uj: Vec<(MatrixSubcomponent, f64)>,
    ) -> Self {
        PowerReport {
            cycles,
            frequency,
            component_energy_uj,
            matrix_energy_uj,
        }
    }

    /// Simulated cycle count of the run.
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// SoC clock frequency used for power conversion.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Simulated runtime in seconds.
    pub fn runtime_seconds(&self) -> f64 {
        self.frequency.cycles_to_seconds(self.cycles)
    }

    /// Total active energy in microjoules.
    pub fn total_energy_uj(&self) -> f64 {
        self.component_energy_uj.iter().map(|(_, e)| e).sum()
    }

    /// Total active energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.total_energy_uj() * 1e-3
    }

    /// Total SoC active power in milliwatts.
    pub fn active_power_mw(&self) -> f64 {
        let t = self.runtime_seconds();
        if t == 0.0 {
            0.0
        } else {
            // energy [µJ] / time [s] = power [µW]; convert to mW.
            self.total_energy_uj() / t * 1e-3
        }
    }

    /// Active energy of one component in microjoules.
    pub fn component_energy(&self, component: Component) -> f64 {
        self.component_energy_uj
            .iter()
            .find(|(c, _)| *c == component)
            .map(|(_, e)| *e)
            .unwrap_or(0.0)
    }

    /// Active power of one component in milliwatts.
    pub fn component_power_mw(&self, component: Component) -> f64 {
        let t = self.runtime_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.component_energy(component) / t * 1e-3
        }
    }

    /// Per-component active energy breakdown (µJ), in report order.
    pub fn energy_breakdown_uj(&self) -> &[(Component, f64)] {
        &self.component_energy_uj
    }

    /// Per-component active power breakdown (mW), in report order.
    pub fn power_breakdown_mw(&self) -> Vec<(Component, f64)> {
        self.component_energy_uj
            .iter()
            .map(|(c, _)| (*c, self.component_power_mw(*c)))
            .collect()
    }

    /// Active energy of the whole "Vortex Core" group (Figure 9 grouping).
    pub fn core_energy_uj(&self) -> f64 {
        self.component_energy_uj
            .iter()
            .filter(|(c, _)| c.is_core())
            .map(|(_, e)| e)
            .sum()
    }

    /// Active power of the whole "Vortex Core" group in milliwatts.
    pub fn core_power_mw(&self) -> f64 {
        let t = self.runtime_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.core_energy_uj() / t * 1e-3
        }
    }

    /// The matrix unit's internal energy breakdown in microjoules
    /// (Figure 11 granularity).
    pub fn matrix_energy_breakdown_uj(&self) -> &[(MatrixSubcomponent, f64)] {
        &self.matrix_energy_uj
    }

    /// Total matrix-unit energy (including the accumulator memory) in
    /// microjoules.
    pub fn matrix_total_energy_uj(&self) -> f64 {
        self.matrix_energy_uj.iter().map(|(_, e)| e).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EnergyEvent;

    fn simple_report() -> PowerReport {
        let mut ledger = EnergyLedger::new();
        ledger.record(Component::CoreIssue, EnergyEvent::InstrIssued, 1000);
        ledger.record(Component::CoreAlu, EnergyEvent::AluOp, 2000);
        ledger.record(Component::L2Cache, EnergyEvent::L2Access, 10);
        ledger.record_matrix(MatrixSubcomponent::PeArray, EnergyEvent::MacSystolic, 500);
        PowerReport::from_ledger(
            &ledger,
            &EnergyTable::default_16nm(),
            Cycle::new(4000),
            Frequency::VIRGO_SOC,
        )
    }

    #[test]
    fn energy_sums_match_components() {
        let r = simple_report();
        let sum: f64 = r.energy_breakdown_uj().iter().map(|(_, e)| e).sum();
        assert!((sum - r.total_energy_uj()).abs() < 1e-12);
        assert!(r.total_energy_uj() > 0.0);
    }

    #[test]
    fn power_is_energy_over_time() {
        let r = simple_report();
        let expected_mw = r.total_energy_uj() / r.runtime_seconds() * 1e-3;
        assert!((r.active_power_mw() - expected_mw).abs() < 1e-9);
    }

    #[test]
    fn core_group_includes_only_core_stages() {
        let r = simple_report();
        let issue = r.component_energy(Component::CoreIssue);
        let alu = r.component_energy(Component::CoreAlu);
        assert!((r.core_energy_uj() - (issue + alu)).abs() < 1e-12);
        assert!(r.core_power_mw() > 0.0);
    }

    #[test]
    fn matrix_breakdown_reports_pe_energy() {
        let r = simple_report();
        let pe = r
            .matrix_energy_breakdown_uj()
            .iter()
            .find(|(s, _)| *s == MatrixSubcomponent::PeArray)
            .map(|(_, e)| *e)
            .unwrap();
        assert!(pe > 0.0);
        assert!((r.matrix_total_energy_uj() - pe).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_reports_zero_power() {
        let ledger = EnergyLedger::new();
        let r = PowerReport::from_ledger(
            &ledger,
            &EnergyTable::default_16nm(),
            Cycle::ZERO,
            Frequency::VIRGO_SOC,
        );
        assert_eq!(r.active_power_mw(), 0.0);
        assert_eq!(r.total_energy_uj(), 0.0);
    }

    #[test]
    fn runtime_uses_frequency() {
        let r = simple_report();
        assert!((r.runtime_seconds() - 4000.0 / 400e6).abs() < 1e-15);
    }
}
