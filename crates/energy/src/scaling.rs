//! The analytical model behind Table 1: NVIDIA datacenter GPU scaling trends
//! and CUTLASS GEMM kernel occupancy.
//!
//! Table 1 of the paper is a motivation table assembled from public datasheet
//! numbers (V100 / A100 / H100 whitepapers) and from profiling CUTLASS GEMM
//! kernels. The profiling hardware is not reproducible here, so this module
//! recomputes the derived columns analytically:
//!
//! * relative Tensor-FP16 and CUDA-FP32 throughput across generations,
//! * estimated multiply-accumulate units per Tensor Core
//!   (`FLOPS / (2 × clock × tensor core count)`),
//! * warp occupancy given a kernel's register usage and the per-SM register
//!   file capacity.

/// Public specification of one datacenter GPU generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name ("V100", "A100", "H100").
    pub name: &'static str,
    /// Architecture name ("Volta", "Ampere", "Hopper").
    pub architecture: &'static str,
    /// Dense FP16 Tensor Core throughput in TFLOPS.
    pub tensor_fp16_tflops: f64,
    /// FP32 CUDA core throughput in TFLOPS.
    pub cuda_fp32_tflops: f64,
    /// Number of Tensor Cores on the die.
    pub tensor_cores: u32,
    /// Boost clock in GHz.
    pub boost_clock_ghz: f64,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum warps resident per SM.
    pub max_warps_per_sm: u32,
    /// Threads per warp.
    pub threads_per_warp: u32,
    /// Representative register usage (registers per thread) of the
    /// highest-FLOPS CUTLASS GEMM kernels profiled in the paper.
    pub cutlass_regs_per_thread: u32,
}

/// The three GPU generations of Table 1.
pub fn datacenter_gpus() -> Vec<GpuSpec> {
    vec![
        GpuSpec {
            name: "V100",
            architecture: "Volta",
            tensor_fp16_tflops: 125.0,
            cuda_fp32_tflops: 15.7,
            tensor_cores: 640,
            boost_clock_ghz: 1.530,
            registers_per_sm: 65_536,
            max_warps_per_sm: 64,
            threads_per_warp: 32,
            cutlass_regs_per_thread: 224,
        },
        GpuSpec {
            name: "A100",
            architecture: "Ampere",
            tensor_fp16_tflops: 312.0,
            cuda_fp32_tflops: 19.5,
            tensor_cores: 432,
            boost_clock_ghz: 1.410,
            registers_per_sm: 65_536,
            max_warps_per_sm: 64,
            threads_per_warp: 32,
            cutlass_regs_per_thread: 221,
        },
        GpuSpec {
            name: "H100",
            architecture: "Hopper",
            tensor_fp16_tflops: 989.0,
            cuda_fp32_tflops: 67.0,
            tensor_cores: 528,
            boost_clock_ghz: 1.830,
            registers_per_sm: 65_536,
            max_warps_per_sm: 64,
            threads_per_warp: 32,
            cutlass_regs_per_thread: 168,
        },
    ]
}

impl GpuSpec {
    /// Estimated multiply-accumulate units per Tensor Core, derived from
    /// throughput and clock: `FLOPS = 2 × MACs × cores × clock`.
    pub fn macs_per_tensor_core(&self) -> f64 {
        let flops = self.tensor_fp16_tflops * 1e12;
        flops / (2.0 * f64::from(self.tensor_cores) * self.boost_clock_ghz * 1e9)
    }

    /// Warp occupancy achievable for a kernel using
    /// `regs_per_thread` registers, limited only by register capacity.
    ///
    /// Occupancy is the ratio of resident warps (register-limited) to the
    /// architectural maximum.
    pub fn occupancy_for_registers(&self, regs_per_thread: u32) -> f64 {
        if regs_per_thread == 0 {
            return 1.0;
        }
        let regs_per_warp = regs_per_thread * self.threads_per_warp;
        let resident_warps = (self.registers_per_sm / regs_per_warp).min(self.max_warps_per_sm);
        f64::from(resident_warps) / f64::from(self.max_warps_per_sm)
    }

    /// Warp occupancy of the profiled CUTLASS GEMM kernels.
    pub fn cutlass_occupancy(&self) -> f64 {
        self.occupancy_for_registers(self.cutlass_regs_per_thread)
    }
}

/// One row of the regenerated Table 1, normalized to the first (Volta) entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// GPU name.
    pub name: &'static str,
    /// Architecture name.
    pub architecture: &'static str,
    /// Tensor FP16 throughput relative to Volta.
    pub tensor_fp16_rel: f64,
    /// CUDA FP32 throughput relative to Volta.
    pub cuda_fp32_rel: f64,
    /// Tensor Core count relative to Volta.
    pub tensor_cores_rel: f64,
    /// Estimated MACs per Tensor Core (absolute).
    pub macs_per_tc: f64,
    /// CUTLASS register usage per thread.
    pub register_usage: u32,
    /// CUTLASS warp occupancy (fraction).
    pub occupancy: f64,
}

/// Regenerates Table 1 from the public specifications.
pub fn scaling_table() -> Vec<ScalingRow> {
    let gpus = datacenter_gpus();
    let base = gpus.first().expect("at least one GPU").clone();
    gpus.iter()
        .map(|g| ScalingRow {
            name: g.name,
            architecture: g.architecture,
            tensor_fp16_rel: g.tensor_fp16_tflops / base.tensor_fp16_tflops,
            cuda_fp32_rel: g.cuda_fp32_tflops / base.cuda_fp32_tflops,
            tensor_cores_rel: f64::from(g.tensor_cores) / f64::from(base.tensor_cores),
            macs_per_tc: g.macs_per_tensor_core(),
            register_usage: g.cutlass_regs_per_thread,
            occupancy: g.cutlass_occupancy(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_throughput_outgrows_cuda_throughput() {
        // Table 1's headline trend: Tensor FP16 grows faster than CUDA FP32.
        let rows = scaling_table();
        let hopper = rows.iter().find(|r| r.architecture == "Hopper").unwrap();
        assert!(hopper.tensor_fp16_rel > hopper.cuda_fp32_rel);
        assert!(hopper.tensor_fp16_rel > 7.0, "paper reports 7.9x");
    }

    #[test]
    fn tensor_core_count_does_not_grow() {
        let rows = scaling_table();
        for row in &rows {
            assert!(row.tensor_cores_rel <= 1.0 + 1e-9, "{}", row.name);
        }
    }

    #[test]
    fn macs_per_tensor_core_grow_monotonically() {
        // Table 1: 64 → 256 → 512 MACs per Tensor Core across generations.
        let gpus = datacenter_gpus();
        let macs: Vec<f64> = gpus.iter().map(|g| g.macs_per_tensor_core()).collect();
        assert!(macs[0] < macs[1] && macs[1] < macs[2]);
        assert!(
            (macs[0] - 64.0).abs() / 64.0 < 0.05,
            "V100 ≈ 64, got {}",
            macs[0]
        );
        assert!(
            (macs[1] - 256.0).abs() / 256.0 < 0.05,
            "A100 ≈ 256, got {}",
            macs[1]
        );
        assert!(
            (macs[2] - 512.0).abs() / 512.0 < 0.05,
            "H100 ≈ 512, got {}",
            macs[2]
        );
    }

    #[test]
    fn cutlass_occupancy_is_low_across_generations() {
        // Table 1: 12.5%, 10.0%, 14.1% occupancy — high register usage limits
        // occupancy to well under 20% everywhere.
        for gpu in datacenter_gpus() {
            let occ = gpu.cutlass_occupancy();
            assert!(occ < 0.20, "{}: {occ}", gpu.name);
            assert!(occ > 0.05, "{}: {occ}", gpu.name);
        }
    }

    #[test]
    fn occupancy_improves_when_register_usage_drops() {
        let gpus = datacenter_gpus();
        let hopper = gpus.iter().find(|g| g.architecture == "Hopper").unwrap();
        assert!(hopper.occupancy_for_registers(64) > hopper.occupancy_for_registers(255));
        assert_eq!(hopper.occupancy_for_registers(0), 1.0);
    }

    #[test]
    fn occupancy_is_capped_by_max_warps() {
        let gpus = datacenter_gpus();
        let v100 = &gpus[0];
        // Tiny register usage: register file supports more warps than the
        // architectural maximum, so occupancy caps at 100%.
        assert_eq!(v100.occupancy_for_registers(1), 1.0);
    }
}
