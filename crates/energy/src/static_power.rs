//! Static (leakage + clock-tree) power, split per cluster into busy and
//! idle rates.
//!
//! The event-proportional ledger deliberately models *active* energy only —
//! the paper's measurement methodology subtracts idle power, and every
//! pinned fingerprint depends on that definition staying put. A request-level
//! serving simulator needs the part the kernel-level model excludes: a
//! cluster that sits allocated-but-stalled (or unallocated and gated down)
//! still burns leakage, and energy-per-request is meaningless without it.
//!
//! [`StaticPowerModel`] converts busy/idle *cluster-cycle* counts into
//! picojoules at a given clock. It is a separate side-channel on purpose:
//! [`crate::EnergyLedger::total_energy_pj`] never includes static energy, so
//! every existing active-energy figure is bit-identical with or without this
//! model.

use virgo_sim::{Cycle, Frequency};

use crate::ledger::EnergyLedger;

/// Per-cluster static power rates, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPowerModel {
    /// Static power of a cluster while a job is resident on it (full clock
    /// tree toggling, all SRAM arrays powered).
    pub busy_mw_per_cluster: f64,
    /// Static power of an idle cluster slot (clock-gated, arrays retained).
    pub idle_mw_per_cluster: f64,
}

impl StaticPowerModel {
    /// Default 16 nm rates, consistent in magnitude with the active-power
    /// scale of the paper's Joules measurements: an active cluster's static
    /// floor is on the order of a tenth of its switching power, and clock
    /// gating removes roughly three quarters of it.
    pub fn default_16nm() -> Self {
        StaticPowerModel {
            busy_mw_per_cluster: 48.0,
            idle_mw_per_cluster: 12.0,
        }
    }

    /// Static energy in picojoules for the given busy and idle cluster-cycle
    /// counts at clock `frequency`.
    pub fn energy_pj(&self, busy_cycles: u64, idle_cycles: u64, frequency: Frequency) -> f64 {
        let busy_s = frequency.cycles_to_seconds(Cycle::new(busy_cycles));
        let idle_s = frequency.cycles_to_seconds(Cycle::new(idle_cycles));
        // mW × s = mJ = 1e9 pJ.
        (self.busy_mw_per_cluster * busy_s + self.idle_mw_per_cluster * idle_s) * 1e9
    }

    /// Static energy in picojoules for the busy/idle split a ledger carries
    /// in its cluster-cycle side-channel.
    pub fn ledger_energy_pj(&self, ledger: &EnergyLedger, frequency: Frequency) -> f64 {
        self.energy_pj(
            ledger.busy_cluster_cycles(),
            ledger.idle_cluster_cycles(),
            frequency,
        )
    }
}

impl Default for StaticPowerModel {
    fn default() -> Self {
        Self::default_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_cycles_and_rates() {
        let model = StaticPowerModel {
            busy_mw_per_cluster: 100.0,
            idle_mw_per_cluster: 10.0,
        };
        let f = Frequency::VIRGO_SOC; // 400 MHz
                                      // 400e6 busy cycles = 1 s at 100 mW = 100 mJ = 1e11 pJ.
        let one_second_busy = model.energy_pj(400_000_000, 0, f);
        assert!((one_second_busy - 1e11).abs() < 1.0, "{one_second_busy}");
        // Idle is a tenth the rate.
        let one_second_idle = model.energy_pj(0, 400_000_000, f);
        assert!((one_second_idle - 1e10).abs() < 1.0, "{one_second_idle}");
        // Splits add.
        let mixed = model.energy_pj(400_000_000, 400_000_000, f);
        assert!((mixed - (one_second_busy + one_second_idle)).abs() < 1.0);
    }

    #[test]
    fn ledger_side_channel_feeds_static_energy_but_not_active_totals() {
        let mut ledger = EnergyLedger::new();
        ledger.record_cluster_cycles(1_000, 3_000);
        ledger.record_cluster_cycles(500, 0);
        assert_eq!(ledger.busy_cluster_cycles(), 1_500);
        assert_eq!(ledger.idle_cluster_cycles(), 3_000);
        // The active-energy total must not move: static power is a separate
        // channel, keeping every pinned active-energy figure bit-identical.
        let table = crate::EnergyTable::default_16nm();
        assert_eq!(ledger.total_energy_pj(&table), 0.0);
        let model = StaticPowerModel::default_16nm();
        let pj = model.ledger_energy_pj(&ledger, Frequency::VIRGO_SOC);
        assert!(pj > 0.0);
        let direct = model.energy_pj(1_500, 3_000, Frequency::VIRGO_SOC);
        assert!((pj - direct).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_cycle_side_channels() {
        let mut a = EnergyLedger::new();
        a.record_cluster_cycles(10, 20);
        let mut b = EnergyLedger::new();
        b.record_cluster_cycles(1, 2);
        a.merge(&b);
        assert_eq!(a.busy_cluster_cycles(), 11);
        assert_eq!(a.idle_cluster_cycles(), 22);
    }
}
