//! The per-event energy table.

use crate::event::EnergyEvent;

/// Energy cost per event, in picojoules.
///
/// The default table ([`EnergyTable::default_16nm`]) is calibrated to
/// published 16 nm-class estimates for arithmetic and SRAM access energy
/// (Horowitz ISSCC'14-style numbers scaled from 45 nm, Gemmini and tensor
/// core literature). Absolute values carry large uncertainty; what matters
/// for reproducing the paper's conclusions is that the *same* table is used
/// for every design point, so that relative power and energy differences are
/// driven exclusively by event counts.
///
/// # Example
///
/// ```
/// use virgo_energy::{EnergyEvent, EnergyTable};
///
/// let table = EnergyTable::default_16nm();
/// // A fused systolic MAC is cheaper than a tree-reduction MAC
/// // (Section 6.1.2 of the paper).
/// assert!(table.energy_pj(EnergyEvent::MacSystolic) < table.energy_pj(EnergyEvent::MacTreePe));
///
/// // Tables can be customized for sensitivity studies.
/// let hot_rf = table.with_override(EnergyEvent::RegRead, 5.0);
/// assert_eq!(hot_rf.energy_pj(EnergyEvent::RegRead), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    pj: [f64; EnergyEvent::ALL.len()],
}

impl EnergyTable {
    /// The default 16 nm-class calibration used throughout the evaluation.
    pub fn default_16nm() -> Self {
        let mut pj = [0.0; EnergyEvent::ALL.len()];
        let mut set = |event: EnergyEvent, value: f64| pj[event.index()] = value;

        // Core instruction processing: fetch, decode, scoreboard lookup and
        // warp-scheduler arbitration for one instruction.
        set(EnergyEvent::InstrIssued, 9.0);
        // Register file: multi-ported, banked SRAM/flop array; per 32-bit
        // access per lane.
        set(EnergyEvent::RegRead, 1.1);
        set(EnergyEvent::RegWrite, 1.4);
        // Datapaths, per lane-op.
        set(EnergyEvent::AluOp, 0.5);
        set(EnergyEvent::FpuOp, 1.3);
        set(EnergyEvent::LsuOp, 1.0);
        set(EnergyEvent::Writeback, 1.6);
        // On-chip SRAMs, per 32-bit word.
        set(EnergyEvent::SmemWordAccess, 1.0);
        set(EnergyEvent::SmemConflict, 0.4);
        set(EnergyEvent::AccumWordAccess, 0.55);
        // Caches: per access / fill, amortized over a 32-byte line segment.
        set(EnergyEvent::L1Access, 3.2);
        set(EnergyEvent::L1Fill, 6.0);
        set(EnergyEvent::L2Access, 9.0);
        // DRAM interface energy attributable to the SoC (PHY + controller)
        // per 32-byte burst.
        set(EnergyEvent::DramBurst, 40.0);
        // Matrix arithmetic. Tensor-core style tree PEs use separate
        // multipliers and adders; the systolic array uses fused
        // multiply-add units (Section 6.1.2).
        set(EnergyEvent::MacTreePe, 0.62);
        set(EnergyEvent::MacSystolic, 0.54);
        // Tensor-core staging buffers, per 32-bit word.
        set(EnergyEvent::OperandBufferAccess, 0.35);
        set(EnergyEvent::ResultBufferAccess, 0.35);
        // Data movement engines. A DSM flit-hop covers the inter-cluster
        // link wires plus one router crossing for 32 bytes — well below a
        // DRAM burst of the same size, which is the whole point of keeping
        // producer-consumer traffic on chip.
        set(EnergyEvent::DmaBeat, 1.8);
        set(EnergyEvent::DsmLinkHop, 2.6);
        set(EnergyEvent::MmioAccess, 2.0);
        set(EnergyEvent::MatrixControl, 1.2);
        set(EnergyEvent::CoalescerOp, 0.6);
        set(EnergyEvent::BarrierEvent, 2.5);

        EnergyTable { pj }
    }

    /// Returns the energy of one `event` in picojoules.
    pub fn energy_pj(&self, event: EnergyEvent) -> f64 {
        self.pj[event.index()]
    }

    /// Returns a copy of the table with one event's energy replaced.
    #[must_use]
    pub fn with_override(&self, event: EnergyEvent, pj: f64) -> Self {
        let mut out = self.clone();
        out.pj[event.index()] = pj;
        out
    }

    /// Returns a copy of the table with every entry scaled by `factor`,
    /// modelling a uniformly better or worse process corner.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut out = self.clone();
        for v in &mut out.pj {
            *v *= factor;
        }
        out
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::default_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_has_positive_entries() {
        let t = EnergyTable::default_16nm();
        for event in EnergyEvent::ALL {
            assert!(t.energy_pj(event) > 0.0, "{event} must have energy");
        }
    }

    #[test]
    fn override_changes_only_one_entry() {
        let base = EnergyTable::default_16nm();
        let modified = base.with_override(EnergyEvent::DramBurst, 99.0);
        assert_eq!(modified.energy_pj(EnergyEvent::DramBurst), 99.0);
        for event in EnergyEvent::ALL {
            if event != EnergyEvent::DramBurst {
                assert_eq!(base.energy_pj(event), modified.energy_pj(event));
            }
        }
    }

    #[test]
    fn scaling_multiplies_everything() {
        let base = EnergyTable::default_16nm();
        let scaled = base.scaled(2.0);
        for event in EnergyEvent::ALL {
            assert!((scaled.energy_pj(event) - 2.0 * base.energy_pj(event)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = EnergyTable::default_16nm().scaled(0.0);
    }

    #[test]
    fn systolic_mac_cheaper_than_tree_mac() {
        let t = EnergyTable::default_16nm();
        assert!(t.energy_pj(EnergyEvent::MacSystolic) < t.energy_pj(EnergyEvent::MacTreePe));
    }

    #[test]
    fn memory_hierarchy_energy_ordering() {
        // Accesses should get more expensive as we move away from the core.
        let t = EnergyTable::default_16nm();
        assert!(t.energy_pj(EnergyEvent::RegRead) < t.energy_pj(EnergyEvent::L1Access));
        assert!(t.energy_pj(EnergyEvent::L1Access) < t.energy_pj(EnergyEvent::L2Access));
        assert!(t.energy_pj(EnergyEvent::L2Access) < t.energy_pj(EnergyEvent::DramBurst));
    }
}
