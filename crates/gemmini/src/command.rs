//! Resolved commands accepted by the disaggregated matrix unit.

use virgo_isa::{DataType, MatrixComputeCmd};

/// A fully-resolved matrix multiply-accumulate command, as latched into the
/// unit's memory-mapped control registers.
///
/// Unlike [`MatrixComputeCmd`], whose operand addresses are expressions over
/// the issuing instruction's execution count (to express double buffering),
/// a `GemminiCommand` has concrete byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemminiCommand {
    /// Shared-memory byte address of the A operand tile (row-major `m × k`).
    pub a_addr: u64,
    /// Shared-memory byte address of the B operand tile (row-major `k × n`).
    pub b_addr: u64,
    /// Accumulator-memory byte address of the output tile.
    pub acc_addr: u64,
    /// Output rows.
    pub m: u32,
    /// Output columns.
    pub n: u32,
    /// Reduction dimension.
    pub k: u32,
    /// Accumulate onto existing accumulator contents instead of overwriting.
    pub accumulate: bool,
    /// Operand element type.
    pub dtype: DataType,
}

impl GemminiCommand {
    /// Resolves a kernel-level command for a given execution count of the
    /// issuing MMIO write.
    pub fn resolve(cmd: &MatrixComputeCmd, exec_count: u64) -> Self {
        GemminiCommand {
            a_addr: cmd.a.eval(exec_count),
            b_addr: cmd.b.eval(exec_count),
            acc_addr: cmd.acc_addr,
            m: cmd.m,
            n: cmd.n,
            k: cmd.k,
            accumulate: cmd.accumulate,
            dtype: cmd.dtype,
        }
    }

    /// Total multiply-accumulates in this command.
    pub fn mac_ops(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n) * u64::from(self.k)
    }

    /// Bytes of the A tile.
    pub fn a_bytes(&self) -> u64 {
        u64::from(self.m) * u64::from(self.k) * u64::from(self.dtype.bytes())
    }

    /// Bytes of the B tile.
    pub fn b_bytes(&self) -> u64 {
        u64::from(self.k) * u64::from(self.n) * u64::from(self.dtype.bytes())
    }

    /// Bytes of the FP32 output tile in the accumulator memory.
    pub fn output_bytes(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::AddrExpr;

    fn base_cmd() -> MatrixComputeCmd {
        MatrixComputeCmd {
            a: AddrExpr::double_buffered(0, 0x8000),
            b: AddrExpr::double_buffered(0x10000, 0x4000),
            acc_addr: 0,
            m: 128,
            n: 64,
            k: 128,
            accumulate: true,
            dtype: DataType::Fp16,
        }
    }

    #[test]
    fn resolve_applies_execution_count() {
        let cmd = base_cmd();
        let even = GemminiCommand::resolve(&cmd, 0);
        let odd = GemminiCommand::resolve(&cmd, 1);
        assert_eq!(even.a_addr, 0);
        assert_eq!(odd.a_addr, 0x8000);
        assert_eq!(even.b_addr, 0x10000);
        assert_eq!(odd.b_addr, 0x14000);
        assert_eq!(even.m, 128);
        assert!(even.accumulate);
    }

    #[test]
    fn byte_counts_match_tile_geometry() {
        let g = GemminiCommand::resolve(&base_cmd(), 0);
        assert_eq!(g.mac_ops(), 128 * 64 * 128);
        assert_eq!(g.a_bytes(), 128 * 128 * 2);
        assert_eq!(g.b_bytes(), 128 * 64 * 2);
        assert_eq!(g.output_bytes(), 128 * 64 * 4);
    }
}
