//! The disaggregated, cluster-level matrix unit of Virgo.
//!
//! The unit is derived from the Gemmini systolic-array generator
//! (Section 5.2): a 16×16 (configurable) array of fused multiply-add
//! processing elements, fed from the cluster shared memory through the wide
//! ports of the banked interconnect, accumulating into a private accumulator
//! SRAM. A coarse-grain FSM iterates the full `m × n × k` problem of one
//! `virgo_compute` command, so a single MMIO command from a SIMT core covers
//! an entire thread-block tile (128×64×128 in the evaluated configuration).
//!
//! The SIMT cores program the unit through memory-mapped control registers
//! ([`GemminiUnit::try_submit`]) and synchronize with it by polling a busy
//! register (`virgo_fence` in the kernel API).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod command;
pub mod unit;

pub use command::GemminiCommand;
pub use unit::{GemminiConfig, GemminiStats, GemminiUnit};
