//! The Gemmini-derived systolic matrix unit and its coarse-grain FSM.

use virgo_mem::{AccumulatorMemory, SharedMemory};
use virgo_sim::{BoundedQueue, Cycle, NextActivity, StableHash, StableHasher};

use crate::command::GemminiCommand;

/// Configuration of one disaggregated matrix unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemminiConfig {
    /// Systolic array dimension (16 for the FP16 configuration of Table 2,
    /// 8 for FP32). The array performs `dim × dim` MACs per cycle.
    pub dim: u32,
    /// Width of each shared-memory read issued by the streaming FSM, in
    /// bytes (`4 × dim` in the paper's interconnect).
    pub smem_read_bytes: u64,
    /// Depth of the MMIO command queue.
    pub queue_depth: usize,
}

impl StableHash for GemminiConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.dim));
        h.write_u64(self.smem_read_bytes);
        h.write_u64(self.queue_depth as u64);
    }
}

impl GemminiConfig {
    /// The Table 2 FP16 configuration: a 16×16 array reading 64-byte words.
    pub fn fp16_16x16() -> Self {
        GemminiConfig {
            dim: 16,
            smem_read_bytes: 64,
            queue_depth: 4,
        }
    }

    /// The Table 2 FP32 configuration: an 8×8 array.
    pub fn fp32_8x8() -> Self {
        GemminiConfig {
            dim: 8,
            smem_read_bytes: 32,
            queue_depth: 4,
        }
    }

    /// A smaller unit used by the heterogeneous configuration of Section 6.3.
    pub fn fp16_8x8() -> Self {
        GemminiConfig {
            dim: 8,
            smem_read_bytes: 32,
            queue_depth: 4,
        }
    }

    /// Peak multiply-accumulates per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        u64::from(self.dim) * u64::from(self.dim)
    }

    /// Pipeline fill/drain latency of the array in cycles.
    pub fn fill_latency(&self) -> u64 {
        2 * u64::from(self.dim)
    }
}

impl Default for GemminiConfig {
    fn default() -> Self {
        GemminiConfig::fp16_16x16()
    }
}

/// Event counters for one disaggregated matrix unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemminiStats {
    /// Commands completed.
    pub commands: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// 32-bit words read from shared memory by the streaming FSM.
    pub smem_words_read: u64,
    /// 32-bit words written to the accumulator memory.
    pub accum_words_written: u64,
    /// 32-bit words read back from the accumulator memory (when
    /// accumulating onto a previous tile).
    pub accum_words_read: u64,
    /// FSM control events (one per column block plus one per command).
    pub control_events: u64,
    /// Cycles the array spent computing.
    pub busy_cycles: u64,
    /// Cycles lost to array fill/drain at block boundaries.
    pub fill_drain_cycles: u64,
}

/// Execution state of the command currently in the FSM.
#[derive(Debug, Clone, Copy)]
struct ActiveCommand {
    cmd: GemminiCommand,
    /// Column blocks of `dim` output columns.
    total_blocks: u32,
    /// Index of the column block currently streaming.
    block: u32,
    /// Cycles executed within the current block.
    cycle_in_block: u64,
    /// Cycles one block takes (compute + fill/drain).
    block_cycles: u64,
    /// Operand bytes that must be streamed per block.
    block_bytes: u64,
    /// Absolute cycle of the current block's first tick; the block-boundary
    /// event the fast-forward horizon reports is `block_start + block_cycles
    /// - 1`.
    block_start: u64,
}

/// One disaggregated (Virgo-style) matrix unit instance.
///
/// # Example
///
/// ```
/// use virgo_gemmini::{GemminiCommand, GemminiConfig, GemminiUnit};
/// use virgo_isa::DataType;
/// use virgo_mem::{AccumulatorMemory, SharedMemory, SmemConfig};
/// use virgo_sim::Cycle;
///
/// let mut unit = GemminiUnit::new(GemminiConfig::fp16_16x16());
/// let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
/// let mut acc = AccumulatorMemory::default_virgo();
/// let cmd = GemminiCommand {
///     a_addr: 0, b_addr: 0x10000, acc_addr: 0,
///     m: 32, n: 32, k: 32, accumulate: false, dtype: DataType::Fp16,
/// };
/// assert!(unit.try_submit(cmd));
/// let mut cycle = 0;
/// while unit.busy() {
///     unit.tick(Cycle::new(cycle), &mut smem, &mut acc);
///     cycle += 1;
/// }
/// assert_eq!(unit.stats().macs, 32 * 32 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct GemminiUnit {
    config: GemminiConfig,
    queue: BoundedQueue<GemminiCommand>,
    active: Option<ActiveCommand>,
    stats: GemminiStats,
}

impl GemminiUnit {
    /// Creates an idle matrix unit.
    ///
    /// # Panics
    ///
    /// Panics if the systolic dimension is zero.
    pub fn new(config: GemminiConfig) -> Self {
        assert!(config.dim > 0, "systolic array dimension must be non-zero");
        GemminiUnit {
            queue: BoundedQueue::new(config.queue_depth),
            config,
            active: None,
            stats: GemminiStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GemminiConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> GemminiStats {
        self.stats
    }

    /// Number of commands accepted but not yet completed.
    pub fn pending(&self) -> u32 {
        (self.queue.len() + usize::from(self.active.is_some())) as u32
    }

    /// True while the unit has queued or in-flight work — the value of the
    /// memory-mapped busy register the cores poll in `virgo_fence`.
    pub fn busy(&self) -> bool {
        self.pending() > 0
    }

    /// Attempts to latch a command into the MMIO command registers.
    /// Returns `false` when the command queue is full.
    pub fn try_submit(&mut self, cmd: GemminiCommand) -> bool {
        self.queue.push(cmd).is_ok()
    }

    /// Advances the FSM by one cycle; returns the number of commands that
    /// completed this cycle (0 or 1).
    ///
    /// Operand streaming is *batched*: on block entry the whole per-block
    /// read schedule is precomputed and enqueued into the shared memory's
    /// pending stream-read queue (see [`SharedMemory::stream_read`]), so
    /// mid-block ticks are pure compute accounting and the unit's
    /// fast-forward horizon is the block boundary, not `now`. The enqueued
    /// schedule is bit-identical to the historical one-wide-read-per-cycle
    /// loop; the cluster drains it at each read's true cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        smem: &mut SharedMemory,
        accmem: &mut AccumulatorMemory,
    ) -> u32 {
        if self.active.is_none() {
            if let Some(cmd) = self.queue.pop() {
                let active = self.start_command(cmd, now);
                self.enqueue_block_reads(&active, smem);
                self.active = Some(active);
            }
        }
        let Some(mut active) = self.active else {
            return 0;
        };

        // Advance the compute schedule.
        active.cycle_in_block += 1;
        if active.cycle_in_block < self.config.fill_latency() {
            self.stats.fill_drain_cycles += 1;
        } else {
            self.stats.busy_cycles += 1;
        }

        let mut completed = 0;
        if active.cycle_in_block >= active.block_cycles {
            // Column block finished: drain the output columns into the
            // accumulator memory (read-modify-write when accumulating).
            let out_bytes = u64::from(active.cmd.m)
                * u64::from(self.config.dim).min(u64::from(active.cmd.n))
                * 4;
            let acc_addr = active.cmd.acc_addr
                + u64::from(active.block) * out_bytes % accmem.capacity_bytes().max(1);
            if active.cmd.accumulate {
                accmem.access(
                    now,
                    acc_addr.min(accmem.capacity_bytes() - out_bytes.min(accmem.capacity_bytes())),
                    out_bytes,
                    false,
                );
                self.stats.accum_words_read += out_bytes / 4;
            }
            accmem.access(
                now,
                acc_addr.min(accmem.capacity_bytes() - out_bytes.min(accmem.capacity_bytes())),
                out_bytes,
                true,
            );
            self.stats.accum_words_written += out_bytes / 4;
            self.stats.control_events += 1;

            active.block += 1;
            active.cycle_in_block = 0;
            if active.block >= active.total_blocks {
                // Command complete.
                self.stats.commands += 1;
                self.stats.macs += active.cmd.mac_ops();
                self.stats.control_events += 1;
                self.active = None;
                completed = 1;
                return completed;
            }
            // Next block starts on the following cycle; enqueue its operand
            // schedule now so the unit can park until the next boundary.
            active.block_start = now.get() + 1;
            self.enqueue_block_reads(&active, smem);
        }

        self.active = Some(active);
        completed
    }

    /// Builds the execution schedule for a command latched at cycle `now`.
    fn start_command(&self, cmd: GemminiCommand, now: Cycle) -> ActiveCommand {
        let dim = u64::from(self.config.dim);
        let total_blocks = cmd.n.div_ceil(self.config.dim).max(1);
        // Weight-stationary schedule: each column block holds `dim` output
        // columns stationary while the full A tile streams through, so one
        // block takes m·k / dim compute cycles plus the array fill/drain.
        let compute_cycles = (u64::from(cmd.m) * u64::from(cmd.k)).div_ceil(dim).max(1);
        let block_cycles = compute_cycles + self.config.fill_latency();
        // Operand traffic per block: the whole A tile plus this block's
        // columns of B.
        let block_bytes = cmd.a_bytes() + cmd.b_bytes() / u64::from(total_blocks);
        ActiveCommand {
            cmd,
            total_blocks,
            block: 0,
            cycle_in_block: 0,
            block_cycles,
            block_bytes,
            block_start: now.get(),
        }
    }

    /// Enqueues the current block's whole operand-read schedule into the
    /// shared memory's pending stream-read queue.
    ///
    /// This is the closed form of the historical demand-paced loop, which on
    /// each in-block tick `j` issued at most one wide read while
    /// `bytes_issued < block_bytes·(j+1)/block_cycles`: read number `i`
    /// (with `issued` bytes already scheduled) fires at the earliest tick
    /// `j >= prev + 1` whose demand reaches `issued + 1`, and reads whose
    /// tick would fall past the block end are dropped exactly as the
    /// reference schedule starves them.
    fn enqueue_block_reads(&mut self, active: &ActiveCommand, smem: &mut SharedMemory) {
        let block_bytes = active.block_bytes;
        let block_cycles = active.block_cycles.max(1);
        let read_bytes = self.config.smem_read_bytes;
        if block_bytes == 0 || read_bytes == 0 {
            return;
        }
        // A-tile bytes stream repeatedly; the B block is fetched once at the
        // head of the block. Reads are spread across the A and B regions so
        // they land in their respective banks.
        let b_block_bytes = active.cmd.b_bytes() / u64::from(active.total_blocks).max(1);
        let mut issued = 0u64;
        let mut prev_tick: Option<u64> = None;
        while issued < block_bytes {
            let chunk = read_bytes.min(block_bytes - issued);
            // demand(j) = block_bytes·(j+1)/block_cycles ≥ issued+1
            //   ⟺  j ≥ ceil((issued+1)·block_cycles / block_bytes) − 1.
            let mut tick = ((issued + 1) * block_cycles)
                .div_ceil(block_bytes)
                .saturating_sub(1);
            if let Some(prev) = prev_tick {
                tick = tick.max(prev + 1);
            }
            if tick >= block_cycles {
                // The one-read-per-cycle port cannot keep up with demand
                // inside this block; the reference schedule drops the tail.
                break;
            }
            let addr = if issued < b_block_bytes {
                active.cmd.b_addr + u64::from(active.block) * b_block_bytes + issued
            } else {
                active.cmd.a_addr + (issued - b_block_bytes) % active.cmd.a_bytes().max(1)
            };
            smem.stream_read(Cycle::new(active.block_start + tick), addr, chunk);
            self.stats.smem_words_read += chunk.div_ceil(4);
            prev_tick = Some(tick);
            issued += chunk;
        }
    }

    /// Bulk-replays `cycles` parked mid-block ticks: the compute schedule
    /// advances and the fill/drain vs. busy split is applied in closed form.
    /// The caller guarantees (via [`NextActivity`]) that the window never
    /// straddles a block boundary. A no-op on an idle unit.
    pub fn fast_forward(&mut self, cycles: u64) {
        let Some(active) = &mut self.active else {
            return;
        };
        let start = active.cycle_in_block;
        let end = start + cycles;
        debug_assert!(
            end < active.block_cycles,
            "fast-forward window may not straddle a block boundary"
        );
        // A tick with pre-increment cycle_in_block = j counts as fill/drain
        // iff j + 1 < fill_latency, i.e. j < fill_latency - 1.
        let fill_ticks = self.config.fill_latency().saturating_sub(1);
        let fills = end.min(fill_ticks).saturating_sub(start.min(fill_ticks));
        self.stats.fill_drain_cycles += fills;
        self.stats.busy_cycles += cycles - fills;
        active.cycle_in_block = end;
    }
}

impl NextActivity for GemminiUnit {
    /// Mid-block the FSM only performs closed-form compute accounting (the
    /// operand reads were pre-scheduled on block entry), so its next real
    /// event is the block boundary: accumulator writeback, block advance or
    /// command completion. An idle unit with queued commands latches one on
    /// the next tick; a drained unit never acts again on its own.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match &self.active {
            Some(active) => {
                let block_end = active.block_start + active.block_cycles.max(1) - 1;
                Some(Cycle::new(block_end).max(now))
            }
            None if !self.queue.is_empty() => Some(now),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::DataType;
    use virgo_mem::SmemConfig;

    fn setup() -> (GemminiUnit, SharedMemory, AccumulatorMemory) {
        (
            GemminiUnit::new(GemminiConfig::fp16_16x16()),
            SharedMemory::new(SmemConfig::virgo_cluster()),
            AccumulatorMemory::default_virgo(),
        )
    }

    fn cmd(m: u32, n: u32, k: u32, accumulate: bool) -> GemminiCommand {
        GemminiCommand {
            a_addr: 0,
            b_addr: 64 * 1024,
            acc_addr: 0,
            m,
            n,
            k,
            accumulate,
            dtype: DataType::Fp16,
        }
    }

    fn run_to_idle(
        unit: &mut GemminiUnit,
        smem: &mut SharedMemory,
        acc: &mut AccumulatorMemory,
        limit: u64,
    ) -> u64 {
        for cycle in 0..limit {
            unit.tick(Cycle::new(cycle), smem, acc);
            if !unit.busy() {
                return cycle + 1;
            }
        }
        limit
    }

    #[test]
    fn command_completes_with_correct_mac_count() {
        let (mut unit, mut smem, mut acc) = setup();
        assert!(unit.try_submit(cmd(128, 64, 128, false)));
        assert!(unit.busy());
        let cycles = run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        assert_eq!(unit.stats().commands, 1);
        assert_eq!(unit.stats().macs, 128 * 64 * 128);
        // Ideal compute time is m·n·k / 256 = 4096 cycles; fill/drain and
        // streaming overheads put the real figure somewhat above that but
        // well below 2x.
        assert!(cycles >= 4096, "too fast: {cycles}");
        assert!(cycles < 8192, "too slow: {cycles}");
    }

    #[test]
    fn high_utilization_for_large_tiles() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(128, 64, 128, false));
        let cycles = run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let util = unit.stats().macs as f64 / (cycles as f64 * 256.0);
        assert!(util > 0.80, "utilization {util}");
    }

    #[test]
    fn operand_streaming_reads_a_per_block_and_b_once() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(128, 64, 128, false));
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let expected_bytes = {
            let a = 128 * 128 * 2u64;
            let b = 128 * 64 * 2u64;
            let blocks = 64 / 16;
            a * blocks + b
        };
        let read_bytes = unit.stats().smem_words_read * 4;
        let ratio = read_bytes as f64 / expected_bytes as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "read {read_bytes}, expected {expected_bytes}"
        );
    }

    #[test]
    fn accumulate_mode_reads_back_previous_partials() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(32, 32, 32, false));
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let writes_only = unit.stats();
        assert_eq!(writes_only.accum_words_read, 0);
        assert!(writes_only.accum_words_written > 0);

        let (mut unit2, mut smem2, mut acc2) = setup();
        unit2.try_submit(cmd(32, 32, 32, true));
        run_to_idle(&mut unit2, &mut smem2, &mut acc2, 100_000);
        assert_eq!(
            unit2.stats().accum_words_read,
            unit2.stats().accum_words_written
        );
    }

    #[test]
    fn commands_queue_and_run_in_order() {
        let (mut unit, mut smem, mut acc) = setup();
        assert!(unit.try_submit(cmd(32, 32, 32, false)));
        assert!(unit.try_submit(cmd(32, 32, 32, true)));
        assert_eq!(unit.pending(), 2);
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        assert_eq!(unit.stats().commands, 2);
        assert_eq!(unit.pending(), 0);
    }

    #[test]
    fn queue_depth_is_bounded() {
        let mut unit = GemminiUnit::new(GemminiConfig {
            queue_depth: 1,
            ..GemminiConfig::fp16_16x16()
        });
        assert!(unit.try_submit(cmd(16, 16, 16, false)));
        assert!(!unit.try_submit(cmd(16, 16, 16, false)));
    }

    #[test]
    fn smaller_array_takes_proportionally_longer() {
        let big = {
            let (mut unit, mut smem, mut acc) = setup();
            unit.try_submit(cmd(64, 64, 64, false));
            run_to_idle(&mut unit, &mut smem, &mut acc, 1_000_000)
        };
        let small = {
            let mut unit = GemminiUnit::new(GemminiConfig::fp16_8x8());
            let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
            let mut acc = AccumulatorMemory::default_virgo();
            unit.try_submit(cmd(64, 64, 64, false));
            run_to_idle(&mut unit, &mut smem, &mut acc, 1_000_000)
        };
        // A 8×8 array has 4x fewer MACs; expect roughly 3-5x longer runtime.
        assert!(small as f64 > big as f64 * 2.5, "big {big}, small {small}");
    }

    #[test]
    fn idle_tick_does_nothing() {
        let (mut unit, mut smem, mut acc) = setup();
        assert_eq!(unit.tick(Cycle::new(0), &mut smem, &mut acc), 0);
        assert!(!unit.busy());
        assert_eq!(unit.stats().commands, 0);
    }

    /// SplitMix64 step — the deterministic PRNG behind the property sweep.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The historical per-cycle streaming FSM, re-executed literally one
    /// tick at a time against its own memories: on each in-block tick `j` it
    /// issues at most one wide read while `issued < block_bytes·(j+1) /
    /// block_cycles`, splits the compute schedule into fill/drain vs busy,
    /// and performs the accumulator writeback at each block boundary. The
    /// batched FSM's closed-form schedule must reproduce this bit-for-bit.
    fn reference_run(
        config: &GemminiConfig,
        cmds: &[GemminiCommand],
        smem: &mut SharedMemory,
        acc: &mut AccumulatorMemory,
    ) -> (GemminiStats, u64) {
        let mut stats = GemminiStats::default();
        let mut cycle = 0u64;
        for cmd in cmds {
            let dim = u64::from(config.dim);
            let total_blocks = cmd.n.div_ceil(config.dim).max(1);
            let compute_cycles = (u64::from(cmd.m) * u64::from(cmd.k)).div_ceil(dim).max(1);
            let block_cycles = compute_cycles + config.fill_latency();
            let block_bytes = cmd.a_bytes() + cmd.b_bytes() / u64::from(total_blocks);
            let b_block_bytes = cmd.b_bytes() / u64::from(total_blocks);
            for block in 0..total_blocks {
                let block_start = cycle;
                let mut issued = 0u64;
                for j in 0..block_cycles {
                    // Demand-paced one-wide-read-per-cycle port.
                    if issued < block_bytes && issued < block_bytes * (j + 1) / block_cycles {
                        let chunk = config.smem_read_bytes.min(block_bytes - issued);
                        let addr = if issued < b_block_bytes {
                            cmd.b_addr + u64::from(block) * b_block_bytes + issued
                        } else {
                            cmd.a_addr + (issued - b_block_bytes) % cmd.a_bytes().max(1)
                        };
                        smem.access_wide(Cycle::new(block_start + j), addr, chunk, false);
                        stats.smem_words_read += chunk.div_ceil(4);
                        issued += chunk;
                    }
                    if j + 1 < config.fill_latency() {
                        stats.fill_drain_cycles += 1;
                    } else {
                        stats.busy_cycles += 1;
                    }
                    cycle += 1;
                }
                let now = Cycle::new(cycle - 1);
                let out_bytes = u64::from(cmd.m) * u64::from(config.dim).min(u64::from(cmd.n)) * 4;
                let acc_addr =
                    cmd.acc_addr + u64::from(block) * out_bytes % acc.capacity_bytes().max(1);
                let clamped =
                    acc_addr.min(acc.capacity_bytes() - out_bytes.min(acc.capacity_bytes()));
                if cmd.accumulate {
                    acc.access(now, clamped, out_bytes, false);
                    stats.accum_words_read += out_bytes / 4;
                }
                acc.access(now, clamped, out_bytes, true);
                stats.accum_words_written += out_bytes / 4;
                stats.control_events += 1;
            }
            stats.commands += 1;
            stats.macs += cmd.mac_ops();
            stats.control_events += 1;
        }
        (stats, cycle)
    }

    #[test]
    fn batched_streaming_matches_per_cycle_reference_on_random_commands() {
        let mut state = 0x5EED_CAFE_F00D_u64;
        for round in 0..64 {
            let dim = [4u32, 8, 16][(splitmix64(&mut state) % 3) as usize];
            let config = GemminiConfig {
                dim,
                smem_read_bytes: u64::from(dim) * 4,
                queue_depth: 4,
            };
            let mut cmds = Vec::new();
            for _ in 0..=(splitmix64(&mut state) % 2) {
                cmds.push(GemminiCommand {
                    a_addr: 0,
                    b_addr: 64 * 1024,
                    acc_addr: 0,
                    m: (splitmix64(&mut state) % 40 + 1) as u32,
                    n: (splitmix64(&mut state) % 40 + 1) as u32,
                    k: (splitmix64(&mut state) % 40 + 1) as u32,
                    accumulate: splitmix64(&mut state).is_multiple_of(2),
                    dtype: if splitmix64(&mut state).is_multiple_of(2) {
                        DataType::Fp16
                    } else {
                        DataType::Fp32
                    },
                });
            }

            // Batched run: tick every cycle and drain the pending stream
            // reads with the cluster's bracket so each lands at its true
            // scheduled cycle.
            let mut unit = GemminiUnit::new(config);
            let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
            let mut acc = AccumulatorMemory::default_virgo();
            for cmd in &cmds {
                assert!(unit.try_submit(*cmd));
            }
            let mut cycles = 0u64;
            while unit.busy() {
                let now = Cycle::new(cycles);
                smem.drain_stream_reads(now, false);
                unit.tick(now, &mut smem, &mut acc);
                smem.drain_stream_reads(now, true);
                cycles += 1;
                assert!(cycles < 1_000_000, "round {round}: runaway command");
            }
            assert_eq!(smem.stream_reads_pending(), 0, "round {round}");

            let mut ref_smem = SharedMemory::new(SmemConfig::virgo_cluster());
            let mut ref_acc = AccumulatorMemory::default_virgo();
            let (ref_stats, ref_cycles) =
                reference_run(&config, &cmds, &mut ref_smem, &mut ref_acc);

            assert_eq!(unit.stats(), ref_stats, "round {round}: {cmds:?}");
            assert_eq!(cycles, ref_cycles, "round {round}: completion drifted");
            assert_eq!(
                smem.stats(),
                ref_smem.stats(),
                "round {round}: smem footprint drifted"
            );
            for bank in 0..SmemConfig::virgo_cluster().banks as usize {
                assert_eq!(
                    smem.bank_free_at(bank),
                    ref_smem.bank_free_at(bank),
                    "round {round}: bank {bank} occupancy drifted"
                );
            }
            assert_eq!(
                acc.busy_until(),
                ref_acc.busy_until(),
                "round {round}: accumulator occupancy drifted"
            );
        }
    }
}
