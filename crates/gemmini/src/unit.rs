//! The Gemmini-derived systolic matrix unit and its coarse-grain FSM.

use virgo_mem::{AccumulatorMemory, SharedMemory};
use virgo_sim::{BoundedQueue, Cycle, NextActivity, StableHash, StableHasher};

use crate::command::GemminiCommand;

/// Configuration of one disaggregated matrix unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemminiConfig {
    /// Systolic array dimension (16 for the FP16 configuration of Table 2,
    /// 8 for FP32). The array performs `dim × dim` MACs per cycle.
    pub dim: u32,
    /// Width of each shared-memory read issued by the streaming FSM, in
    /// bytes (`4 × dim` in the paper's interconnect).
    pub smem_read_bytes: u64,
    /// Depth of the MMIO command queue.
    pub queue_depth: usize,
}

impl StableHash for GemminiConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.dim));
        h.write_u64(self.smem_read_bytes);
        h.write_u64(self.queue_depth as u64);
    }
}

impl GemminiConfig {
    /// The Table 2 FP16 configuration: a 16×16 array reading 64-byte words.
    pub fn fp16_16x16() -> Self {
        GemminiConfig {
            dim: 16,
            smem_read_bytes: 64,
            queue_depth: 4,
        }
    }

    /// The Table 2 FP32 configuration: an 8×8 array.
    pub fn fp32_8x8() -> Self {
        GemminiConfig {
            dim: 8,
            smem_read_bytes: 32,
            queue_depth: 4,
        }
    }

    /// A smaller unit used by the heterogeneous configuration of Section 6.3.
    pub fn fp16_8x8() -> Self {
        GemminiConfig {
            dim: 8,
            smem_read_bytes: 32,
            queue_depth: 4,
        }
    }

    /// Peak multiply-accumulates per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        u64::from(self.dim) * u64::from(self.dim)
    }

    /// Pipeline fill/drain latency of the array in cycles.
    pub fn fill_latency(&self) -> u64 {
        2 * u64::from(self.dim)
    }
}

impl Default for GemminiConfig {
    fn default() -> Self {
        GemminiConfig::fp16_16x16()
    }
}

/// Event counters for one disaggregated matrix unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemminiStats {
    /// Commands completed.
    pub commands: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// 32-bit words read from shared memory by the streaming FSM.
    pub smem_words_read: u64,
    /// 32-bit words written to the accumulator memory.
    pub accum_words_written: u64,
    /// 32-bit words read back from the accumulator memory (when
    /// accumulating onto a previous tile).
    pub accum_words_read: u64,
    /// FSM control events (one per column block plus one per command).
    pub control_events: u64,
    /// Cycles the array spent computing.
    pub busy_cycles: u64,
    /// Cycles lost to array fill/drain at block boundaries.
    pub fill_drain_cycles: u64,
}

/// Execution state of the command currently in the FSM.
#[derive(Debug, Clone, Copy)]
struct ActiveCommand {
    cmd: GemminiCommand,
    /// Column blocks of `dim` output columns.
    total_blocks: u32,
    /// Index of the column block currently streaming.
    block: u32,
    /// Cycles executed within the current block.
    cycle_in_block: u64,
    /// Cycles one block takes (compute + fill/drain).
    block_cycles: u64,
    /// Operand bytes that must be streamed per block.
    block_bytes: u64,
    /// Operand bytes already requested for the current block.
    bytes_issued: u64,
}

/// One disaggregated (Virgo-style) matrix unit instance.
///
/// # Example
///
/// ```
/// use virgo_gemmini::{GemminiCommand, GemminiConfig, GemminiUnit};
/// use virgo_isa::DataType;
/// use virgo_mem::{AccumulatorMemory, SharedMemory, SmemConfig};
/// use virgo_sim::Cycle;
///
/// let mut unit = GemminiUnit::new(GemminiConfig::fp16_16x16());
/// let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
/// let mut acc = AccumulatorMemory::default_virgo();
/// let cmd = GemminiCommand {
///     a_addr: 0, b_addr: 0x10000, acc_addr: 0,
///     m: 32, n: 32, k: 32, accumulate: false, dtype: DataType::Fp16,
/// };
/// assert!(unit.try_submit(cmd));
/// let mut cycle = 0;
/// while unit.busy() {
///     unit.tick(Cycle::new(cycle), &mut smem, &mut acc);
///     cycle += 1;
/// }
/// assert_eq!(unit.stats().macs, 32 * 32 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct GemminiUnit {
    config: GemminiConfig,
    queue: BoundedQueue<GemminiCommand>,
    active: Option<ActiveCommand>,
    stats: GemminiStats,
}

impl GemminiUnit {
    /// Creates an idle matrix unit.
    ///
    /// # Panics
    ///
    /// Panics if the systolic dimension is zero.
    pub fn new(config: GemminiConfig) -> Self {
        assert!(config.dim > 0, "systolic array dimension must be non-zero");
        GemminiUnit {
            queue: BoundedQueue::new(config.queue_depth),
            config,
            active: None,
            stats: GemminiStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GemminiConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> GemminiStats {
        self.stats
    }

    /// Number of commands accepted but not yet completed.
    pub fn pending(&self) -> u32 {
        (self.queue.len() + usize::from(self.active.is_some())) as u32
    }

    /// True while the unit has queued or in-flight work — the value of the
    /// memory-mapped busy register the cores poll in `virgo_fence`.
    pub fn busy(&self) -> bool {
        self.pending() > 0
    }

    /// Attempts to latch a command into the MMIO command registers.
    /// Returns `false` when the command queue is full.
    pub fn try_submit(&mut self, cmd: GemminiCommand) -> bool {
        self.queue.push(cmd).is_ok()
    }

    /// Advances the FSM by one cycle; returns the number of commands that
    /// completed this cycle (0 or 1).
    pub fn tick(
        &mut self,
        now: Cycle,
        smem: &mut SharedMemory,
        accmem: &mut AccumulatorMemory,
    ) -> u32 {
        if self.active.is_none() {
            if let Some(cmd) = self.queue.pop() {
                self.active = Some(self.start_command(cmd));
            }
        }
        let Some(mut active) = self.active else {
            return 0;
        };

        // Stream operands: keep the issued bytes ahead of the proportional
        // demand of the compute schedule, one wide read per cycle at most.
        let demand = active.block_bytes * (active.cycle_in_block + 1) / active.block_cycles.max(1);
        if active.bytes_issued < demand.min(active.block_bytes) {
            let chunk = self
                .config
                .smem_read_bytes
                .min(active.block_bytes - active.bytes_issued);
            // A-tile bytes stream repeatedly; the B block is fetched once at
            // the head of the block. Reads are spread across the A and B
            // regions so they land in their respective banks.
            let b_block_bytes = active.cmd.b_bytes() / u64::from(active.total_blocks).max(1);
            let addr = if active.bytes_issued < b_block_bytes {
                active.cmd.b_addr + u64::from(active.block) * b_block_bytes + active.bytes_issued
            } else {
                active.cmd.a_addr
                    + (active.bytes_issued - b_block_bytes) % active.cmd.a_bytes().max(1)
            };
            smem.access_wide(now, addr, chunk, false);
            self.stats.smem_words_read += chunk.div_ceil(4);
            active.bytes_issued += chunk;
        }

        // Advance the compute schedule.
        active.cycle_in_block += 1;
        if active.cycle_in_block < self.config.fill_latency() {
            self.stats.fill_drain_cycles += 1;
        } else {
            self.stats.busy_cycles += 1;
        }

        let mut completed = 0;
        if active.cycle_in_block >= active.block_cycles {
            // Column block finished: drain the output columns into the
            // accumulator memory (read-modify-write when accumulating).
            let out_bytes = u64::from(active.cmd.m)
                * u64::from(self.config.dim).min(u64::from(active.cmd.n))
                * 4;
            let acc_addr = active.cmd.acc_addr
                + u64::from(active.block) * out_bytes % accmem.capacity_bytes().max(1);
            if active.cmd.accumulate {
                accmem.access(
                    now,
                    acc_addr.min(accmem.capacity_bytes() - out_bytes.min(accmem.capacity_bytes())),
                    out_bytes,
                    false,
                );
                self.stats.accum_words_read += out_bytes / 4;
            }
            accmem.access(
                now,
                acc_addr.min(accmem.capacity_bytes() - out_bytes.min(accmem.capacity_bytes())),
                out_bytes,
                true,
            );
            self.stats.accum_words_written += out_bytes / 4;
            self.stats.control_events += 1;

            active.block += 1;
            active.cycle_in_block = 0;
            active.bytes_issued = 0;
            if active.block >= active.total_blocks {
                // Command complete.
                self.stats.commands += 1;
                self.stats.macs += active.cmd.mac_ops();
                self.stats.control_events += 1;
                self.active = None;
                completed = 1;
                return completed;
            }
        }

        self.active = Some(active);
        completed
    }

    /// Builds the execution schedule for a freshly-latched command.
    fn start_command(&self, cmd: GemminiCommand) -> ActiveCommand {
        let dim = u64::from(self.config.dim);
        let total_blocks = cmd.n.div_ceil(self.config.dim).max(1);
        // Weight-stationary schedule: each column block holds `dim` output
        // columns stationary while the full A tile streams through, so one
        // block takes m·k / dim compute cycles plus the array fill/drain.
        let compute_cycles = (u64::from(cmd.m) * u64::from(cmd.k)).div_ceil(dim).max(1);
        let block_cycles = compute_cycles + self.config.fill_latency();
        // Operand traffic per block: the whole A tile plus this block's
        // columns of B.
        let block_bytes = cmd.a_bytes() + cmd.b_bytes() / u64::from(total_blocks);
        ActiveCommand {
            cmd,
            total_blocks,
            block: 0,
            cycle_in_block: 0,
            block_cycles,
            block_bytes,
            bytes_issued: 0,
        }
    }
}

impl NextActivity for GemminiUnit {
    /// The streaming FSM does real work — wide shared-memory reads,
    /// fill/drain accounting, accumulator writebacks — on *every* cycle while
    /// a command is latched or queued, so a busy unit pins the fast-forward
    /// horizon to `now`. Only a fully drained unit is skippable.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.busy() {
            Some(now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::DataType;
    use virgo_mem::SmemConfig;

    fn setup() -> (GemminiUnit, SharedMemory, AccumulatorMemory) {
        (
            GemminiUnit::new(GemminiConfig::fp16_16x16()),
            SharedMemory::new(SmemConfig::virgo_cluster()),
            AccumulatorMemory::default_virgo(),
        )
    }

    fn cmd(m: u32, n: u32, k: u32, accumulate: bool) -> GemminiCommand {
        GemminiCommand {
            a_addr: 0,
            b_addr: 64 * 1024,
            acc_addr: 0,
            m,
            n,
            k,
            accumulate,
            dtype: DataType::Fp16,
        }
    }

    fn run_to_idle(
        unit: &mut GemminiUnit,
        smem: &mut SharedMemory,
        acc: &mut AccumulatorMemory,
        limit: u64,
    ) -> u64 {
        for cycle in 0..limit {
            unit.tick(Cycle::new(cycle), smem, acc);
            if !unit.busy() {
                return cycle + 1;
            }
        }
        limit
    }

    #[test]
    fn command_completes_with_correct_mac_count() {
        let (mut unit, mut smem, mut acc) = setup();
        assert!(unit.try_submit(cmd(128, 64, 128, false)));
        assert!(unit.busy());
        let cycles = run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        assert_eq!(unit.stats().commands, 1);
        assert_eq!(unit.stats().macs, 128 * 64 * 128);
        // Ideal compute time is m·n·k / 256 = 4096 cycles; fill/drain and
        // streaming overheads put the real figure somewhat above that but
        // well below 2x.
        assert!(cycles >= 4096, "too fast: {cycles}");
        assert!(cycles < 8192, "too slow: {cycles}");
    }

    #[test]
    fn high_utilization_for_large_tiles() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(128, 64, 128, false));
        let cycles = run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let util = unit.stats().macs as f64 / (cycles as f64 * 256.0);
        assert!(util > 0.80, "utilization {util}");
    }

    #[test]
    fn operand_streaming_reads_a_per_block_and_b_once() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(128, 64, 128, false));
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let expected_bytes = {
            let a = 128 * 128 * 2u64;
            let b = 128 * 64 * 2u64;
            let blocks = 64 / 16;
            a * blocks + b
        };
        let read_bytes = unit.stats().smem_words_read * 4;
        let ratio = read_bytes as f64 / expected_bytes as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "read {read_bytes}, expected {expected_bytes}"
        );
    }

    #[test]
    fn accumulate_mode_reads_back_previous_partials() {
        let (mut unit, mut smem, mut acc) = setup();
        unit.try_submit(cmd(32, 32, 32, false));
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        let writes_only = unit.stats();
        assert_eq!(writes_only.accum_words_read, 0);
        assert!(writes_only.accum_words_written > 0);

        let (mut unit2, mut smem2, mut acc2) = setup();
        unit2.try_submit(cmd(32, 32, 32, true));
        run_to_idle(&mut unit2, &mut smem2, &mut acc2, 100_000);
        assert_eq!(
            unit2.stats().accum_words_read,
            unit2.stats().accum_words_written
        );
    }

    #[test]
    fn commands_queue_and_run_in_order() {
        let (mut unit, mut smem, mut acc) = setup();
        assert!(unit.try_submit(cmd(32, 32, 32, false)));
        assert!(unit.try_submit(cmd(32, 32, 32, true)));
        assert_eq!(unit.pending(), 2);
        run_to_idle(&mut unit, &mut smem, &mut acc, 100_000);
        assert_eq!(unit.stats().commands, 2);
        assert_eq!(unit.pending(), 0);
    }

    #[test]
    fn queue_depth_is_bounded() {
        let mut unit = GemminiUnit::new(GemminiConfig {
            queue_depth: 1,
            ..GemminiConfig::fp16_16x16()
        });
        assert!(unit.try_submit(cmd(16, 16, 16, false)));
        assert!(!unit.try_submit(cmd(16, 16, 16, false)));
    }

    #[test]
    fn smaller_array_takes_proportionally_longer() {
        let big = {
            let (mut unit, mut smem, mut acc) = setup();
            unit.try_submit(cmd(64, 64, 64, false));
            run_to_idle(&mut unit, &mut smem, &mut acc, 1_000_000)
        };
        let small = {
            let mut unit = GemminiUnit::new(GemminiConfig::fp16_8x8());
            let mut smem = SharedMemory::new(SmemConfig::virgo_cluster());
            let mut acc = AccumulatorMemory::default_virgo();
            unit.try_submit(cmd(64, 64, 64, false));
            run_to_idle(&mut unit, &mut smem, &mut acc, 1_000_000)
        };
        // A 8×8 array has 4x fewer MACs; expect roughly 3-5x longer runtime.
        assert!(small as f64 > big as f64 * 2.5, "big {big}, small {small}");
    }

    #[test]
    fn idle_tick_does_nothing() {
        let (mut unit, mut smem, mut acc) = setup();
        assert_eq!(unit.tick(Cycle::new(0), &mut smem, &mut acc), 0);
        assert!(!unit.busy());
        assert_eq!(unit.stats().commands, 0);
    }
}
