//! Address expressions and per-lane access patterns.
//!
//! Kernels are loop structured, so a single static instruction executes many
//! times with different addresses (streaming over the K dimension, alternating
//! double buffers, ...). [`AddrExpr`] captures the address as a function of
//! the instruction's *execution count*, which the warp tracks per static
//! instruction.

use virgo_sim::{StableHash, StableHasher};

/// Memory regions addressable by kernels and DMA commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// Off-chip global memory, reached through the L1/L2 cache hierarchy.
    Global,
    /// The cluster-local software-managed shared memory (scratchpad).
    Shared,
    /// The private accumulator SRAM inside the disaggregated matrix unit.
    Accumulator,
}

impl MemRegion {
    /// Returns a short lower-case name, used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            MemRegion::Global => "global",
            MemRegion::Shared => "shared",
            MemRegion::Accumulator => "accumulator",
        }
    }
}

// ---------------------------------------------------------------------------
// The remote shared-memory address window.
//
// Hopper-style distributed shared memory exposes a peer cluster's scratchpad
// through a dedicated address window: the high window bit marks the access as
// remote, a cluster-id field selects the peer, and the low bits are the byte
// offset inside that peer's shared memory. Accesses that decode to this
// window are routed over the inter-cluster DSM fabric instead of the local
// scratchpad banks.
// ---------------------------------------------------------------------------

/// The bit marking a [`MemRegion::Shared`] address as targeting a *peer*
/// cluster's scratchpad through the DSM window.
pub const REMOTE_SMEM_WINDOW: u64 = 1 << 62;

/// Bit position of the cluster-id field inside a remote window address.
const REMOTE_CLUSTER_SHIFT: u32 = 40;

/// Width mask of the cluster-id field (16 bits — far beyond any machine the
/// model instantiates).
const REMOTE_CLUSTER_MASK: u64 = 0xFFFF;

/// Mask of the byte-offset field inside a remote window address.
const REMOTE_OFFSET_MASK: u64 = (1 << REMOTE_CLUSTER_SHIFT) - 1;

/// Encodes a shared-memory byte offset inside `cluster`'s scratchpad as a
/// remote-window address.
///
/// # Panics
///
/// Panics if the cluster id or offset overflow their window fields.
///
/// # Example
///
/// ```
/// use virgo_isa::{decode_remote_smem, remote_smem_addr};
///
/// let addr = remote_smem_addr(3, 0x4000);
/// assert_eq!(decode_remote_smem(addr), Some((3, 0x4000)));
/// assert_eq!(decode_remote_smem(0x4000), None, "local addresses stay local");
/// ```
pub fn remote_smem_addr(cluster: u32, offset: u64) -> u64 {
    assert!(
        u64::from(cluster) <= REMOTE_CLUSTER_MASK,
        "cluster id {cluster} overflows the remote window's cluster field"
    );
    assert!(
        offset <= REMOTE_OFFSET_MASK,
        "offset {offset:#x} overflows the remote window's offset field"
    );
    REMOTE_SMEM_WINDOW | (u64::from(cluster) << REMOTE_CLUSTER_SHIFT) | offset
}

/// Decodes a remote-window address into `(cluster, offset)`, or `None` for a
/// plain local address.
pub fn decode_remote_smem(addr: u64) -> Option<(u32, u64)> {
    if addr & REMOTE_SMEM_WINDOW == 0 {
        return None;
    }
    let cluster = ((addr >> REMOTE_CLUSTER_SHIFT) & REMOTE_CLUSTER_MASK) as u32;
    Some((cluster, addr & REMOTE_OFFSET_MASK))
}

/// A byte address as a function of how many times the owning static
/// instruction has already executed.
///
/// The effective address for the `e`-th execution (`e` starting at 0) is:
///
/// ```text
/// base + (e % modulo) * stride        (modulo > 0)
/// base +  e           * stride        (modulo == 0)
/// ```
///
/// `modulo == 2` models double buffering in shared memory; `modulo == 0`
/// models streaming over fresh global-memory tiles.
///
/// # Example
///
/// ```
/// use virgo_isa::AddrExpr;
///
/// let stream = AddrExpr::streaming(0x1000, 256);
/// assert_eq!(stream.eval(0), 0x1000);
/// assert_eq!(stream.eval(3), 0x1000 + 3 * 256);
///
/// let pingpong = AddrExpr::double_buffered(0x0, 0x800);
/// assert_eq!(pingpong.eval(0), 0x0);
/// assert_eq!(pingpong.eval(1), 0x800);
/// assert_eq!(pingpong.eval(2), 0x0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrExpr {
    /// Base byte address for the first execution.
    pub base: u64,
    /// Byte stride applied per execution index.
    pub stride: u64,
    /// Modulo applied to the execution index; zero disables the modulo.
    pub modulo: u32,
}

impl AddrExpr {
    /// An address that is the same on every execution.
    pub const fn fixed(base: u64) -> Self {
        AddrExpr {
            base,
            stride: 0,
            modulo: 0,
        }
    }

    /// An address that advances by `stride` bytes on every execution.
    pub const fn streaming(base: u64, stride: u64) -> Self {
        AddrExpr {
            base,
            stride,
            modulo: 0,
        }
    }

    /// An address that alternates between two buffers (`base`, `base +
    /// offset`) on successive executions — the classic double-buffering
    /// pattern of software-pipelined GEMM kernels.
    pub const fn double_buffered(base: u64, offset: u64) -> Self {
        AddrExpr {
            base,
            stride: offset,
            modulo: 2,
        }
    }

    /// An address cycling through `count` buffers spaced `stride` bytes apart.
    pub const fn rotating(base: u64, stride: u64, count: u32) -> Self {
        AddrExpr {
            base,
            stride,
            modulo: count,
        }
    }

    /// Evaluates the address for the `exec_count`-th execution of the
    /// instruction (starting at zero).
    pub fn eval(&self, exec_count: u64) -> u64 {
        let idx = if self.modulo == 0 {
            exec_count
        } else {
            exec_count % u64::from(self.modulo)
        };
        self.base + idx * self.stride
    }
}

impl From<u64> for AddrExpr {
    fn from(base: u64) -> Self {
        AddrExpr::fixed(base)
    }
}

impl StableHash for MemRegion {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            MemRegion::Global => 0,
            MemRegion::Shared => 1,
            MemRegion::Accumulator => 2,
        });
    }
}

impl StableHash for AddrExpr {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.base);
        h.write_u64(self.stride);
        h.write_u64(u64::from(self.modulo));
    }
}

impl StableHash for LaneAccess {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.addr.stable_hash(h);
        h.write_u64(u64::from(self.lane_stride));
        h.write_u64(u64::from(self.bytes_per_lane));
        h.write_u64(u64::from(self.active_lanes));
    }
}

/// A per-lane SIMT memory access pattern.
///
/// Each active lane `i` of the warp accesses
/// `addr.eval(e) + i * lane_stride` for `bytes_per_lane` bytes, where `e` is
/// the execution count of the static instruction.
///
/// # Example
///
/// ```
/// use virgo_isa::{AddrExpr, LaneAccess};
///
/// // 8 lanes each loading a consecutive 4-byte word: a fully coalescable
/// // 32-byte access.
/// let a = LaneAccess::contiguous_words(AddrExpr::fixed(0x100), 8);
/// assert_eq!(a.lane_addr(0, 0), 0x100);
/// assert_eq!(a.lane_addr(7, 0), 0x100 + 28);
/// assert_eq!(a.total_bytes(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneAccess {
    /// Address of lane 0 as a function of execution count.
    pub addr: AddrExpr,
    /// Byte distance between consecutive lanes.
    pub lane_stride: u32,
    /// Bytes accessed by each lane.
    pub bytes_per_lane: u32,
    /// Number of active lanes participating in the access.
    pub active_lanes: u32,
}

impl LaneAccess {
    /// A fully-coalescable access: `lanes` lanes each touching a consecutive
    /// 4-byte word.
    pub fn contiguous_words(addr: AddrExpr, lanes: u32) -> Self {
        LaneAccess {
            addr,
            lane_stride: 4,
            bytes_per_lane: 4,
            active_lanes: lanes,
        }
    }

    /// A strided access where consecutive lanes are `lane_stride` bytes apart.
    pub fn strided(addr: AddrExpr, lane_stride: u32, bytes_per_lane: u32, lanes: u32) -> Self {
        LaneAccess {
            addr,
            lane_stride,
            bytes_per_lane,
            active_lanes: lanes,
        }
    }

    /// Byte address accessed by `lane` on the `exec_count`-th execution.
    pub fn lane_addr(&self, lane: u32, exec_count: u64) -> u64 {
        self.addr.eval(exec_count) + u64::from(lane) * u64::from(self.lane_stride)
    }

    /// Total bytes moved by one execution of the access across all lanes.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.bytes_per_lane) * u64::from(self.active_lanes)
    }

    /// True when the lanes of this access form one contiguous, word-aligned
    /// region — the case the memory coalescer merges into a single wide
    /// request.
    pub fn is_coalescable(&self) -> bool {
        self.lane_stride == self.bytes_per_lane && self.bytes_per_lane.is_multiple_of(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_address_ignores_execution_count() {
        let a = AddrExpr::fixed(0x42);
        for e in 0..10 {
            assert_eq!(a.eval(e), 0x42);
        }
    }

    #[test]
    fn streaming_address_advances_linearly() {
        let a = AddrExpr::streaming(100, 10);
        assert_eq!(a.eval(0), 100);
        assert_eq!(a.eval(5), 150);
    }

    #[test]
    fn double_buffered_address_alternates() {
        let a = AddrExpr::double_buffered(0, 64);
        assert_eq!(a.eval(0), 0);
        assert_eq!(a.eval(1), 64);
        assert_eq!(a.eval(10), 0);
        assert_eq!(a.eval(11), 64);
    }

    #[test]
    fn rotating_address_cycles() {
        let a = AddrExpr::rotating(1000, 100, 4);
        assert_eq!(a.eval(0), 1000);
        assert_eq!(a.eval(3), 1300);
        assert_eq!(a.eval(4), 1000);
    }

    #[test]
    fn addr_expr_from_u64_is_fixed() {
        let a: AddrExpr = 0xdead_u64.into();
        assert_eq!(a, AddrExpr::fixed(0xdead));
    }

    #[test]
    fn lane_access_geometry() {
        let a = LaneAccess::contiguous_words(AddrExpr::fixed(0), 8);
        assert!(a.is_coalescable());
        assert_eq!(a.total_bytes(), 32);
        assert_eq!(a.lane_addr(3, 0), 12);
    }

    #[test]
    fn strided_lane_access_is_not_coalescable() {
        let a = LaneAccess::strided(AddrExpr::fixed(0), 128, 4, 8);
        assert!(!a.is_coalescable());
        assert_eq!(a.lane_addr(2, 0), 256);
        assert_eq!(a.total_bytes(), 32);
    }

    #[test]
    fn mem_region_names() {
        assert_eq!(MemRegion::Global.name(), "global");
        assert_eq!(MemRegion::Shared.name(), "shared");
        assert_eq!(MemRegion::Accumulator.name(), "accumulator");
    }

    #[test]
    fn remote_window_roundtrips() {
        for (cluster, offset) in [(0u32, 0u64), (1, 0x4000), (7, 0x1_FFFF), (65535, 0)] {
            let addr = remote_smem_addr(cluster, offset);
            assert_eq!(decode_remote_smem(addr), Some((cluster, offset)));
        }
    }

    #[test]
    fn local_addresses_do_not_decode_as_remote() {
        assert_eq!(decode_remote_smem(0), None);
        assert_eq!(decode_remote_smem(0x1_0000), None);
        // Even the 64 GiB per-cluster global partitions stay below the window.
        assert_eq!(decode_remote_smem(7 << 36), None);
    }

    #[test]
    fn remote_window_addresses_stride_within_the_offset_field() {
        // AddrExpr arithmetic (streaming / double buffering) applies to the
        // offset field without touching the window or cluster bits.
        let expr = AddrExpr::double_buffered(remote_smem_addr(2, 0x8000), 0x4000);
        assert_eq!(decode_remote_smem(expr.eval(0)), Some((2, 0x8000)));
        assert_eq!(decode_remote_smem(expr.eval(1)), Some((2, 0xC000)));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_remote_offset_is_rejected() {
        let _ = remote_smem_addr(0, 1 << 40);
    }
}
