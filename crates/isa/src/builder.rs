//! A small DSL for constructing loop-structured warp programs.

use crate::op::{OpId, WarpOp};
use crate::program::{Program, ProgramItem};

/// Builder for [`Program`]s.
///
/// The builder assigns dense [`OpId`]s in construction order, which warps use
/// to index their per-instruction execution counters.
///
/// # Example
///
/// ```
/// use virgo_isa::{ProgramBuilder, WarpOp};
///
/// let mut b = ProgramBuilder::new();
/// b.op(WarpOp::Alu { rf_reads: 2, rf_writes: 1 });
/// b.repeat(16, |b| {
///     b.op(WarpOp::WaitLoads);
///     b.op(WarpOp::Barrier { id: 0 });
/// });
/// let p = b.build();
/// assert_eq!(p.static_len(), 3);
/// assert_eq!(p.dynamic_len(), 1 + 16 * 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    /// Stack of partially-built item lists; the last entry is the innermost
    /// open scope.
    scopes: Vec<Vec<ProgramItem>>,
    next_id: u32,
}

impl ProgramBuilder {
    /// Creates a builder with an empty top-level scope.
    pub fn new() -> Self {
        ProgramBuilder {
            scopes: vec![Vec::new()],
            next_id: 0,
        }
    }

    /// Appends a single operation to the current scope.
    pub fn op(&mut self, op: WarpOp) -> &mut Self {
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.current_scope().push(ProgramItem::Op { id, op });
        self
    }

    /// Appends `n` copies of the same operation (as distinct static
    /// instructions, so each keeps its own execution counter).
    pub fn op_n(&mut self, n: u32, op: WarpOp) -> &mut Self {
        for _ in 0..n {
            self.op(op);
        }
        self
    }

    /// Appends a counted loop whose body is built by `f`.
    ///
    /// Zero-trip loops are allowed and are skipped at execution time, which
    /// lets kernel generators express edge cases (e.g. a K-loop with a single
    /// iteration having no "next tile" prologue) without special cases.
    pub fn repeat(&mut self, count: u64, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.scopes.push(Vec::new());
        f(self);
        let body = self.scopes.pop().expect("scope pushed above");
        self.current_scope().push(ProgramItem::Loop { count, body });
        self
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if called while a `repeat` scope is still being built (cannot
    /// happen through the public API, which closes scopes via closures).
    pub fn build(mut self) -> Program {
        assert_eq!(self.scopes.len(), 1, "unclosed loop scope");
        let items = self.scopes.pop().expect("top-level scope");
        Program::from_items(items, self.next_id)
    }

    /// Number of static operations added so far.
    pub fn static_len(&self) -> u32 {
        self.next_id
    }

    fn current_scope(&mut self) -> &mut Vec<ProgramItem> {
        self.scopes.last_mut().expect("at least the root scope")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Nop).op(WarpOp::Nop);
        b.repeat(2, |b| {
            b.op(WarpOp::Nop);
        });
        assert_eq!(b.static_len(), 3);
        let p = b.build();
        assert_eq!(p.static_len(), 3);
    }

    #[test]
    fn op_n_adds_distinct_static_ops() {
        let mut b = ProgramBuilder::new();
        b.op_n(5, WarpOp::Nop);
        let p = b.build();
        assert_eq!(p.static_len(), 5);
        assert_eq!(p.dynamic_len(), 5);
    }

    #[test]
    fn nested_repeat_builds_tree() {
        let mut b = ProgramBuilder::new();
        b.repeat(4, |b| {
            b.repeat(3, |b| {
                b.op(WarpOp::Nop);
            });
            b.op(WarpOp::WaitLoads);
        });
        let p = b.build();
        assert_eq!(p.static_len(), 2);
        assert_eq!(p.dynamic_len(), 4 * (3 + 1));
    }

    #[test]
    fn empty_builder_builds_empty_program() {
        let p = ProgramBuilder::new().build();
        assert_eq!(p.static_len(), 0);
        assert_eq!(p.dynamic_len(), 0);
    }
}
