//! Kernel descriptions: the set of warp programs launched onto a cluster.

use std::sync::Arc;

use crate::program::Program;

/// Numeric element type of matrix operands.
///
/// The paper evaluates FP16 configurations for the GEMM kernels and FP32
/// configurations for FlashAttention-3 (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 16-bit IEEE 754 half precision.
    Fp16,
    /// 32-bit IEEE 754 single precision.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            DataType::Fp16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Short lower-case name used in reports ("fp16" / "fp32").
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Fp16 => "fp16",
            DataType::Fp32 => "fp32",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata describing a kernel, used for utilization accounting and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Human-readable kernel name (e.g. `"gemm_virgo_256"`).
    pub name: String,
    /// Total multiply-accumulate operations the kernel performs. MAC
    /// utilization (Table 3) is `total_macs / (cycles × peak MACs/cycle)`.
    pub total_macs: u64,
    /// Operand element type.
    pub dtype: DataType,
}

impl KernelInfo {
    /// Creates kernel metadata.
    pub fn new(name: impl Into<String>, total_macs: u64, dtype: DataType) -> Self {
        KernelInfo {
            name: name.into(),
            total_macs,
            dtype,
        }
    }
}

/// One warp's program and its placement within the cluster.
#[derive(Debug, Clone)]
pub struct WarpAssignment {
    /// Index of the SIMT core within the cluster this warp runs on.
    pub core: u32,
    /// Hardware warp slot within the core.
    pub warp: u32,
    /// The program the warp executes.
    pub program: Arc<Program>,
}

impl WarpAssignment {
    /// Creates a warp assignment.
    pub fn new(core: u32, warp: u32, program: Arc<Program>) -> Self {
        WarpAssignment {
            core,
            warp,
            program,
        }
    }
}

/// A kernel: the collection of warp programs launched onto one cluster
/// (one thread block in the Virgo programming model, where the thread block
/// spans all cores of the cluster).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel metadata.
    pub info: KernelInfo,
    /// Per-warp programs and placements.
    pub warps: Vec<WarpAssignment>,
}

impl Kernel {
    /// Creates a kernel from metadata and warp assignments.
    pub fn new(info: KernelInfo, warps: Vec<WarpAssignment>) -> Self {
        Kernel { info, warps }
    }

    /// Total dynamic instructions across every warp of the kernel.
    pub fn dynamic_instructions(&self) -> u64 {
        self.warps.iter().map(|w| w.program.dynamic_len()).sum()
    }

    /// Number of distinct cores used by the kernel's warps.
    pub fn cores_used(&self) -> usize {
        let mut cores: Vec<u32> = self.warps.iter().map(|w| w.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }

    /// Warps assigned to a particular core.
    pub fn warps_on_core(&self, core: u32) -> impl Iterator<Item = &WarpAssignment> {
        self.warps.iter().filter(move |w| w.core == core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::WarpOp;

    fn tiny_program(ops: u32) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.op_n(ops, WarpOp::Nop);
        Arc::new(b.build())
    }

    #[test]
    fn data_type_sizes() {
        assert_eq!(DataType::Fp16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Fp32.to_string(), "fp32");
    }

    #[test]
    fn kernel_aggregates_dynamic_instructions() {
        let info = KernelInfo::new("test", 1000, DataType::Fp16);
        let kernel = Kernel::new(
            info,
            vec![
                WarpAssignment::new(0, 0, tiny_program(3)),
                WarpAssignment::new(0, 1, tiny_program(5)),
                WarpAssignment::new(1, 0, tiny_program(7)),
            ],
        );
        assert_eq!(kernel.dynamic_instructions(), 15);
        assert_eq!(kernel.cores_used(), 2);
        assert_eq!(kernel.warps_on_core(0).count(), 2);
        assert_eq!(kernel.warps_on_core(1).count(), 1);
        assert_eq!(kernel.warps_on_core(7).count(), 0);
    }

    #[test]
    fn kernel_info_holds_mac_count() {
        let info = KernelInfo::new("gemm", 256 * 256 * 256, DataType::Fp16);
        assert_eq!(info.total_macs, 16_777_216);
        assert_eq!(info.name, "gemm");
    }
}
