//! Kernel descriptions: the set of warp programs launched onto a cluster.

use std::collections::HashMap;
use std::sync::Arc;

use virgo_sim::{StableHash, StableHasher};

use crate::program::Program;

/// Numeric element type of matrix operands.
///
/// The paper evaluates FP16 configurations for the GEMM kernels and FP32
/// configurations for FlashAttention-3 (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 16-bit IEEE 754 half precision.
    Fp16,
    /// 32-bit IEEE 754 single precision.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            DataType::Fp16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Short lower-case name used in reports ("fp16" / "fp32").
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Fp16 => "fp16",
            DataType::Fp32 => "fp32",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata describing a kernel, used for utilization accounting and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Human-readable kernel name (e.g. `"gemm_virgo_256"`).
    pub name: String,
    /// Total multiply-accumulate operations the kernel performs. MAC
    /// utilization (Table 3) is `total_macs / (cycles × peak MACs/cycle)`.
    pub total_macs: u64,
    /// Operand element type.
    pub dtype: DataType,
}

impl KernelInfo {
    /// Creates kernel metadata.
    pub fn new(name: impl Into<String>, total_macs: u64, dtype: DataType) -> Self {
        KernelInfo {
            name: name.into(),
            total_macs,
            dtype,
        }
    }
}

/// One warp's program and its placement within the machine.
#[derive(Debug, Clone)]
pub struct WarpAssignment {
    /// Index of the cluster this warp's thread block runs on.
    pub cluster: u32,
    /// Index of the SIMT core within the cluster this warp runs on.
    pub core: u32,
    /// Hardware warp slot within the core.
    pub warp: u32,
    /// The program the warp executes.
    pub program: Arc<Program>,
}

impl WarpAssignment {
    /// Creates a warp assignment on cluster 0 (the single-cluster default).
    pub fn new(core: u32, warp: u32, program: Arc<Program>) -> Self {
        Self::on_cluster(0, core, warp, program)
    }

    /// Creates a warp assignment on an explicit cluster.
    pub fn on_cluster(cluster: u32, core: u32, warp: u32, program: Arc<Program>) -> Self {
        WarpAssignment {
            cluster,
            core,
            warp,
            program,
        }
    }

    /// Creates a warp assignment on the cluster that owns work item `item`
    /// under `partition` — the strategy-aware placement used by kernels whose
    /// per-item warps follow the grid's ownership map rather than a fixed
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics if `item` is outside the partition's grid.
    pub fn owning(
        partition: &GridPartition,
        item: u64,
        core: u32,
        warp: u32,
        program: Arc<Program>,
    ) -> Self {
        Self::on_cluster(partition.owner(item), core, warp, program)
    }
}

/// How a linear work grid's items are mapped onto clusters.
///
/// `Contiguous` is the historical split (each cluster takes one balanced run
/// of consecutive indices). The other two distribute *ownership* across the
/// clusters so that work arriving per item — most importantly the split-K
/// partial-tile reduction, whose traffic lands on the owner's DSM ingress
/// link — spreads over all N links instead of funneling into one cluster:
///
/// * `Interleaved` deals items round-robin: item `i` belongs to cluster
///   `i mod N`.
/// * `Rotated` also deals round-robin but rotates the starting cluster by
///   one each round (`(i mod N + i div N) mod N`), so consecutive rounds of
///   the grid start their bursts on different ingress links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionStrategy {
    /// Balanced contiguous runs (the historical default).
    #[default]
    Contiguous,
    /// Round-robin: item `i` is owned by cluster `i mod N`.
    Interleaved,
    /// Round-robin with a per-round rotation of the starting cluster:
    /// item `i` is owned by cluster `(i mod N + i div N) mod N`.
    Rotated,
}

impl PartitionStrategy {
    /// Short lower-case name used in kernel names and reports.
    pub const fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::Interleaved => "interleaved",
            PartitionStrategy::Rotated => "rotated",
        }
    }
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A partition of a linear work grid (e.g. GEMM output tiles or attention
/// row blocks) across the clusters of the machine.
///
/// Kernel generators use this to split a kernel's outermost tile loop. Under
/// the default [`PartitionStrategy::Contiguous`] each cluster receives a
/// contiguous run of tile indices, with the remainder spread one-per-cluster
/// over the leading clusters so the imbalance is at most one tile; the
/// interleaved and rotated strategies keep the same at-most-one-item balance
/// but deal ownership round-robin (see [`PartitionStrategy`]). A
/// single-cluster partition always covers the whole grid, which keeps
/// `clusters = 1` kernels identical to their pre-partition form.
///
/// # Example
///
/// ```
/// use virgo_isa::{GridPartition, PartitionStrategy};
///
/// let p = GridPartition::new(10, 4);
/// assert_eq!(p.count(0), 3); // clusters 0 and 1 take the remainder
/// assert_eq!(p.count(1), 3);
/// assert_eq!(p.count(2), 2);
/// assert_eq!(p.range(3), 8..10);
/// assert_eq!((0..4).map(|c| p.count(c)).sum::<u64>(), 10);
///
/// let r = GridPartition::with_strategy(10, 4, PartitionStrategy::Rotated);
/// assert_eq!(r.owner(0), 0);
/// assert_eq!(r.owner(4), 1); // the second round starts one cluster over
/// assert_eq!((0..4).map(|c| r.count(c)).sum::<u64>(), 10);
///
/// // A partition over an explicit cluster-id subset: logical slot k of the
/// // ownership map is cluster ids[k], so a builder running "inside" an
/// // allocation emits machine cluster ids without further translation.
/// let a = GridPartition::over(10, vec![2, 5]);
/// assert_eq!(a.owner(0), 2);
/// assert_eq!(a.range(5), 5..10);
/// assert_eq!(a.cluster_ids().collect::<Vec<_>>(), vec![2, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPartition {
    total: u64,
    clusters: u32,
    strategy: PartitionStrategy,
    /// Explicit machine cluster ids the grid is dealt over, or `None` for
    /// the historical `0..clusters` identity. When present the vector has
    /// exactly `clusters` distinct entries; logical ownership slot `k` maps
    /// to machine cluster `ids[k]`.
    ids: Option<Vec<u32>>,
}

impl GridPartition {
    /// Creates a contiguous partition of `total` work items over `clusters`
    /// clusters (the historical constructor — every pre-strategy call site
    /// keeps its exact ownership map).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(total: u64, clusters: u32) -> Self {
        Self::with_strategy(total, clusters, PartitionStrategy::Contiguous)
    }

    /// Creates a partition of `total` work items over `clusters` clusters
    /// under an explicit ownership strategy.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn with_strategy(total: u64, clusters: u32, strategy: PartitionStrategy) -> Self {
        assert!(clusters > 0, "cannot partition a grid over zero clusters");
        GridPartition {
            total,
            clusters,
            strategy,
            ids: None,
        }
    }

    /// Creates a contiguous partition of `total` work items over an explicit
    /// cluster-id subset — the allocation form used when a kernel runs on
    /// some (not necessarily leading) clusters of a larger machine.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains a duplicate id.
    pub fn over(total: u64, ids: Vec<u32>) -> Self {
        Self::over_with_strategy(total, ids, PartitionStrategy::Contiguous)
    }

    /// Creates a partition over an explicit cluster-id subset under an
    /// explicit ownership strategy. `GridPartition::over_with_strategy(t,
    /// (0..n).collect(), s)` has exactly the ownership map of
    /// `GridPartition::with_strategy(t, n, s)`.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains a duplicate id.
    pub fn over_with_strategy(total: u64, ids: Vec<u32>, strategy: PartitionStrategy) -> Self {
        assert!(
            !ids.is_empty(),
            "cannot partition a grid over zero clusters"
        );
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate cluster id in {ids:?}");
        let clusters = ids.len() as u32;
        // The identity subset is the plain partition: keeping it in the
        // `None` form preserves `Eq` with pre-subset partitions.
        let identity = ids.iter().enumerate().all(|(k, &id)| id == k as u32);
        GridPartition {
            total,
            clusters,
            strategy,
            ids: (!identity).then_some(ids),
        }
    }

    /// Total work items in the grid.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of clusters the grid is split over.
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// The ownership strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The machine cluster ids the grid is dealt over, in logical-slot order
    /// (`0..clusters` unless the partition was built [`GridPartition::over`]
    /// an explicit subset). Kernel builders iterate this instead of
    /// `0..clusters` so they emit correct placements inside an allocation.
    pub fn cluster_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.clusters).map(move |k| self.cluster_id(k))
    }

    /// True if `cluster` is one of the ids this grid is dealt over.
    pub fn contains(&self, cluster: u32) -> bool {
        match &self.ids {
            None => cluster < self.clusters,
            Some(ids) => ids.contains(&cluster),
        }
    }

    /// The machine cluster id occupying logical ownership slot `logical`.
    fn cluster_id(&self, logical: u32) -> u32 {
        match &self.ids {
            None => logical,
            Some(ids) => ids[logical as usize],
        }
    }

    /// The logical ownership slot of machine cluster `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not part of the partition.
    fn logical(&self, cluster: u32) -> u32 {
        match &self.ids {
            None => {
                assert!(cluster < self.clusters, "cluster {cluster} out of range");
                cluster
            }
            Some(ids) => ids
                .iter()
                .position(|&id| id == cluster)
                .unwrap_or_else(|| panic!("cluster {cluster} not in partition {ids:?}"))
                as u32,
        }
    }

    /// The cluster that owns work item `item` — a machine cluster id when
    /// the partition spans an explicit subset.
    ///
    /// # Panics
    ///
    /// Panics if `item` is outside the grid.
    pub fn owner(&self, item: u64) -> u32 {
        assert!(item < self.total, "item {item} outside the grid");
        let n = u64::from(self.clusters);
        let logical = match self.strategy {
            PartitionStrategy::Contiguous => {
                let base = self.total / n;
                let rem = self.total % n;
                if base == 0 {
                    // Fewer items than clusters: item i sits on cluster i.
                    item as u32
                } else if item < rem * (base + 1) {
                    (item / (base + 1)) as u32
                } else {
                    (rem + (item - rem * (base + 1)) / base) as u32
                }
            }
            PartitionStrategy::Interleaved => (item % n) as u32,
            PartitionStrategy::Rotated => ((item % n + item / n) % n) as u32,
        };
        self.cluster_id(logical)
    }

    /// The work items owned by `cluster`, in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not part of the partition.
    pub fn items(&self, cluster: u32) -> Vec<u64> {
        match self.strategy {
            PartitionStrategy::Contiguous => self.range(cluster).collect(),
            _ => {
                let _ = self.logical(cluster); // range-check
                (0..self.total)
                    .filter(|&item| self.owner(item) == cluster)
                    .collect()
            }
        }
    }

    /// The half-open range of work-item indices owned by `cluster`. Only the
    /// contiguous strategy owns ranges; use [`GridPartition::items`] for the
    /// interleaved/rotated maps.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not part of the partition, or if the strategy
    /// is not [`PartitionStrategy::Contiguous`].
    pub fn range(&self, cluster: u32) -> std::ops::Range<u64> {
        let logical = self.logical(cluster);
        assert!(
            self.strategy == PartitionStrategy::Contiguous,
            "only a contiguous partition owns ranges; use items() for {}",
            self.strategy
        );
        let base = self.total / u64::from(self.clusters);
        let rem = self.total % u64::from(self.clusters);
        let c = u64::from(logical);
        let start = base * c + c.min(rem);
        let len = base + u64::from(c < rem);
        start..start + len
    }

    /// Number of work items owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not part of the partition.
    pub fn count(&self, cluster: u32) -> u64 {
        match self.strategy {
            PartitionStrategy::Contiguous => {
                let r = self.range(cluster);
                r.end - r.start
            }
            _ => {
                let _ = self.logical(cluster); // range-check
                                               // Both round-robin strategies are permutations of the deal
                                               // order within each round, so the counts match the
                                               // contiguous split's balance exactly: every cluster gets
                                               // `total / N` items plus at most one from the last round.
                (0..self.total)
                    .filter(|&item| self.owner(item) == cluster)
                    .count() as u64
            }
        }
    }
}

/// A kernel: the collection of warp programs launched onto the machine's
/// clusters (one thread block per cluster in the Virgo programming model,
/// where each thread block spans all cores of its cluster).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel metadata.
    pub info: KernelInfo,
    /// Per-warp programs and placements.
    pub warps: Vec<WarpAssignment>,
}

impl Kernel {
    /// Creates a kernel from metadata and warp assignments.
    pub fn new(info: KernelInfo, warps: Vec<WarpAssignment>) -> Self {
        Kernel { info, warps }
    }

    /// Total dynamic instructions across every warp of the kernel.
    pub fn dynamic_instructions(&self) -> u64 {
        self.warps.iter().map(|w| w.program.dynamic_len()).sum()
    }

    /// Number of distinct (cluster, core) pairs used by the kernel's warps.
    pub fn cores_used(&self) -> usize {
        let mut cores: Vec<(u32, u32)> = self.warps.iter().map(|w| (w.cluster, w.core)).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }

    /// Number of distinct clusters used by the kernel's warps.
    pub fn clusters_used(&self) -> usize {
        let mut clusters: Vec<u32> = self.warps.iter().map(|w| w.cluster).collect();
        clusters.sort_unstable();
        clusters.dedup();
        clusters.len()
    }

    /// Highest cluster index any warp is assigned to, or `None` for an empty
    /// kernel.
    pub fn max_cluster(&self) -> Option<u32> {
        self.warps.iter().map(|w| w.cluster).max()
    }

    /// Warps assigned to a particular core (on any cluster).
    pub fn warps_on_core(&self, core: u32) -> impl Iterator<Item = &WarpAssignment> {
        self.warps.iter().filter(move |w| w.core == core)
    }

    /// Warps assigned to a particular cluster.
    pub fn warps_on_cluster(&self, cluster: u32) -> impl Iterator<Item = &WarpAssignment> {
        self.warps.iter().filter(move |w| w.cluster == cluster)
    }
}

impl StableHash for DataType {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            DataType::Fp16 => 0,
            DataType::Fp32 => 1,
        });
    }
}

impl StableHash for KernelInfo {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.total_macs);
        self.dtype.stable_hash(h);
    }
}

impl StableHash for Kernel {
    /// Hashes the kernel *structurally*: metadata plus every warp's placement
    /// and program contents. Warps typically share their `Arc<Program>`, so
    /// each distinct program is hashed once and its digest reused — the
    /// resulting kernel digest still depends only on program *contents*, not
    /// on sharing structure, so a kernel built with cloned (rather than
    /// shared) programs hashes identically.
    fn stable_hash(&self, h: &mut StableHasher) {
        self.info.stable_hash(h);
        let mut memo: HashMap<*const Program, (u64, u64)> = HashMap::new();
        h.write_u64(self.warps.len() as u64);
        for warp in &self.warps {
            h.write_u64(u64::from(warp.cluster));
            h.write_u64(u64::from(warp.core));
            h.write_u64(u64::from(warp.warp));
            let (hi, lo) = *memo.entry(Arc::as_ptr(&warp.program)).or_insert_with(|| {
                let mut ph = StableHasher::new();
                warp.program.stable_hash(&mut ph);
                ph.finish128()
            });
            h.write_u64(hi);
            h.write_u64(lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::WarpOp;

    fn tiny_program(ops: u32) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.op_n(ops, WarpOp::Nop);
        Arc::new(b.build())
    }

    #[test]
    fn data_type_sizes() {
        assert_eq!(DataType::Fp16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Fp32.to_string(), "fp32");
    }

    #[test]
    fn kernel_aggregates_dynamic_instructions() {
        let info = KernelInfo::new("test", 1000, DataType::Fp16);
        let kernel = Kernel::new(
            info,
            vec![
                WarpAssignment::new(0, 0, tiny_program(3)),
                WarpAssignment::new(0, 1, tiny_program(5)),
                WarpAssignment::new(1, 0, tiny_program(7)),
            ],
        );
        assert_eq!(kernel.dynamic_instructions(), 15);
        assert_eq!(kernel.cores_used(), 2);
        assert_eq!(kernel.warps_on_core(0).count(), 2);
        assert_eq!(kernel.warps_on_core(1).count(), 1);
        assert_eq!(kernel.warps_on_core(7).count(), 0);
    }

    #[test]
    fn cluster_placement_defaults_to_zero() {
        let w = WarpAssignment::new(3, 1, tiny_program(1));
        assert_eq!(w.cluster, 0);
        let w2 = WarpAssignment::on_cluster(2, 3, 1, tiny_program(1));
        assert_eq!(w2.cluster, 2);
    }

    #[test]
    fn kernel_reports_cluster_usage() {
        let kernel = Kernel::new(
            KernelInfo::new("multi", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(0, 0, 0, tiny_program(1)),
                WarpAssignment::on_cluster(1, 0, 0, tiny_program(1)),
                WarpAssignment::on_cluster(1, 1, 0, tiny_program(1)),
            ],
        );
        assert_eq!(kernel.clusters_used(), 2);
        assert_eq!(kernel.max_cluster(), Some(1));
        assert_eq!(kernel.cores_used(), 3);
        assert_eq!(kernel.warps_on_cluster(1).count(), 2);
        assert_eq!(kernel.warps_on_cluster(7).count(), 0);
    }

    #[test]
    fn grid_partition_covers_grid_without_overlap() {
        for (total, clusters) in [(0u64, 1u32), (1, 4), (10, 4), (64, 8), (7, 3)] {
            let p = GridPartition::new(total, clusters);
            let mut next = 0;
            for c in 0..clusters {
                let r = p.range(c);
                assert_eq!(r.start, next, "total={total} clusters={clusters} c={c}");
                next = r.end;
                // Balanced to within one item.
                assert!(p.count(c) >= total / u64::from(clusters));
                assert!(p.count(c) <= total.div_ceil(u64::from(clusters)));
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn single_cluster_partition_is_the_whole_grid() {
        let p = GridPartition::new(42, 1);
        assert_eq!(p.range(0), 0..42);
        assert_eq!(p.count(0), 42);
    }

    #[test]
    #[should_panic(expected = "zero clusters")]
    fn zero_cluster_partition_panics() {
        let _ = GridPartition::new(4, 0);
    }

    #[test]
    fn all_strategies_cover_grid_without_overlap() {
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Interleaved,
            PartitionStrategy::Rotated,
        ] {
            for (total, clusters) in [(0u64, 1u32), (1, 4), (10, 4), (64, 8), (7, 3), (16, 8)] {
                let p = GridPartition::with_strategy(total, clusters, strategy);
                let mut seen = vec![false; total as usize];
                let mut counted = 0;
                for c in 0..clusters {
                    let items = p.items(c);
                    assert_eq!(items.len() as u64, p.count(c));
                    counted += items.len() as u64;
                    for item in items {
                        assert_eq!(p.owner(item), c, "{strategy} {total}/{clusters}");
                        assert!(!seen[item as usize], "item {item} owned twice");
                        seen[item as usize] = true;
                    }
                    // Balanced to within one item under every strategy.
                    assert!(p.count(c) >= total / u64::from(clusters));
                    assert!(p.count(c) <= total.div_ceil(u64::from(clusters)));
                }
                assert_eq!(counted, total, "{strategy} {total}/{clusters}");
            }
        }
    }

    #[test]
    fn contiguous_owner_agrees_with_range() {
        for (total, clusters) in [(1u64, 4u32), (10, 4), (64, 8), (7, 3), (100, 7)] {
            let p = GridPartition::new(total, clusters);
            for c in 0..clusters {
                for item in p.range(c) {
                    assert_eq!(p.owner(item), c, "total={total} clusters={clusters}");
                }
            }
        }
    }

    #[test]
    fn interleaved_deals_round_robin() {
        let p = GridPartition::with_strategy(10, 4, PartitionStrategy::Interleaved);
        assert_eq!(p.items(0), vec![0, 4, 8]);
        assert_eq!(p.items(1), vec![1, 5, 9]);
        assert_eq!(p.items(2), vec![2, 6]);
        assert_eq!(p.items(3), vec![3, 7]);
    }

    #[test]
    fn rotated_shifts_start_each_round() {
        // Round r starts its deal at cluster r mod N, so the clusters that
        // absorb a ragged final round rotate instead of always being the
        // leading ones.
        let p = GridPartition::with_strategy(10, 4, PartitionStrategy::Rotated);
        assert_eq!(p.items(0), vec![0, 7]);
        assert_eq!(p.items(1), vec![1, 4]);
        assert_eq!(p.items(2), vec![2, 5, 8]);
        assert_eq!(p.items(3), vec![3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn range_panics_for_non_contiguous_strategies() {
        let p = GridPartition::with_strategy(8, 4, PartitionStrategy::Rotated);
        let _ = p.range(0);
    }

    #[test]
    fn owning_assignment_follows_the_ownership_map() {
        let p = GridPartition::with_strategy(8, 4, PartitionStrategy::Interleaved);
        let w = WarpAssignment::owning(&p, 6, 1, 3, tiny_program(2));
        assert_eq!(w.cluster, 2);
        assert_eq!(w.core, 1);
        assert_eq!(w.warp, 3);
    }

    #[test]
    fn subset_partition_maps_logical_slots_to_machine_ids() {
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Interleaved,
            PartitionStrategy::Rotated,
        ] {
            let ids = vec![5u32, 1, 6];
            let sub = GridPartition::over_with_strategy(10, ids.clone(), strategy);
            let full = GridPartition::with_strategy(10, 3, strategy);
            assert_eq!(sub.clusters(), 3);
            assert_eq!(sub.cluster_ids().collect::<Vec<_>>(), ids);
            for item in 0..10 {
                // The subset's ownership map is the plain map composed with
                // the logical-slot -> machine-id translation.
                assert_eq!(
                    sub.owner(item),
                    ids[full.owner(item) as usize],
                    "{strategy} item {item}"
                );
            }
            for (k, &id) in ids.iter().enumerate() {
                assert_eq!(sub.items(id), full.items(k as u32), "{strategy} id {id}");
                assert_eq!(sub.count(id), full.count(k as u32));
                assert!(sub.contains(id));
            }
            assert!(!sub.contains(0));
            assert!(!sub.contains(7));
        }
    }

    #[test]
    fn identity_subset_equals_plain_partition() {
        let sub = GridPartition::over(12, vec![0, 1, 2, 3]);
        let full = GridPartition::new(12, 4);
        assert_eq!(sub, full);
        assert_eq!(sub.range(2), full.range(2));
    }

    #[test]
    #[should_panic(expected = "not in partition")]
    fn subset_partition_rejects_foreign_cluster() {
        let p = GridPartition::over(8, vec![2, 3]);
        let _ = p.count(0);
    }

    #[test]
    #[should_panic(expected = "duplicate cluster id")]
    fn subset_partition_rejects_duplicates() {
        let _ = GridPartition::over(8, vec![2, 2]);
    }

    #[test]
    fn kernel_info_holds_mac_count() {
        let info = KernelInfo::new("gemm", 256 * 256 * 256, DataType::Fp16);
        assert_eq!(info.total_macs, 16_777_216);
        assert_eq!(info.name, "gemm");
    }
}
