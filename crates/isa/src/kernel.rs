//! Kernel descriptions: the set of warp programs launched onto a cluster.

use std::collections::HashMap;
use std::sync::Arc;

use virgo_sim::{StableHash, StableHasher};

use crate::program::Program;

/// Numeric element type of matrix operands.
///
/// The paper evaluates FP16 configurations for the GEMM kernels and FP32
/// configurations for FlashAttention-3 (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 16-bit IEEE 754 half precision.
    Fp16,
    /// 32-bit IEEE 754 single precision.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            DataType::Fp16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Short lower-case name used in reports ("fp16" / "fp32").
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Fp16 => "fp16",
            DataType::Fp32 => "fp32",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata describing a kernel, used for utilization accounting and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Human-readable kernel name (e.g. `"gemm_virgo_256"`).
    pub name: String,
    /// Total multiply-accumulate operations the kernel performs. MAC
    /// utilization (Table 3) is `total_macs / (cycles × peak MACs/cycle)`.
    pub total_macs: u64,
    /// Operand element type.
    pub dtype: DataType,
}

impl KernelInfo {
    /// Creates kernel metadata.
    pub fn new(name: impl Into<String>, total_macs: u64, dtype: DataType) -> Self {
        KernelInfo {
            name: name.into(),
            total_macs,
            dtype,
        }
    }
}

/// One warp's program and its placement within the machine.
#[derive(Debug, Clone)]
pub struct WarpAssignment {
    /// Index of the cluster this warp's thread block runs on.
    pub cluster: u32,
    /// Index of the SIMT core within the cluster this warp runs on.
    pub core: u32,
    /// Hardware warp slot within the core.
    pub warp: u32,
    /// The program the warp executes.
    pub program: Arc<Program>,
}

impl WarpAssignment {
    /// Creates a warp assignment on cluster 0 (the single-cluster default).
    pub fn new(core: u32, warp: u32, program: Arc<Program>) -> Self {
        Self::on_cluster(0, core, warp, program)
    }

    /// Creates a warp assignment on an explicit cluster.
    pub fn on_cluster(cluster: u32, core: u32, warp: u32, program: Arc<Program>) -> Self {
        WarpAssignment {
            cluster,
            core,
            warp,
            program,
        }
    }
}

/// A contiguous partition of a linear work grid (e.g. GEMM output tiles or
/// attention row blocks) across the clusters of the machine.
///
/// Kernel generators use this to split a kernel's outermost tile loop: each
/// cluster receives a contiguous run of tile indices, with the remainder
/// spread one-per-cluster over the leading clusters so the imbalance is at
/// most one tile. A single-cluster partition always covers the whole grid,
/// which keeps `clusters = 1` kernels identical to their pre-partition form.
///
/// # Example
///
/// ```
/// use virgo_isa::GridPartition;
///
/// let p = GridPartition::new(10, 4);
/// assert_eq!(p.count(0), 3); // clusters 0 and 1 take the remainder
/// assert_eq!(p.count(1), 3);
/// assert_eq!(p.count(2), 2);
/// assert_eq!(p.range(3), 8..10);
/// assert_eq!((0..4).map(|c| p.count(c)).sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPartition {
    total: u64,
    clusters: u32,
}

impl GridPartition {
    /// Creates a partition of `total` work items over `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(total: u64, clusters: u32) -> Self {
        assert!(clusters > 0, "cannot partition a grid over zero clusters");
        GridPartition { total, clusters }
    }

    /// Total work items in the grid.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of clusters the grid is split over.
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// The half-open range of work-item indices owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn range(&self, cluster: u32) -> std::ops::Range<u64> {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        let base = self.total / u64::from(self.clusters);
        let rem = self.total % u64::from(self.clusters);
        let c = u64::from(cluster);
        let start = base * c + c.min(rem);
        let len = base + u64::from(c < rem);
        start..start + len
    }

    /// Number of work items owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn count(&self, cluster: u32) -> u64 {
        let r = self.range(cluster);
        r.end - r.start
    }
}

/// A kernel: the collection of warp programs launched onto the machine's
/// clusters (one thread block per cluster in the Virgo programming model,
/// where each thread block spans all cores of its cluster).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel metadata.
    pub info: KernelInfo,
    /// Per-warp programs and placements.
    pub warps: Vec<WarpAssignment>,
}

impl Kernel {
    /// Creates a kernel from metadata and warp assignments.
    pub fn new(info: KernelInfo, warps: Vec<WarpAssignment>) -> Self {
        Kernel { info, warps }
    }

    /// Total dynamic instructions across every warp of the kernel.
    pub fn dynamic_instructions(&self) -> u64 {
        self.warps.iter().map(|w| w.program.dynamic_len()).sum()
    }

    /// Number of distinct (cluster, core) pairs used by the kernel's warps.
    pub fn cores_used(&self) -> usize {
        let mut cores: Vec<(u32, u32)> = self.warps.iter().map(|w| (w.cluster, w.core)).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }

    /// Number of distinct clusters used by the kernel's warps.
    pub fn clusters_used(&self) -> usize {
        let mut clusters: Vec<u32> = self.warps.iter().map(|w| w.cluster).collect();
        clusters.sort_unstable();
        clusters.dedup();
        clusters.len()
    }

    /// Highest cluster index any warp is assigned to, or `None` for an empty
    /// kernel.
    pub fn max_cluster(&self) -> Option<u32> {
        self.warps.iter().map(|w| w.cluster).max()
    }

    /// Warps assigned to a particular core (on any cluster).
    pub fn warps_on_core(&self, core: u32) -> impl Iterator<Item = &WarpAssignment> {
        self.warps.iter().filter(move |w| w.core == core)
    }

    /// Warps assigned to a particular cluster.
    pub fn warps_on_cluster(&self, cluster: u32) -> impl Iterator<Item = &WarpAssignment> {
        self.warps.iter().filter(move |w| w.cluster == cluster)
    }
}

impl StableHash for DataType {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            DataType::Fp16 => 0,
            DataType::Fp32 => 1,
        });
    }
}

impl StableHash for KernelInfo {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.total_macs);
        self.dtype.stable_hash(h);
    }
}

impl StableHash for Kernel {
    /// Hashes the kernel *structurally*: metadata plus every warp's placement
    /// and program contents. Warps typically share their `Arc<Program>`, so
    /// each distinct program is hashed once and its digest reused — the
    /// resulting kernel digest still depends only on program *contents*, not
    /// on sharing structure, so a kernel built with cloned (rather than
    /// shared) programs hashes identically.
    fn stable_hash(&self, h: &mut StableHasher) {
        self.info.stable_hash(h);
        let mut memo: HashMap<*const Program, (u64, u64)> = HashMap::new();
        h.write_u64(self.warps.len() as u64);
        for warp in &self.warps {
            h.write_u64(u64::from(warp.cluster));
            h.write_u64(u64::from(warp.core));
            h.write_u64(u64::from(warp.warp));
            let (hi, lo) = *memo.entry(Arc::as_ptr(&warp.program)).or_insert_with(|| {
                let mut ph = StableHasher::new();
                warp.program.stable_hash(&mut ph);
                ph.finish128()
            });
            h.write_u64(hi);
            h.write_u64(lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::WarpOp;

    fn tiny_program(ops: u32) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.op_n(ops, WarpOp::Nop);
        Arc::new(b.build())
    }

    #[test]
    fn data_type_sizes() {
        assert_eq!(DataType::Fp16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Fp32.to_string(), "fp32");
    }

    #[test]
    fn kernel_aggregates_dynamic_instructions() {
        let info = KernelInfo::new("test", 1000, DataType::Fp16);
        let kernel = Kernel::new(
            info,
            vec![
                WarpAssignment::new(0, 0, tiny_program(3)),
                WarpAssignment::new(0, 1, tiny_program(5)),
                WarpAssignment::new(1, 0, tiny_program(7)),
            ],
        );
        assert_eq!(kernel.dynamic_instructions(), 15);
        assert_eq!(kernel.cores_used(), 2);
        assert_eq!(kernel.warps_on_core(0).count(), 2);
        assert_eq!(kernel.warps_on_core(1).count(), 1);
        assert_eq!(kernel.warps_on_core(7).count(), 0);
    }

    #[test]
    fn cluster_placement_defaults_to_zero() {
        let w = WarpAssignment::new(3, 1, tiny_program(1));
        assert_eq!(w.cluster, 0);
        let w2 = WarpAssignment::on_cluster(2, 3, 1, tiny_program(1));
        assert_eq!(w2.cluster, 2);
    }

    #[test]
    fn kernel_reports_cluster_usage() {
        let kernel = Kernel::new(
            KernelInfo::new("multi", 0, DataType::Fp16),
            vec![
                WarpAssignment::on_cluster(0, 0, 0, tiny_program(1)),
                WarpAssignment::on_cluster(1, 0, 0, tiny_program(1)),
                WarpAssignment::on_cluster(1, 1, 0, tiny_program(1)),
            ],
        );
        assert_eq!(kernel.clusters_used(), 2);
        assert_eq!(kernel.max_cluster(), Some(1));
        assert_eq!(kernel.cores_used(), 3);
        assert_eq!(kernel.warps_on_cluster(1).count(), 2);
        assert_eq!(kernel.warps_on_cluster(7).count(), 0);
    }

    #[test]
    fn grid_partition_covers_grid_without_overlap() {
        for (total, clusters) in [(0u64, 1u32), (1, 4), (10, 4), (64, 8), (7, 3)] {
            let p = GridPartition::new(total, clusters);
            let mut next = 0;
            for c in 0..clusters {
                let r = p.range(c);
                assert_eq!(r.start, next, "total={total} clusters={clusters} c={c}");
                next = r.end;
                // Balanced to within one item.
                assert!(p.count(c) >= total / u64::from(clusters));
                assert!(p.count(c) <= total.div_ceil(u64::from(clusters)));
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn single_cluster_partition_is_the_whole_grid() {
        let p = GridPartition::new(42, 1);
        assert_eq!(p.range(0), 0..42);
        assert_eq!(p.count(0), 42);
    }

    #[test]
    #[should_panic(expected = "zero clusters")]
    fn zero_cluster_partition_panics() {
        let _ = GridPartition::new(4, 0);
    }

    #[test]
    fn kernel_info_holds_mac_count() {
        let info = KernelInfo::new("gemm", 256 * 256 * 256, DataType::Fp16);
        assert_eq!(info.total_macs, 16_777_216);
        assert_eq!(info.name, "gemm");
    }
}
