//! Warp-level instruction set and kernel representation for the Virgo GPU
//! model.
//!
//! The RTL artifact of the Virgo paper compiles C++ kernels with the Vortex
//! LLVM toolchain into RISC-V binaries. For the cycle-level model in this
//! workspace the binary encoding is irrelevant — what determines utilization,
//! power and energy is the *dynamic instruction mix* each warp presents to the
//! core pipeline. This crate therefore defines:
//!
//! * [`WarpOp`] — the warp-level operations the SIMT core issues (ALU/FPU
//!   work, global/shared loads and stores, Volta-style `HMMA` steps,
//!   Hopper-style asynchronous `wgmma` operations, MMIO commands to the
//!   cluster DMA and the disaggregated matrix unit, barriers and fences),
//! * [`Program`] — a loop-structured per-warp program, so that even a
//!   1024³ GEMM (tens of millions of dynamic instructions) is represented in
//!   a few kilobytes,
//! * [`ProgramBuilder`] — a small DSL used by the kernel generators in
//!   `virgo-kernels`,
//! * [`Kernel`] — the set of warp programs making up a thread block, plus the
//!   metadata (expected MAC count) needed to compute utilization.
//!
//! # Example
//!
//! ```
//! use virgo_isa::{ProgramBuilder, WarpOp};
//!
//! let mut b = ProgramBuilder::new();
//! b.op(WarpOp::Alu { rf_reads: 2, rf_writes: 1 });
//! b.repeat(4, |b| {
//!     b.op(WarpOp::Nop);
//! });
//! let program = b.build();
//! assert_eq!(program.dynamic_len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod builder;
pub mod kernel;
pub mod mmio;
pub mod op;
pub mod program;

pub use addr::{
    decode_remote_smem, remote_smem_addr, AddrExpr, LaneAccess, MemRegion, REMOTE_SMEM_WINDOW,
};
pub use builder::ProgramBuilder;
pub use kernel::{DataType, GridPartition, Kernel, KernelInfo, PartitionStrategy, WarpAssignment};
pub use mmio::{DeviceId, DmaCopyCmd, MatrixComputeCmd, MemLoc, MmioCommand, WgmmaOp};
pub use op::{OpId, WarpOp};
pub use program::{Program, ProgramCursor, ProgramItem};
