//! Memory-mapped IO commands for cluster-level devices.
//!
//! Section 3.1 of the paper replaces Gemmini's RoCC interface with
//! memory-mapped control registers reachable over the cluster-local
//! interconnect. The SIMT core programs both the disaggregated matrix unit and
//! the cluster DMA engine by issuing ordinary stores to this MMIO region; the
//! types below are the decoded form of those stores.

use virgo_sim::{StableHash, StableHasher};

use crate::addr::{AddrExpr, MemRegion};
use crate::kernel::DataType;

/// Identifies a cluster-level device addressable through MMIO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceId {
    /// A cluster-level matrix unit. Index 0 is the default unit; the
    /// heterogeneous configuration of Section 6.3 instantiates a second one.
    MatrixUnit(u8),
    /// A cluster DMA engine.
    Dma(u8),
}

impl DeviceId {
    /// The default (index 0) matrix unit.
    pub const MATRIX0: DeviceId = DeviceId::MatrixUnit(0);
    /// The default (index 0) DMA engine.
    pub const DMA0: DeviceId = DeviceId::Dma(0);
}

/// Source or destination of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLoc {
    /// Which memory the transfer endpoint lives in.
    pub region: MemRegion,
    /// Byte address of the endpoint, as a function of the issuing
    /// instruction's execution count.
    pub addr: AddrExpr,
}

impl MemLoc {
    /// Convenience constructor.
    pub fn new(region: MemRegion, addr: impl Into<AddrExpr>) -> Self {
        MemLoc {
            region,
            addr: addr.into(),
        }
    }

    /// A global-memory endpoint.
    pub fn global(addr: impl Into<AddrExpr>) -> Self {
        Self::new(MemRegion::Global, addr)
    }

    /// A shared-memory endpoint.
    pub fn shared(addr: impl Into<AddrExpr>) -> Self {
        Self::new(MemRegion::Shared, addr)
    }

    /// An accumulator-memory endpoint.
    pub fn accumulator(addr: impl Into<AddrExpr>) -> Self {
        Self::new(MemRegion::Accumulator, addr)
    }

    /// A *peer* cluster's shared-memory endpoint, encoded through the remote
    /// DSM address window: the address expression's base is relocated into
    /// `cluster`'s window while its stride/modulo arithmetic keeps operating
    /// on the byte offset inside that scratchpad.
    pub fn remote_shared(cluster: u32, addr: impl Into<AddrExpr>) -> Self {
        let mut expr = addr.into();
        expr.base = crate::addr::remote_smem_addr(cluster, expr.base);
        Self::new(MemRegion::Shared, expr)
    }

    /// The peer cluster this endpoint targets through the remote DSM window,
    /// or `None` for a local endpoint.
    pub fn remote_cluster(&self) -> Option<u32> {
        match self.region {
            MemRegion::Shared => crate::addr::decode_remote_smem(self.addr.base).map(|(c, _)| c),
            _ => None,
        }
    }
}

/// An asynchronous DMA copy (`virgo_dma_load` / `virgo_dma_store`), moving a
/// contiguous tile between global memory, shared memory and the matrix unit's
/// accumulator memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaCopyCmd {
    /// Where the data is read from.
    pub src: MemLoc,
    /// Where the data is written to.
    pub dst: MemLoc,
    /// Number of bytes moved.
    pub bytes: u64,
}

impl DmaCopyCmd {
    /// Creates a copy command.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(src: MemLoc, dst: MemLoc, bytes: u64) -> Self {
        assert!(bytes > 0, "DMA transfers must move at least one byte");
        DmaCopyCmd { src, dst, bytes }
    }
}

/// An asynchronous matrix multiply-accumulate on the disaggregated matrix
/// unit (`virgo_compute`).
///
/// The unit's coarse-grain FSM iterates the full `m × n × k` problem,
/// streaming operand tiles from shared memory and accumulating into the
/// private accumulator memory (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixComputeCmd {
    /// Shared-memory address of the A operand tile.
    pub a: AddrExpr,
    /// Shared-memory address of the B operand tile.
    pub b: AddrExpr,
    /// Accumulator-memory byte address the result tile accumulates into.
    pub acc_addr: u64,
    /// Rows of the output tile.
    pub m: u32,
    /// Columns of the output tile.
    pub n: u32,
    /// Reduction dimension.
    pub k: u32,
    /// When true the result is added onto the existing accumulator contents;
    /// when false the accumulator is overwritten.
    pub accumulate: bool,
    /// Element type of the operands.
    pub dtype: DataType,
}

impl MatrixComputeCmd {
    /// Total multiply-accumulate operations performed by this command.
    pub fn mac_ops(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n) * u64::from(self.k)
    }

    /// Bytes of operand data read from shared memory (A and B tiles).
    pub fn operand_bytes(&self) -> u64 {
        let elem = self.dtype.bytes() as u64;
        (u64::from(self.m) * u64::from(self.k) + u64::from(self.k) * u64::from(self.n)) * elem
    }

    /// Bytes of accumulator data produced (the output tile, 4-byte
    /// accumulation).
    pub fn accumulator_bytes(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n) * 4
    }
}

/// A Hopper-style `wgmma` asynchronous matrix operation executed by a
/// core-coupled, operand-decoupled tensor unit.
///
/// Operands are fetched from shared memory by the unit's access frontend;
/// the accumulator tile stays in the warp's register file (Section 5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WgmmaOp {
    /// Shared-memory address of the A operand tile.
    pub a: AddrExpr,
    /// Shared-memory address of the B operand tile.
    pub b: AddrExpr,
    /// Rows of the output tile.
    pub m: u32,
    /// Columns of the output tile.
    pub n: u32,
    /// Reduction dimension.
    pub k: u32,
    /// Element type of the operands.
    pub dtype: DataType,
}

impl WgmmaOp {
    /// Total multiply-accumulate operations in this operation.
    pub fn mac_ops(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n) * u64::from(self.k)
    }

    /// Bytes of operand data the access frontend reads from shared memory.
    pub fn operand_bytes(&self) -> u64 {
        let elem = self.dtype.bytes() as u64;
        (u64::from(self.m) * u64::from(self.k) + u64::from(self.k) * u64::from(self.n)) * elem
    }

    /// Number of 32-bit accumulator registers read and written back per warp
    /// (the m×n FP32 accumulator tile lives in the register file).
    pub fn accumulator_words(&self) -> u64 {
        u64::from(self.m) * u64::from(self.n)
    }
}

/// A decoded MMIO command written to a cluster device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmioCommand {
    /// Program the DMA engine with an asynchronous copy.
    DmaCopy(DmaCopyCmd),
    /// Program the DMA engine with an asynchronous *inter-cluster* copy
    /// (`virgo_dma_remote`): at least one endpoint is a peer cluster's
    /// scratchpad, addressed through the remote DSM window
    /// ([`MemLoc::remote_shared`]); the remote leg traverses the DSM fabric
    /// instead of the L2/DRAM back-end.
    DmaRemote(DmaCopyCmd),
    /// Kick off an asynchronous matrix multiply on the disaggregated unit.
    MatrixCompute(MatrixComputeCmd),
}

impl MmioCommand {
    /// Returns the matrix compute command if this is one.
    pub fn as_matrix_compute(&self) -> Option<&MatrixComputeCmd> {
        match self {
            MmioCommand::MatrixCompute(cmd) => Some(cmd),
            MmioCommand::DmaCopy(_) | MmioCommand::DmaRemote(_) => None,
        }
    }

    /// Returns the DMA copy command if this is one (local or remote).
    pub fn as_dma_copy(&self) -> Option<&DmaCopyCmd> {
        match self {
            MmioCommand::DmaCopy(cmd) | MmioCommand::DmaRemote(cmd) => Some(cmd),
            MmioCommand::MatrixCompute(_) => None,
        }
    }
}

impl StableHash for DeviceId {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            DeviceId::MatrixUnit(i) => {
                h.write_u64(0);
                h.write_u64(u64::from(*i));
            }
            DeviceId::Dma(i) => {
                h.write_u64(1);
                h.write_u64(u64::from(*i));
            }
        }
    }
}

impl StableHash for MemLoc {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.region.stable_hash(h);
        self.addr.stable_hash(h);
    }
}

impl StableHash for DmaCopyCmd {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.src.stable_hash(h);
        self.dst.stable_hash(h);
        h.write_u64(self.bytes);
    }
}

impl StableHash for MatrixComputeCmd {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.a.stable_hash(h);
        self.b.stable_hash(h);
        h.write_u64(self.acc_addr);
        h.write_u64(u64::from(self.m));
        h.write_u64(u64::from(self.n));
        h.write_u64(u64::from(self.k));
        self.accumulate.stable_hash(h);
        self.dtype.stable_hash(h);
    }
}

impl StableHash for WgmmaOp {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.a.stable_hash(h);
        self.b.stable_hash(h);
        h.write_u64(u64::from(self.m));
        h.write_u64(u64::from(self.n));
        h.write_u64(u64::from(self.k));
        self.dtype.stable_hash(h);
    }
}

impl StableHash for MmioCommand {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            MmioCommand::DmaCopy(cmd) => {
                h.write_u64(0);
                cmd.stable_hash(h);
            }
            MmioCommand::MatrixCompute(cmd) => {
                h.write_u64(1);
                cmd.stable_hash(h);
            }
            MmioCommand::DmaRemote(cmd) => {
                h.write_u64(2);
                cmd.stable_hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_compute_counts() {
        let cmd = MatrixComputeCmd {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0x8000),
            acc_addr: 0,
            m: 128,
            n: 64,
            k: 128,
            accumulate: true,
            dtype: DataType::Fp16,
        };
        assert_eq!(cmd.mac_ops(), 128 * 64 * 128);
        assert_eq!(cmd.operand_bytes(), (128 * 128 + 128 * 64) * 2);
        assert_eq!(cmd.accumulator_bytes(), 128 * 64 * 4);
    }

    #[test]
    fn wgmma_counts() {
        let op = WgmmaOp {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0x100),
            m: 16,
            n: 16,
            k: 32,
            dtype: DataType::Fp16,
        };
        assert_eq!(op.mac_ops(), 16 * 16 * 32);
        assert_eq!(op.operand_bytes(), (16 * 32 + 32 * 16) * 2);
        assert_eq!(op.accumulator_words(), 256);
    }

    #[test]
    fn dma_copy_rejects_zero_bytes() {
        let src = MemLoc::global(0u64);
        let dst = MemLoc::shared(0u64);
        let cmd = DmaCopyCmd::new(src, dst, 128);
        assert_eq!(cmd.bytes, 128);
        let result = std::panic::catch_unwind(|| DmaCopyCmd::new(src, dst, 0));
        assert!(result.is_err());
    }

    #[test]
    fn mmio_command_accessors() {
        let dma = MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(0u64),
            MemLoc::shared(0u64),
            64,
        ));
        assert!(dma.as_dma_copy().is_some());
        assert!(dma.as_matrix_compute().is_none());

        let mm = MmioCommand::MatrixCompute(MatrixComputeCmd {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0),
            acc_addr: 0,
            m: 8,
            n: 8,
            k: 8,
            accumulate: false,
            dtype: DataType::Fp32,
        });
        assert!(mm.as_matrix_compute().is_some());
        assert!(mm.as_dma_copy().is_none());
    }

    #[test]
    fn memloc_constructors_pick_regions() {
        assert_eq!(MemLoc::global(1u64).region, MemRegion::Global);
        assert_eq!(MemLoc::shared(1u64).region, MemRegion::Shared);
        assert_eq!(MemLoc::accumulator(1u64).region, MemRegion::Accumulator);
    }

    #[test]
    fn remote_shared_endpoints_carry_the_peer_cluster() {
        let loc = MemLoc::remote_shared(5, AddrExpr::double_buffered(0x8000, 0x4000));
        assert_eq!(loc.region, MemRegion::Shared);
        assert_eq!(loc.remote_cluster(), Some(5));
        // Local endpoints (in any region) decode as local.
        assert_eq!(MemLoc::shared(0x8000u64).remote_cluster(), None);
        assert_eq!(MemLoc::global(0x8000u64).remote_cluster(), None);
    }

    #[test]
    fn dma_remote_is_a_dma_copy_with_distinct_identity() {
        let cmd = DmaCopyCmd::new(
            MemLoc::accumulator(0u64),
            MemLoc::remote_shared(1, 0x4000u64),
            2048,
        );
        let local = MmioCommand::DmaCopy(cmd);
        let remote = MmioCommand::DmaRemote(cmd);
        assert_eq!(remote.as_dma_copy(), Some(&cmd));
        assert!(remote.as_matrix_compute().is_none());
        // The two command kinds hash to different stable digests.
        let digest = |c: &MmioCommand| {
            let mut h = virgo_sim::StableHasher::new();
            c.stable_hash(&mut h);
            h.finish128()
        };
        assert_ne!(digest(&local), digest(&remote));
    }
}
