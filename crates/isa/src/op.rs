//! The warp-level operation set issued by the SIMT core.

use virgo_sim::{StableHash, StableHasher};

use crate::addr::LaneAccess;
use crate::mmio::{DeviceId, MmioCommand, WgmmaOp};

/// Index of a static instruction within its [`Program`](crate::Program).
///
/// Warps use this to keep per-instruction execution counters (needed to
/// evaluate [`AddrExpr`](crate::AddrExpr)s) without hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A warp-level operation.
///
/// Register-file traffic is described by *counts* of 32-bit register reads and
/// writes rather than concrete register names: the timing and energy models
/// only depend on how many operand-collector and writeback accesses an
/// instruction generates, not on which architectural registers it names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarpOp {
    /// An integer ALU operation (address generation, loop bookkeeping,
    /// predicate manipulation).
    Alu {
        /// 32-bit register reads per lane.
        rf_reads: u8,
        /// 32-bit register writes per lane.
        rf_writes: u8,
    },
    /// A floating-point SIMD operation executed on the per-lane FPU.
    Fpu {
        /// 32-bit register reads per lane.
        rf_reads: u8,
        /// 32-bit register writes per lane.
        rf_writes: u8,
        /// Floating-point operations per lane (an FMA counts as two).
        flops_per_lane: u8,
    },
    /// A per-lane load from global memory (through coalescer, L1, L2, DRAM).
    LoadGlobal {
        /// The per-lane access pattern.
        access: LaneAccess,
    },
    /// A per-lane store to global memory.
    StoreGlobal {
        /// The per-lane access pattern.
        access: LaneAccess,
    },
    /// A per-lane load from the cluster shared memory.
    LoadShared {
        /// The per-lane access pattern.
        access: LaneAccess,
    },
    /// A per-lane store to the cluster shared memory.
    StoreShared {
        /// The per-lane access pattern.
        access: LaneAccess,
    },
    /// A compiler-inserted dependence barrier: the warp stalls until all of
    /// its outstanding loads have written back (models SASS dependence
    /// barriers / `s_waitcnt`-style synchronization).
    WaitLoads,
    /// One Volta-style synchronous `HMMA` step executed on the core-coupled
    /// tensor unit. Operands and accumulators move through the register file.
    HmmaStep {
        /// Multiply-accumulate operations performed by this step.
        macs: u32,
        /// 32-bit register reads per lane (operand fragments + accumulator).
        rf_reads: u8,
        /// 32-bit register writes per lane (accumulator writeback).
        rf_writes: u8,
    },
    /// Initiate a Hopper-style asynchronous `wgmma` operation on the
    /// operand-decoupled tensor unit. The issuing warp does not stall.
    WgmmaInit(WgmmaOp),
    /// Stall the warp until the core's operand-decoupled tensor unit has
    /// drained all outstanding `wgmma` operations (models `wgmma.wait_group`).
    WgmmaWait,
    /// A non-blocking MMIO store that programs a cluster-level device
    /// (disaggregated matrix unit or DMA engine).
    MmioWrite {
        /// Target device.
        device: DeviceId,
        /// Decoded command.
        cmd: MmioCommand,
    },
    /// Spin-poll a device's busy register until the number of asynchronous
    /// cluster operations still outstanding for this thread block is at most
    /// `max_outstanding` (models `virgo_fence(n)`).
    FenceAsync {
        /// Maximum number of yet-incomplete asynchronous operations allowed
        /// when the fence releases.
        max_outstanding: u32,
    },
    /// Cluster-wide barrier across all participating warps (models the
    /// synchronizer module driven by the `vx_bar` instruction).
    Barrier {
        /// Barrier identifier, allowing multiple concurrent barriers.
        id: u8,
    },
    /// An operation with no architectural effect, occupying one issue slot.
    Nop,
}

impl WarpOp {
    /// True for operations that may stall the issuing warp until some other
    /// agent makes progress (loads returning, matrix units draining, other
    /// warps reaching a barrier).
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            WarpOp::WaitLoads
                | WarpOp::WgmmaWait
                | WarpOp::FenceAsync { .. }
                | WarpOp::Barrier { .. }
        )
    }

    /// True for operations that access a memory space through the LSU.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            WarpOp::LoadGlobal { .. }
                | WarpOp::StoreGlobal { .. }
                | WarpOp::LoadShared { .. }
                | WarpOp::StoreShared { .. }
        )
    }

    /// True for matrix-unit operations (of any of the integration styles).
    pub fn is_matrix(&self) -> bool {
        matches!(
            self,
            WarpOp::HmmaStep { .. } | WarpOp::WgmmaInit(_) | WarpOp::MmioWrite { .. }
        )
    }

    /// Number of 32-bit register file reads per lane performed when issuing
    /// this operation.
    pub fn rf_reads(&self) -> u32 {
        match self {
            WarpOp::Alu { rf_reads, .. } | WarpOp::Fpu { rf_reads, .. } => u32::from(*rf_reads),
            WarpOp::HmmaStep { rf_reads, .. } => u32::from(*rf_reads),
            // Loads read one address register; stores read address + data.
            WarpOp::LoadGlobal { .. } | WarpOp::LoadShared { .. } => 1,
            WarpOp::StoreGlobal { .. } | WarpOp::StoreShared { .. } => 2,
            // MMIO writes carry a handful of configuration operands, but they
            // are issued once per (large) tile so we charge a single read.
            WarpOp::MmioWrite { .. } => 1,
            WarpOp::WgmmaInit(_) => 1,
            WarpOp::FenceAsync { .. } => 1,
            WarpOp::WaitLoads | WarpOp::WgmmaWait | WarpOp::Barrier { .. } | WarpOp::Nop => 0,
        }
    }

    /// Number of 32-bit register file writes per lane performed when this
    /// operation writes back.
    pub fn rf_writes(&self) -> u32 {
        match self {
            WarpOp::Alu { rf_writes, .. } | WarpOp::Fpu { rf_writes, .. } => u32::from(*rf_writes),
            WarpOp::HmmaStep { rf_writes, .. } => u32::from(*rf_writes),
            WarpOp::LoadGlobal { .. } | WarpOp::LoadShared { .. } => 1,
            _ => 0,
        }
    }

    /// A short mnemonic used in traces and per-opcode statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            WarpOp::Alu { .. } => "alu",
            WarpOp::Fpu { .. } => "fpu",
            WarpOp::LoadGlobal { .. } => "ld.global",
            WarpOp::StoreGlobal { .. } => "st.global",
            WarpOp::LoadShared { .. } => "ld.shared",
            WarpOp::StoreShared { .. } => "st.shared",
            WarpOp::WaitLoads => "waitcnt",
            WarpOp::HmmaStep { .. } => "hmma.step",
            WarpOp::WgmmaInit(_) => "wgmma.init",
            WarpOp::WgmmaWait => "wgmma.wait",
            WarpOp::MmioWrite { .. } => "mmio.write",
            WarpOp::FenceAsync { .. } => "virgo.fence",
            WarpOp::Barrier { .. } => "vx.bar",
            WarpOp::Nop => "nop",
        }
    }
}

impl StableHash for OpId {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl StableHash for WarpOp {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            WarpOp::Alu {
                rf_reads,
                rf_writes,
            } => {
                h.write_u64(0);
                h.write_u64(u64::from(*rf_reads));
                h.write_u64(u64::from(*rf_writes));
            }
            WarpOp::Fpu {
                rf_reads,
                rf_writes,
                flops_per_lane,
            } => {
                h.write_u64(1);
                h.write_u64(u64::from(*rf_reads));
                h.write_u64(u64::from(*rf_writes));
                h.write_u64(u64::from(*flops_per_lane));
            }
            WarpOp::LoadGlobal { access } => {
                h.write_u64(2);
                access.stable_hash(h);
            }
            WarpOp::StoreGlobal { access } => {
                h.write_u64(3);
                access.stable_hash(h);
            }
            WarpOp::LoadShared { access } => {
                h.write_u64(4);
                access.stable_hash(h);
            }
            WarpOp::StoreShared { access } => {
                h.write_u64(5);
                access.stable_hash(h);
            }
            WarpOp::WaitLoads => h.write_u64(6),
            WarpOp::HmmaStep {
                macs,
                rf_reads,
                rf_writes,
            } => {
                h.write_u64(7);
                h.write_u64(u64::from(*macs));
                h.write_u64(u64::from(*rf_reads));
                h.write_u64(u64::from(*rf_writes));
            }
            WarpOp::WgmmaInit(op) => {
                h.write_u64(8);
                op.stable_hash(h);
            }
            WarpOp::WgmmaWait => h.write_u64(9),
            WarpOp::MmioWrite { device, cmd } => {
                h.write_u64(10);
                device.stable_hash(h);
                cmd.stable_hash(h);
            }
            WarpOp::FenceAsync { max_outstanding } => {
                h.write_u64(11);
                h.write_u64(u64::from(*max_outstanding));
            }
            WarpOp::Barrier { id } => {
                h.write_u64(12);
                h.write_u64(u64::from(*id));
            }
            WarpOp::Nop => h.write_u64(13),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrExpr;

    fn sample_access() -> LaneAccess {
        LaneAccess::contiguous_words(AddrExpr::fixed(0), 8)
    }

    #[test]
    fn blocking_classification() {
        assert!(WarpOp::WaitLoads.is_blocking());
        assert!(WarpOp::WgmmaWait.is_blocking());
        assert!(WarpOp::Barrier { id: 0 }.is_blocking());
        assert!(WarpOp::FenceAsync { max_outstanding: 0 }.is_blocking());
        assert!(!WarpOp::Nop.is_blocking());
        assert!(!WarpOp::Alu {
            rf_reads: 2,
            rf_writes: 1
        }
        .is_blocking());
    }

    #[test]
    fn memory_classification() {
        assert!(WarpOp::LoadGlobal {
            access: sample_access()
        }
        .is_memory());
        assert!(WarpOp::StoreShared {
            access: sample_access()
        }
        .is_memory());
        assert!(!WarpOp::Nop.is_memory());
        assert!(!WarpOp::WaitLoads.is_memory());
    }

    #[test]
    fn matrix_classification() {
        assert!(WarpOp::HmmaStep {
            macs: 64,
            rf_reads: 4,
            rf_writes: 2
        }
        .is_matrix());
        assert!(!WarpOp::Fpu {
            rf_reads: 2,
            rf_writes: 1,
            flops_per_lane: 1
        }
        .is_matrix());
    }

    #[test]
    fn register_traffic_counts() {
        let alu = WarpOp::Alu {
            rf_reads: 2,
            rf_writes: 1,
        };
        assert_eq!(alu.rf_reads(), 2);
        assert_eq!(alu.rf_writes(), 1);

        let load = WarpOp::LoadShared {
            access: sample_access(),
        };
        assert_eq!(load.rf_reads(), 1);
        assert_eq!(load.rf_writes(), 1);

        let store = WarpOp::StoreGlobal {
            access: sample_access(),
        };
        assert_eq!(store.rf_reads(), 2);
        assert_eq!(store.rf_writes(), 0);

        assert_eq!(WarpOp::Barrier { id: 1 }.rf_reads(), 0);
    }

    #[test]
    fn mnemonics_are_distinct_for_memory_ops() {
        let l = WarpOp::LoadGlobal {
            access: sample_access(),
        };
        let s = WarpOp::StoreGlobal {
            access: sample_access(),
        };
        assert_ne!(l.mnemonic(), s.mnemonic());
    }
}
