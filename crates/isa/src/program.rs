//! Loop-structured warp programs and their execution cursor.
//!
//! A [`Program`] is a tree of [`ProgramItem`]s: plain operations and counted
//! loops. This keeps the memory footprint proportional to the *static* kernel
//! size while the simulator still observes every *dynamic* instruction. A
//! [`ProgramCursor`] walks the tree in execution order, maintaining the loop
//! iteration state.

use std::sync::Arc;

use virgo_sim::{StableHash, StableHasher};

use crate::op::{OpId, WarpOp};

/// One node of a loop-structured program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramItem {
    /// A single static operation with its program-unique id.
    Op {
        /// Identifier used for per-instruction execution counters.
        id: OpId,
        /// The operation itself.
        op: WarpOp,
    },
    /// A counted loop over a nested body.
    Loop {
        /// Number of iterations; zero-iteration loops are skipped entirely.
        count: u64,
        /// The loop body.
        body: Vec<ProgramItem>,
    },
}

/// A complete per-warp program.
///
/// Programs are constructed through [`ProgramBuilder`](crate::ProgramBuilder)
/// and shared between warps via `Arc` (all warps of a collaborative kernel
/// typically run the same program at different base addresses, but nothing
/// requires that).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    items: Vec<ProgramItem>,
    num_ops: u32,
}

impl Program {
    /// Creates a program from raw items.
    ///
    /// Prefer [`ProgramBuilder`](crate::ProgramBuilder), which assigns
    /// [`OpId`]s automatically; this constructor is used by the builder and
    /// by tests that need full control.
    pub fn from_items(items: Vec<ProgramItem>, num_ops: u32) -> Self {
        Program { items, num_ops }
    }

    /// The empty program; a warp running it retires immediately.
    pub fn empty() -> Self {
        Program::default()
    }

    /// Number of *static* operations in the program (loop bodies counted
    /// once). This is the size of the per-warp execution-counter table.
    pub fn static_len(&self) -> u32 {
        self.num_ops
    }

    /// Top-level items of the program tree.
    pub fn items(&self) -> &[ProgramItem] {
        &self.items
    }

    /// Number of *dynamic* operations the program will execute (loop bodies
    /// multiplied by their trip counts).
    pub fn dynamic_len(&self) -> u64 {
        fn count(items: &[ProgramItem]) -> u64 {
            items
                .iter()
                .map(|item| match item {
                    ProgramItem::Op { .. } => 1,
                    ProgramItem::Loop { count: c, body } => c * count(body),
                })
                .sum()
        }
        count(&self.items)
    }

    /// Creates a cursor positioned before the first dynamic operation.
    pub fn cursor(self: &Arc<Self>) -> ProgramCursor {
        ProgramCursor::new(Arc::clone(self))
    }
}

impl StableHash for ProgramItem {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            ProgramItem::Op { id, op } => {
                h.write_u64(0);
                id.stable_hash(h);
                op.stable_hash(h);
            }
            ProgramItem::Loop { count, body } => {
                h.write_u64(1);
                h.write_u64(*count);
                body.stable_hash(h);
            }
        }
    }
}

impl StableHash for Program {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.num_ops));
        self.items.stable_hash(h);
    }
}

/// One frame of the cursor's loop stack.
#[derive(Debug, Clone)]
struct Frame {
    /// Index into the item list of this nesting level.
    index: usize,
    /// Remaining iterations of the enclosing loop (meaningful for frames
    /// above the root).
    remaining: u64,
}

/// A cursor that yields the dynamic operation stream of a [`Program`].
///
/// The cursor owns an `Arc` of the program, so warps can be moved freely.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use virgo_isa::{ProgramBuilder, WarpOp};
///
/// let mut b = ProgramBuilder::new();
/// b.repeat(3, |b| {
///     b.op(WarpOp::Nop);
/// });
/// let program = Arc::new(b.build());
/// let mut cursor = program.cursor();
/// let mut n = 0;
/// while cursor.next_op().is_some() {
///     n += 1;
/// }
/// assert_eq!(n, 3);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramCursor {
    program: Arc<Program>,
    /// Stack of loop frames; the root frame walks `program.items`.
    stack: Vec<Frame>,
    done: bool,
}

impl ProgramCursor {
    fn new(program: Arc<Program>) -> Self {
        let done = program.items.is_empty();
        ProgramCursor {
            program,
            stack: vec![Frame {
                index: 0,
                remaining: 1,
            }],
            done,
        }
    }

    /// True when every dynamic operation has been yielded.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Returns the next dynamic operation, or `None` when the program has
    /// finished.
    ///
    /// The returned operation is copied out of the program tree (operations
    /// are small `Copy` values), together with its static [`OpId`].
    pub fn next_op(&mut self) -> Option<(OpId, WarpOp)> {
        if self.done {
            return None;
        }
        loop {
            // Resolve the item list of the current frame.
            let depth = self.stack.len() - 1;
            let items_len = self.current_items_len(depth);
            let frame_index = self.stack[depth].index;

            if frame_index >= items_len {
                // Finished this item list: either retry the loop body or pop.
                if depth == 0 {
                    self.done = true;
                    return None;
                }
                let frame = &mut self.stack[depth];
                frame.remaining -= 1;
                if frame.remaining > 0 {
                    frame.index = 0;
                    continue;
                }
                self.stack.pop();
                let parent = self.stack.last_mut().expect("root frame always present");
                parent.index += 1;
                continue;
            }

            // Inspect the item at the current position.
            let (is_loop, count) = {
                let item = self.item_at(depth, frame_index);
                match item {
                    ProgramItem::Op { id, op } => {
                        let result = (*id, *op);
                        self.stack[depth].index += 1;
                        return Some(result);
                    }
                    ProgramItem::Loop { count, .. } => (true, *count),
                }
            };
            debug_assert!(is_loop);
            if count == 0 {
                self.stack[depth].index += 1;
            } else {
                self.stack.push(Frame {
                    index: 0,
                    remaining: count,
                });
            }
        }
    }

    fn current_items_len(&self, depth: usize) -> usize {
        self.items_for_depth(depth).len()
    }

    fn item_at(&self, depth: usize, index: usize) -> &ProgramItem {
        &self.items_for_depth(depth)[index]
    }

    /// Walks the frame stack to find the item slice for `depth`.
    fn items_for_depth(&self, depth: usize) -> &[ProgramItem] {
        let mut items: &[ProgramItem] = &self.program.items;
        for level in 1..=depth {
            let parent_index = self.stack[level - 1].index;
            match &items[parent_index] {
                ProgramItem::Loop { body, .. } => items = body,
                ProgramItem::Op { .. } => unreachable!("frame above an op"),
            }
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn collect(program: Program) -> Vec<&'static str> {
        let program = Arc::new(program);
        let mut cursor = program.cursor();
        let mut out = Vec::new();
        while let Some((_, op)) = cursor.next_op() {
            out.push(op.mnemonic());
        }
        out
    }

    #[test]
    fn empty_program_yields_nothing() {
        let program = Arc::new(Program::empty());
        let mut cursor = program.cursor();
        assert!(cursor.is_done() || cursor.next_op().is_none());
        assert!(cursor.is_done());
        assert_eq!(program.dynamic_len(), 0);
    }

    #[test]
    fn flat_program_yields_in_order() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Nop);
        b.op(WarpOp::Alu {
            rf_reads: 1,
            rf_writes: 1,
        });
        b.op(WarpOp::WaitLoads);
        let mnemonics = collect(b.build());
        assert_eq!(mnemonics, vec!["nop", "alu", "waitcnt"]);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = ProgramBuilder::new();
        b.repeat(3, |b| {
            b.op(WarpOp::Nop);
            b.repeat(2, |b| {
                b.op(WarpOp::Alu {
                    rf_reads: 0,
                    rf_writes: 0,
                });
            });
        });
        let program = b.build();
        assert_eq!(program.dynamic_len(), 3 * (1 + 2));
        let mnemonics = collect(program);
        assert_eq!(mnemonics.len(), 9);
        assert_eq!(mnemonics[0], "nop");
        assert_eq!(mnemonics[1], "alu");
        assert_eq!(mnemonics[2], "alu");
        assert_eq!(mnemonics[3], "nop");
    }

    #[test]
    fn zero_trip_loops_are_skipped() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Nop);
        b.repeat(0, |b| {
            b.op(WarpOp::WaitLoads);
        });
        b.op(WarpOp::Nop);
        let program = b.build();
        assert_eq!(program.dynamic_len(), 2);
        assert_eq!(collect(program), vec!["nop", "nop"]);
    }

    #[test]
    fn op_ids_are_unique_and_dense() {
        let mut b = ProgramBuilder::new();
        b.op(WarpOp::Nop);
        b.repeat(5, |b| {
            b.op(WarpOp::Nop);
            b.op(WarpOp::Nop);
        });
        let program = Arc::new(b.build());
        assert_eq!(program.static_len(), 3);
        let mut cursor = program.cursor();
        let mut seen = Vec::new();
        while let Some((id, _)) = cursor.next_op() {
            seen.push(id.index());
        }
        assert_eq!(seen.len(), 11);
        assert!(seen.iter().all(|&i| i < 3));
        // The two loop-body ops repeat with stable ids.
        assert_eq!(seen[1], seen[3]);
        assert_eq!(seen[2], seen[4]);
    }

    #[test]
    fn trailing_ops_after_loop_execute() {
        let mut b = ProgramBuilder::new();
        b.repeat(2, |b| {
            b.op(WarpOp::Nop);
        });
        b.op(WarpOp::Barrier { id: 0 });
        assert_eq!(collect(b.build()), vec!["nop", "nop", "vx.bar"]);
    }

    #[test]
    fn deeply_nested_loop_counts() {
        let mut b = ProgramBuilder::new();
        b.repeat(2, |b| {
            b.repeat(2, |b| {
                b.repeat(2, |b| {
                    b.op(WarpOp::Nop);
                });
            });
        });
        let program = b.build();
        assert_eq!(program.dynamic_len(), 8);
        assert_eq!(collect(program).len(), 8);
    }
}
