//! FlashAttention-3 mapped to the Ampere-style baseline with warp
//! specialization and ping-pong scheduling (Section 6.2).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp,
};

use crate::workload::AttentionShape;

use super::{BLOCK, SOFTMAX_FLOPS_PER_ELEM};

const GLOBAL_K: u64 = 0x5000_0000;
const GLOBAL_V: u64 = 0x6000_0000;
const GLOBAL_O: u64 = 0x7000_0000;

/// Shared-memory layout: Q, double-buffered K/V and the score tile.
const SMEM_Q: u64 = 0x0;
const SMEM_K0: u64 = 0x4000;
const SMEM_KV_STRIDE: u64 = 0x4000;
const SMEM_V0: u64 = 0xC000;
const SMEM_S0: u64 = 0x1_4000;
const SMEM_S_STRIDE: u64 = 0x4000;

/// Builds the Ampere-style FlashAttention-3 forward kernel, splitting the
/// row blocks of the attention grid across the configuration's clusters.
///
/// The 8 warps of each core split into two groups of 4 (warp specialization):
/// in each inner iteration one group drives the tightly-coupled tensor core
/// through synchronous `HMMA` steps for the two GEMMs while the other group
/// computes the softmax of the previous score tile; the groups swap roles
/// every iteration (ping-pong scheduling). Matrix and softmax instructions
/// therefore compete for the same issue slots and register file ports, which
/// is precisely the contention Virgo's disaggregation removes.
///
/// # Panics
///
/// Panics if the shape is not tileable by the 64-element block.
pub fn build(config: &GpuConfig, shape: AttentionShape) -> Kernel {
    assert!(
        shape.seq_len.is_multiple_of(BLOCK) && shape.head_dim.is_multiple_of(BLOCK),
        "attention shape {shape} not tileable by {BLOCK}"
    );
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let cores = u64::from(config.cores);
    let warps_per_core = u64::from(config.core.warps);

    let row_blocks = u64::from(shape.seq_len / BLOCK) * u64::from(shape.heads * shape.batch);
    let col_blocks = u64::from(shape.seq_len / BLOCK);
    let clusters = config.active_clusters();
    let partition = config.partition(row_blocks);
    let tile_bytes = u64::from(BLOCK) * u64::from(shape.head_dim) * elem;

    // Per inner iteration the cluster performs 2·64·64·64 MACs. With the
    // ping-pong schedule each warp spends half its iterations in the GEMM
    // role and half in the softmax role; averaged over two iterations this is
    // equivalent to every warp carrying 1/(cores·warps) of both the matrix
    // and the softmax work each iteration, which is how the per-warp slices
    // are sized here.
    let cluster_macs_per_iter = 2 * u64::from(BLOCK) * u64::from(BLOCK) * u64::from(shape.head_dim);
    let macs_per_warp_iter = cluster_macs_per_iter / (cores * warps_per_core);
    let macs_per_step = u64::from(config.tightly.macs_per_cycle) * 2;
    let steps_per_warp_iter = (macs_per_warp_iter / macs_per_step) as u32;
    // Operand fragments loaded from shared memory into registers: one lane
    // load plus an address-generation instruction per 64 MACs of HMMA work.
    let loads_per_warp_iter = (macs_per_warp_iter / 64) as u32;

    // Softmax work per warp per iteration: the 64×64 score tile divided over
    // every warp of the cluster.
    let softmax_elems = u64::from(BLOCK) * u64::from(BLOCK);
    let softmax_warps = cores * warps_per_core;
    let vector_iters = (softmax_elems / softmax_warps / u64::from(lanes)).max(1);

    let build_program = |leader: bool, warp_index: u64, cluster_rows: u64, gbase: u64| {
        let mut p = ProgramBuilder::new();
        p.repeat(cluster_rows, |b| {
            b.repeat(col_blocks, |b| {
                if leader {
                    // The leader warp programs the DMA for the next K/V tiles
                    // (Asynchronous Data Copy) and fences before the barrier.
                    for global in [GLOBAL_K, GLOBAL_V] {
                        b.op(WarpOp::MmioWrite {
                            device: DeviceId::DMA0,
                            cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(
                                MemLoc::global(AddrExpr::streaming(global + gbase, tile_bytes)),
                                MemLoc::shared(AddrExpr::double_buffered(
                                    if global == GLOBAL_K { SMEM_K0 } else { SMEM_V0 },
                                    SMEM_KV_STRIDE,
                                )),
                                tile_bytes,
                            )),
                        });
                    }
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                }
                b.op(WarpOp::Barrier { id: 0 });

                // ---- GEMM phase (this warp's ping-pong slot) --------------
                for l in 0..loads_per_warp_iter {
                    b.op(WarpOp::Alu {
                        rf_reads: 2,
                        rf_writes: 1,
                    });
                    b.op(WarpOp::LoadShared {
                        access: LaneAccess::contiguous_words(
                            AddrExpr::double_buffered(
                                SMEM_Q
                                    + (warp_index * 2048 + u64::from(l) * u64::from(lanes) * 4)
                                        % 0x4000,
                                SMEM_KV_STRIDE,
                            ),
                            lanes,
                        ),
                    });
                    if l % 4 == 3 {
                        b.op(WarpOp::WaitLoads);
                        b.op_n(
                            steps_per_warp_iter / (loads_per_warp_iter / 4).max(1),
                            WarpOp::HmmaStep {
                                macs: macs_per_step as u32,
                                rf_reads: 4,
                                rf_writes: 2,
                            },
                        );
                    }
                }

                // ---- Softmax phase (the other ping-pong slot) -------------
                for i in 0..vector_iters {
                    let offset = (warp_index * vector_iters + i) * u64::from(lanes) * 4;
                    b.op(WarpOp::LoadShared {
                        access: LaneAccess::contiguous_words(
                            AddrExpr::double_buffered(SMEM_S0 + offset % 0x4000, SMEM_S_STRIDE),
                            lanes,
                        ),
                    });
                    b.op(WarpOp::WaitLoads);
                    b.op_n(
                        SOFTMAX_FLOPS_PER_ELEM,
                        WarpOp::Fpu {
                            rf_reads: 2,
                            rf_writes: 1,
                            flops_per_lane: 1,
                        },
                    );
                    b.op(WarpOp::StoreShared {
                        access: LaneAccess::contiguous_words(
                            AddrExpr::double_buffered(SMEM_S0 + offset % 0x4000, SMEM_S_STRIDE),
                            lanes,
                        ),
                    });
                }
                b.op(WarpOp::Barrier { id: 1 });
            });

            // Epilogue: write the output row block from registers to global
            // memory, spread across the warps.
            let o_words = u64::from(BLOCK) * u64::from(shape.head_dim) / (cores * warps_per_core);
            let o_stores = (o_words / u64::from(lanes)).max(1);
            b.repeat(o_stores, |b| {
                b.op(WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                });
                b.op(WarpOp::StoreGlobal {
                    access: LaneAccess::contiguous_words(
                        AddrExpr::streaming(
                            GLOBAL_O + gbase + warp_index * o_words * 4,
                            tile_bytes,
                        ),
                        lanes,
                    ),
                });
            });
            b.op(WarpOp::Barrier { id: 2 });
        });
        Arc::new(p.build())
    };

    let mut warps = Vec::new();
    for cluster in partition.cluster_ids().collect::<Vec<_>>() {
        let cluster_rows = partition.count(cluster);
        let gbase = crate::cluster_addr_offset(cluster);
        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * warps_per_core + u64::from(warp);
                let leader = warp_index == 0;
                warps.push(WarpAssignment::on_cluster(
                    cluster,
                    core,
                    warp,
                    build_program(leader, warp_index, cluster_rows, gbase),
                ));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!(
                "flash_attention_ampere_{shape}{}",
                crate::cluster_suffix(clusters)
            ),
            shape.gemm_mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmma_macs_cover_both_gemms() {
        let config = GpuConfig::ampere_style().to_fp32();
        let shape = AttentionShape::paper_default();
        let kernel = build(&config, shape);
        let mut macs = 0u64;
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::HmmaStep { macs: m, .. } = op {
                    macs += u64::from(m);
                }
            }
        }
        // Work is spread over half the warps each iteration; the total must
        // cover both GEMMs of every iteration within rounding of the step
        // granularity.
        let expected = shape.gemm_mac_ops();
        let ratio = macs as f64 / expected as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "macs {macs} vs expected {expected}"
        );
    }

    #[test]
    fn every_warp_mixes_matrix_and_softmax_work() {
        let config = GpuConfig::ampere_style().to_fp32();
        let kernel = build(&config, AttentionShape::paper_default());
        let mut cursor = kernel.warps[3].program.cursor();
        let (mut hmma, mut fpu) = (0u64, 0u64);
        while let Some((_, op)) = cursor.next_op() {
            match op {
                WarpOp::HmmaStep { .. } => hmma += 1,
                WarpOp::Fpu { .. } => fpu += 1,
                _ => {}
            }
        }
        assert!(hmma > 0 && fpu > 0);
    }
}
