//! Multi-cluster FlashAttention-3 with DSM K/V broadcast.
//!
//! The plain multi-cluster mapping ([`super::virgo`]) gives every cluster
//! its own K/V stream from global memory: N clusters each pull every K and V
//! column block through the shared L2/DRAM back-end. This variant keeps the
//! row-block partitioning but designates cluster 0 as the *broadcaster*: it
//! alone loads each K/V column block from DRAM, then pushes the tiles
//! straight into every peer cluster's scratchpad with `DmaRemote` commands
//! over the inter-cluster DSM fabric. DRAM sees each K/V tile once instead
//! of N times; the peers' inner loops run entirely out of their (remotely
//! filled) shared memory.
//!
//! The kernel requires an enabled DSM fabric — its DRAM-path A/B twin is the
//! plain [`super::virgo`] mapping at the same cluster count.

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, GridPartition, Kernel, KernelInfo, LaneAccess,
    MatrixComputeCmd, MemLoc, MmioCommand, PartitionStrategy, ProgramBuilder, WarpAssignment,
    WarpOp,
};

use crate::workload::AttentionShape;

use super::{BLOCK, SOFTMAX_FLOPS_PER_ELEM};

/// Global-memory bases (same as the plain Virgo mapping).
const GLOBAL_Q: u64 = 0x4000_0000;
const GLOBAL_K: u64 = 0x5000_0000;
const GLOBAL_V: u64 = 0x6000_0000;
const GLOBAL_O: u64 = 0x7000_0000;

/// Shared-memory layout (same as the plain Virgo mapping).
const SMEM_Q: u64 = 0x0;
const SMEM_K0: u64 = 0x4000;
const SMEM_KV_STRIDE: u64 = 0x4000;
const SMEM_V0: u64 = 0xC000;
const SMEM_S0: u64 = 0x1_4000;
const SMEM_S_STRIDE: u64 = 0x4000;
const SMEM_O: u64 = 0x1_C000;

/// Accumulator-memory layout.
const ACC_S: u64 = 0;
const ACC_O: u64 = 16 * 1024;

/// Builds the broadcast FlashAttention-3 kernel: row blocks split across
/// clusters, K/V column blocks loaded once by cluster 0 and broadcast over
/// the DSM fabric.
///
/// # Panics
///
/// Panics if the DSM fabric is disabled in `config`, if there are fewer than
/// two clusters, if the shape is not tileable by the 64-element block, or if
/// the row blocks do not split evenly across the clusters (the broadcast
/// schedule needs every cluster on the same iteration count).
pub fn build(config: &GpuConfig, shape: AttentionShape) -> Kernel {
    assert!(
        config.dsm.enabled,
        "the broadcast FlashAttention mapping needs the DSM fabric enabled; \
         use the plain mapping as its DRAM-path twin"
    );
    let clusters = config.clusters.max(1);
    assert!(
        clusters >= 2,
        "broadcasting needs at least one peer cluster"
    );
    assert!(
        shape.seq_len.is_multiple_of(BLOCK) && shape.head_dim.is_multiple_of(BLOCK),
        "attention shape {shape} not tileable by {BLOCK}"
    );
    let row_blocks = u64::from(shape.seq_len / BLOCK) * u64::from(shape.heads * shape.batch);
    assert!(
        row_blocks.is_multiple_of(u64::from(clusters)),
        "broadcast needs the {row_blocks} row blocks to split evenly over {clusters} clusters"
    );
    let rows_per_cluster = row_blocks / u64::from(clusters);
    let col_blocks = u64::from(shape.seq_len / BLOCK);

    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);
    let tile_bytes = u64::from(BLOCK) * u64::from(shape.head_dim) * elem;
    let score_bytes = u64::from(BLOCK) * u64::from(BLOCK) * 4;

    let dma = |src: MemLoc, dst: MemLoc, bytes: u64| WarpOp::MmioWrite {
        device: DeviceId::DMA0,
        cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(src, dst, bytes)),
    };
    let dma_remote = |src: MemLoc, dst: MemLoc, bytes: u64| WarpOp::MmioWrite {
        device: DeviceId::DMA0,
        cmd: MmioCommand::DmaRemote(DmaCopyCmd::new(src, dst, bytes)),
    };
    let compute =
        |a: AddrExpr, b: AddrExpr, acc_addr: u64, k: u32, accumulate: bool| WarpOp::MmioWrite {
            device: DeviceId::MATRIX0,
            cmd: MmioCommand::MatrixCompute(MatrixComputeCmd {
                a,
                b,
                acc_addr,
                m: BLOCK,
                n: BLOCK,
                k,
                accumulate,
                dtype,
            }),
        };

    let k_buf = AddrExpr::double_buffered(SMEM_K0, SMEM_KV_STRIDE);
    let v_buf = AddrExpr::double_buffered(SMEM_V0, SMEM_KV_STRIDE);
    let s_buf = AddrExpr::double_buffered(SMEM_S0, SMEM_S_STRIDE);

    let mut warps = Vec::new();
    for cluster in 0..clusters {
        let gbase = crate::cluster_addr_offset(cluster);

        // ---- Orchestrator warp (core 0, warp 0) ----------------------------
        let mut orch = ProgramBuilder::new();
        orch.repeat(rows_per_cluster, |b| {
            // The Q row block is this cluster's own.
            b.op(dma(
                MemLoc::global(AddrExpr::streaming(GLOBAL_Q + gbase, tile_bytes)),
                MemLoc::shared(AddrExpr::fixed(SMEM_Q)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });

            b.repeat(col_blocks, |b| {
                if cluster == 0 {
                    // The broadcaster pulls K/V from DRAM once...
                    b.op(dma(
                        MemLoc::global(AddrExpr::streaming(GLOBAL_K, tile_bytes)),
                        MemLoc::shared(k_buf),
                        tile_bytes,
                    ));
                    b.op(dma(
                        MemLoc::global(AddrExpr::streaming(GLOBAL_V, tile_bytes)),
                        MemLoc::shared(v_buf),
                        tile_bytes,
                    ));
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    // ...and fans the tiles out to every peer's scratchpad
                    // over the DSM fabric.
                    for peer in 1..clusters {
                        b.op(dma_remote(
                            MemLoc::shared(k_buf),
                            MemLoc::remote_shared(peer, k_buf),
                            tile_bytes,
                        ));
                        b.op(dma_remote(
                            MemLoc::shared(v_buf),
                            MemLoc::remote_shared(peer, v_buf),
                            tile_bytes,
                        ));
                    }
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                }
                // GEMM-1: S = Q·Kᵀ out of (locally or remotely filled) smem.
                b.op(compute(
                    AddrExpr::fixed(SMEM_Q),
                    k_buf,
                    ACC_S,
                    shape.head_dim,
                    false,
                ));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                // Drain the score tile for the softmax warps.
                b.op(dma(
                    MemLoc::accumulator(AddrExpr::fixed(ACC_S)),
                    MemLoc::shared(s_buf),
                    score_bytes,
                ));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 0 });
                // Softmax runs between the barriers.
                b.op(WarpOp::Barrier { id: 1 });
                // GEMM-2: O += P·V.
                b.op(compute(s_buf, v_buf, ACC_O, BLOCK, true));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            });

            // Epilogue: the accumulated O row block goes out to this
            // cluster's partition of global memory.
            b.op(dma(
                MemLoc::accumulator(AddrExpr::fixed(ACC_O)),
                MemLoc::global(AddrExpr::streaming(GLOBAL_O + gbase, tile_bytes)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Barrier { id: 2 });
        });
        let orchestrator = Arc::new(orch.build());

        // ---- Softmax warps (same slicing as the plain mapping) -------------
        let elems = u64::from(BLOCK) * u64::from(BLOCK);
        let elems_per_warp = elems / total_warps;
        let vector_iters = (elems_per_warp / u64::from(lanes)).max(1);
        let build_softmax = |warp_index: u64| {
            let mut p = ProgramBuilder::new();
            p.repeat(rows_per_cluster, |b| {
                b.repeat(col_blocks, |b| {
                    b.op(WarpOp::Barrier { id: 0 });
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op_n(
                            SOFTMAX_FLOPS_PER_ELEM,
                            WarpOp::Fpu {
                                rf_reads: 2,
                                rf_writes: 1,
                                flops_per_lane: 1,
                            },
                        );
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                    }
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op(WarpOp::Fpu {
                            rf_reads: 2,
                            rf_writes: 1,
                            flops_per_lane: 2,
                        });
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::Barrier { id: 1 });
                });
                b.op(WarpOp::Barrier { id: 2 });
            });
            Arc::new(p.build())
        };

        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let program = if warp_index == 0 {
                    Arc::clone(&orchestrator)
                } else {
                    build_softmax(warp_index)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!(
                "flash_attention_virgo_dsm_{shape}{}",
                crate::cluster_suffix(clusters)
            ),
            shape.gemm_mac_ops(),
            dtype,
        ),
        warps,
    )
}

/// Builds the interleaved-ownership K/V broadcast FlashAttention-3 kernel.
///
/// Same row-block partitioning and dataflow as [`build`], but the *loader*
/// role rotates: K/V column block `j` is pulled from DRAM by cluster
/// `j mod N` ([`PartitionStrategy::Interleaved`] over the column blocks) and
/// fanned out to the other clusters from there. Where [`build`] funnels the
/// whole broadcast through cluster 0's DMA engine and egress link, here
/// every cluster sources a 1/N slice of the column blocks, so the broadcast
/// load — DRAM pulls and DSM pushes both — spreads across all N clusters.
///
/// # Panics
///
/// Panics under the same conditions as [`build`].
pub fn build_interleaved(config: &GpuConfig, shape: AttentionShape) -> Kernel {
    assert!(
        config.dsm.enabled,
        "the broadcast FlashAttention mapping needs the DSM fabric enabled; \
         use the plain mapping as its DRAM-path twin"
    );
    let clusters = config.clusters.max(1);
    assert!(
        clusters >= 2,
        "broadcasting needs at least one peer cluster"
    );
    assert!(
        shape.seq_len.is_multiple_of(BLOCK) && shape.head_dim.is_multiple_of(BLOCK),
        "attention shape {shape} not tileable by {BLOCK}"
    );
    let row_blocks = u64::from(shape.seq_len / BLOCK) * u64::from(shape.heads * shape.batch);
    assert!(
        row_blocks.is_multiple_of(u64::from(clusters)),
        "broadcast needs the {row_blocks} row blocks to split evenly over {clusters} clusters"
    );
    let rows_per_cluster = row_blocks / u64::from(clusters);
    let col_blocks = u64::from(shape.seq_len / BLOCK);
    let loaders =
        GridPartition::with_strategy(col_blocks, clusters, PartitionStrategy::Interleaved);

    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);
    let tile_bytes = u64::from(BLOCK) * u64::from(shape.head_dim) * elem;
    let score_bytes = u64::from(BLOCK) * u64::from(BLOCK) * 4;

    let dma = |src: MemLoc, dst: MemLoc, bytes: u64| WarpOp::MmioWrite {
        device: DeviceId::DMA0,
        cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(src, dst, bytes)),
    };
    let dma_remote = |src: MemLoc, dst: MemLoc, bytes: u64| WarpOp::MmioWrite {
        device: DeviceId::DMA0,
        cmd: MmioCommand::DmaRemote(DmaCopyCmd::new(src, dst, bytes)),
    };
    let compute =
        |a: AddrExpr, b: AddrExpr, acc_addr: u64, k: u32, accumulate: bool| WarpOp::MmioWrite {
            device: DeviceId::MATRIX0,
            cmd: MmioCommand::MatrixCompute(MatrixComputeCmd {
                a,
                b,
                acc_addr,
                m: BLOCK,
                n: BLOCK,
                k,
                accumulate,
                dtype,
            }),
        };

    let k_buf = AddrExpr::double_buffered(SMEM_K0, SMEM_KV_STRIDE);
    let v_buf = AddrExpr::double_buffered(SMEM_V0, SMEM_KV_STRIDE);
    let s_buf = AddrExpr::double_buffered(SMEM_S0, SMEM_S_STRIDE);

    let mut warps = Vec::new();
    for cluster in 0..clusters {
        let gbase = crate::cluster_addr_offset(cluster);

        // ---- Orchestrator warp (core 0, warp 0) ----------------------------
        // The loader role depends on the column-block index, so the column
        // loop is unrolled; the row loop still repeats (roles only depend on
        // the column).
        let mut orch = ProgramBuilder::new();
        orch.repeat(rows_per_cluster, |b| {
            b.op(dma(
                MemLoc::global(AddrExpr::streaming(GLOBAL_Q + gbase, tile_bytes)),
                MemLoc::shared(AddrExpr::fixed(SMEM_Q)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });

            for j in 0..col_blocks {
                if loaders.owner(j) == cluster {
                    // This cluster sources column block j: pull K/V from
                    // DRAM once (advancing a row-major stream across row
                    // iterations, like the single-broadcaster kernel)...
                    b.op(dma(
                        MemLoc::global(AddrExpr::streaming(
                            GLOBAL_K + j * tile_bytes,
                            col_blocks * tile_bytes,
                        )),
                        MemLoc::shared(k_buf),
                        tile_bytes,
                    ));
                    b.op(dma(
                        MemLoc::global(AddrExpr::streaming(
                            GLOBAL_V + j * tile_bytes,
                            col_blocks * tile_bytes,
                        )),
                        MemLoc::shared(v_buf),
                        tile_bytes,
                    ));
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    // ...and fans the tiles out to every other cluster.
                    for peer in 0..clusters {
                        if peer == cluster {
                            continue;
                        }
                        b.op(dma_remote(
                            MemLoc::shared(k_buf),
                            MemLoc::remote_shared(peer, k_buf),
                            tile_bytes,
                        ));
                        b.op(dma_remote(
                            MemLoc::shared(v_buf),
                            MemLoc::remote_shared(peer, v_buf),
                            tile_bytes,
                        ));
                    }
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                }
                // GEMM-1: S = Q·Kᵀ out of (locally or remotely filled) smem.
                b.op(compute(
                    AddrExpr::fixed(SMEM_Q),
                    k_buf,
                    ACC_S,
                    shape.head_dim,
                    false,
                ));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(dma(
                    MemLoc::accumulator(AddrExpr::fixed(ACC_S)),
                    MemLoc::shared(s_buf),
                    score_bytes,
                ));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 0 });
                // Softmax runs between the barriers.
                b.op(WarpOp::Barrier { id: 1 });
                // GEMM-2: O += P·V.
                b.op(compute(s_buf, v_buf, ACC_O, BLOCK, true));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            }

            b.op(dma(
                MemLoc::accumulator(AddrExpr::fixed(ACC_O)),
                MemLoc::global(AddrExpr::streaming(GLOBAL_O + gbase, tile_bytes)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Barrier { id: 2 });
        });
        let orchestrator = Arc::new(orch.build());

        // ---- Softmax warps (identical to the single-broadcaster kernel) ----
        let elems = u64::from(BLOCK) * u64::from(BLOCK);
        let elems_per_warp = elems / total_warps;
        let vector_iters = (elems_per_warp / u64::from(lanes)).max(1);
        let build_softmax = |warp_index: u64| {
            let mut p = ProgramBuilder::new();
            p.repeat(rows_per_cluster, |b| {
                b.repeat(col_blocks, |b| {
                    b.op(WarpOp::Barrier { id: 0 });
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op_n(
                            SOFTMAX_FLOPS_PER_ELEM,
                            WarpOp::Fpu {
                                rf_reads: 2,
                                rf_writes: 1,
                                flops_per_lane: 1,
                            },
                        );
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                    }
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op(WarpOp::Fpu {
                            rf_reads: 2,
                            rf_writes: 1,
                            flops_per_lane: 2,
                        });
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::Barrier { id: 1 });
                });
                b.op(WarpOp::Barrier { id: 2 });
            });
            Arc::new(p.build())
        };

        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let program = if warp_index == 0 {
                    Arc::clone(&orchestrator)
                } else {
                    build_softmax(warp_index)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!(
                "flash_attention_virgo_dsm_int_{shape}{}",
                crate::cluster_suffix(clusters)
            ),
            shape.gemm_mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(clusters: u32) -> GpuConfig {
        GpuConfig::virgo()
            .to_fp32()
            .with_clusters(clusters)
            .with_dsm_enabled()
    }

    #[test]
    fn matrix_commands_cover_both_gemms_across_clusters() {
        let shape = AttentionShape::paper_default();
        let kernel = build(&config(4), shape);
        let mut macs = 0u64;
        for warp in kernel.warps.iter().filter(|w| w.warp == 0 && w.core == 0) {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::MmioWrite { cmd, .. } = op {
                    if let Some(c) = cmd.as_matrix_compute() {
                        macs += c.mac_ops();
                    }
                }
            }
        }
        assert_eq!(macs, shape.gemm_mac_ops());
    }

    #[test]
    fn only_the_broadcaster_touches_global_kv() {
        let kernel = build(&config(2), AttentionShape::paper_default());
        for warp in kernel.warps.iter().filter(|w| w.warp == 0 && w.core == 0) {
            let mut kv_loads = 0;
            let mut remote_pushes = 0;
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::MmioWrite { cmd, .. } = op {
                    match cmd {
                        MmioCommand::DmaCopy(copy) => {
                            let base = copy.src.addr.base & 0xF000_0000;
                            if base == GLOBAL_K || base == GLOBAL_V {
                                kv_loads += 1;
                            }
                        }
                        MmioCommand::DmaRemote(copy) => {
                            assert!(copy.dst.remote_cluster().is_some());
                            remote_pushes += 1;
                        }
                        MmioCommand::MatrixCompute(_) => {}
                    }
                }
            }
            if warp.cluster == 0 {
                assert!(kv_loads > 0, "broadcaster loads K/V");
                assert!(remote_pushes > 0, "broadcaster pushes K/V");
            } else {
                assert_eq!(kv_loads, 0, "peers never touch global K/V");
                assert_eq!(remote_pushes, 0);
            }
        }
    }

    #[test]
    fn interleaved_variant_rotates_the_loader_role() {
        let shape = AttentionShape::paper_default();
        let kernel = build_interleaved(&config(4), shape);
        assert!(kernel.info.name.contains("dsm_int"), "{}", kernel.info.name);
        let col_blocks = u64::from(shape.seq_len / BLOCK);
        let loaders = GridPartition::with_strategy(col_blocks, 4, PartitionStrategy::Interleaved);
        let rows_per_cluster =
            u64::from(shape.seq_len / BLOCK) * u64::from(shape.heads * shape.batch) / 4;
        for warp in kernel.warps.iter().filter(|w| w.warp == 0 && w.core == 0) {
            let mut kv_loads = 0u64;
            let mut remote_pushes = 0u64;
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::MmioWrite { cmd, .. } = op {
                    match cmd {
                        MmioCommand::DmaCopy(copy) => {
                            let base = copy.src.addr.base & 0xF000_0000;
                            if base == GLOBAL_K || base == GLOBAL_V {
                                kv_loads += 1;
                            }
                        }
                        MmioCommand::DmaRemote(copy) => {
                            assert!(copy.dst.remote_cluster().is_some());
                            remote_pushes += 1;
                        }
                        MmioCommand::MatrixCompute(_) => {}
                    }
                }
            }
            // Every cluster loads its interleaved slice of the column blocks
            // (K and V, once per row iteration) and pushes each to the 3
            // other clusters — no cluster monopolizes the broadcast.
            let owned = loaders.count(warp.cluster);
            assert_eq!(
                kv_loads,
                2 * owned * rows_per_cluster,
                "cluster {}",
                warp.cluster
            );
            assert_eq!(remote_pushes, 2 * 3 * owned * rows_per_cluster);
            assert!(kv_loads > 0, "cluster {} never loads K/V", warp.cluster);
        }
    }

    #[test]
    fn interleaved_variant_matches_broadcast_macs() {
        let shape = AttentionShape::paper_default();
        let a = build(&config(2), shape);
        let b = build_interleaved(&config(2), shape);
        assert_eq!(a.info.total_macs, b.info.total_macs);
    }

    #[test]
    #[should_panic(expected = "DSM fabric enabled")]
    fn dsm_disabled_config_is_rejected() {
        let _ = build(
            &GpuConfig::virgo().to_fp32().with_clusters(2),
            AttentionShape::paper_default(),
        );
    }
}
