//! FlashAttention-3 forward-pass kernels (Sections 4.5 and 6.2).
//!
//! The kernel fuses the two GEMMs of self-attention (`S = Q·Kᵀ` and
//! `O += P·V`) with the online-softmax computation. The paper evaluates FP32
//! configurations of Virgo and the Ampere-style baseline:
//!
//! * On **Virgo** the two GEMMs map to the cluster-level matrix unit as
//!   asynchronous commands while every warp of the cluster computes the
//!   softmax (with a 2nd-order Taylor approximation of `exp`) on the SIMT
//!   cores, synchronized with `virgo_fence` and cluster-wide barriers
//!   (Listing 1 of the paper).
//! * On the **Ampere-style** baseline the kernel uses warp specialization
//!   with ping-pong scheduling: half the warps of each core drive the
//!   tightly-coupled tensor core with synchronous `HMMA` steps while the
//!   other half computes softmax, alternating roles each iteration.

pub mod ampere;
pub mod broadcast;
pub mod virgo;

use ::virgo::{DesignKind, GpuConfig};
use virgo_isa::Kernel;

use crate::workload::AttentionShape;

/// Builds the FlashAttention-3 kernel for `config`'s design point.
///
/// # Panics
///
/// Panics if the design point is not one of the two evaluated in the paper
/// (Virgo and Ampere-style), or if the shape is not tileable by the 64×64
/// block used by the mapping.
pub fn build_flash_attention(config: &GpuConfig, shape: AttentionShape) -> Kernel {
    match config.design {
        DesignKind::Virgo => virgo::build(config, shape),
        DesignKind::AmpereStyle => ampere::build(config, shape),
        other => {
            panic!("FlashAttention-3 is evaluated on Virgo and Ampere-style designs, not {other}")
        }
    }
}

/// Row/column block size used by both mappings.
pub(crate) const BLOCK: u32 = 64;

/// Number of floating-point operations the online softmax performs per
/// element of the score tile: running max, 2nd-order Taylor exponential
/// (two fused multiply-adds), running sum and rescale.
pub(crate) const SOFTMAX_FLOPS_PER_ELEM: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virgo_and_ampere_kernels_build() {
        let shape = AttentionShape::paper_default();
        let virgo = build_flash_attention(&GpuConfig::virgo().to_fp32(), shape);
        let ampere = build_flash_attention(&GpuConfig::ampere_style().to_fp32(), shape);
        assert_eq!(virgo.info.total_macs, shape.gemm_mac_ops());
        assert_eq!(ampere.info.total_macs, shape.gemm_mac_ops());
        assert!(virgo.dynamic_instructions() < ampere.dynamic_instructions());
    }

    #[test]
    #[should_panic(expected = "FlashAttention-3 is evaluated")]
    fn unsupported_design_panics() {
        let _ = build_flash_attention(
            &GpuConfig::hopper_style().to_fp32(),
            AttentionShape::paper_default(),
        );
    }
}
