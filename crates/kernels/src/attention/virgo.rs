//! FlashAttention-3 mapped to Virgo (Listing 1 of the paper).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MatrixComputeCmd, MemLoc,
    MmioCommand, ProgramBuilder, WarpAssignment, WarpOp,
};

use crate::workload::AttentionShape;

use super::{BLOCK, SOFTMAX_FLOPS_PER_ELEM};

/// Global-memory bases for the Q, K, V and O matrices.
const GLOBAL_Q: u64 = 0x4000_0000;
const GLOBAL_K: u64 = 0x5000_0000;
const GLOBAL_V: u64 = 0x6000_0000;
const GLOBAL_O: u64 = 0x7000_0000;

/// Shared-memory layout (FP32 64×64 tiles are 16 KiB each): Q, double
/// buffered K and V, double buffered S/P score tiles, and the O staging tile.
const SMEM_Q: u64 = 0x0;
const SMEM_K0: u64 = 0x4000;
const SMEM_KV_STRIDE: u64 = 0x4000;
const SMEM_V0: u64 = 0xC000;
const SMEM_S0: u64 = 0x1_4000;
const SMEM_S_STRIDE: u64 = 0x4000;
const SMEM_O: u64 = 0x1_C000;

/// Accumulator-memory layout: the S score tile and the O output accumulator.
const ACC_S: u64 = 0;
const ACC_O: u64 = 16 * 1024;

/// Builds the Virgo FlashAttention-3 forward kernel, splitting the row
/// blocks of the attention grid across the configuration's clusters.
///
/// # Panics
///
/// Panics if the sequence length or head dimension is not a multiple of the
/// 64-element block.
pub fn build(config: &GpuConfig, shape: AttentionShape) -> Kernel {
    assert!(
        shape.seq_len.is_multiple_of(BLOCK) && shape.head_dim.is_multiple_of(BLOCK),
        "attention shape {shape} not tileable by {BLOCK}"
    );
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);

    let row_blocks = u64::from(shape.seq_len / BLOCK) * u64::from(shape.heads * shape.batch);
    let col_blocks = u64::from(shape.seq_len / BLOCK);
    let clusters = config.active_clusters();
    let partition = config.partition(row_blocks);
    let tile_bytes = u64::from(BLOCK) * u64::from(shape.head_dim) * elem;
    let score_bytes = u64::from(BLOCK) * u64::from(BLOCK) * 4;

    let dma = |src: MemLoc, dst: MemLoc, bytes: u64| WarpOp::MmioWrite {
        device: DeviceId::DMA0,
        cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(src, dst, bytes)),
    };
    let compute =
        |a: AddrExpr, b: AddrExpr, acc_addr: u64, k: u32, accumulate: bool| WarpOp::MmioWrite {
            device: DeviceId::MATRIX0,
            cmd: MmioCommand::MatrixCompute(MatrixComputeCmd {
                a,
                b,
                acc_addr,
                m: BLOCK,
                n: BLOCK,
                k,
                accumulate,
                dtype,
            }),
        };

    let mut warps = Vec::new();
    for cluster in partition.cluster_ids().collect::<Vec<_>>() {
        let cluster_rows = partition.count(cluster);
        let gbase = crate::cluster_addr_offset(cluster);

        // ---- Orchestrator warp (core 0, warp 0) --------------------------------
        let mut orch = ProgramBuilder::new();
        orch.repeat(cluster_rows, |b| {
            // Load the Q row block and the first K/V column blocks.
            b.op(dma(
                MemLoc::global(AddrExpr::streaming(GLOBAL_Q + gbase, tile_bytes)),
                MemLoc::shared(AddrExpr::fixed(SMEM_Q)),
                tile_bytes,
            ));
            b.op(dma(
                MemLoc::global(AddrExpr::streaming(GLOBAL_K + gbase, tile_bytes)),
                MemLoc::shared(AddrExpr::double_buffered(SMEM_K0, SMEM_KV_STRIDE)),
                tile_bytes,
            ));
            b.op(dma(
                MemLoc::global(AddrExpr::streaming(GLOBAL_V + gbase, tile_bytes)),
                MemLoc::shared(AddrExpr::double_buffered(SMEM_V0, SMEM_KV_STRIDE)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });

            // Inner loop over K/V column blocks (Listing 1).
            b.repeat(col_blocks, |b| {
                // Block until all of the previous iteration's asynchronous
                // operations have completed, then synchronize the cluster.
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 0 });
                // GEMM-2: O += P·V (previous iteration's probability tile).
                b.op(compute(
                    AddrExpr::double_buffered(SMEM_S0, SMEM_S_STRIDE),
                    AddrExpr::double_buffered(SMEM_V0, SMEM_KV_STRIDE),
                    ACC_O,
                    shape.head_dim,
                    true,
                ));
                // GEMM-1: S = Q·Kᵀ for this iteration.
                b.op(compute(
                    AddrExpr::fixed(SMEM_Q),
                    AddrExpr::double_buffered(SMEM_K0, SMEM_KV_STRIDE),
                    ACC_S,
                    shape.head_dim,
                    false,
                ));
                // Prefetch the next K and V column blocks.
                b.op(dma(
                    MemLoc::global(AddrExpr::streaming(GLOBAL_K + gbase, tile_bytes)),
                    MemLoc::shared(AddrExpr::double_buffered(SMEM_K0, SMEM_KV_STRIDE)),
                    tile_bytes,
                ));
                b.op(dma(
                    MemLoc::global(AddrExpr::streaming(GLOBAL_V + gbase, tile_bytes)),
                    MemLoc::shared(AddrExpr::double_buffered(SMEM_V0, SMEM_KV_STRIDE)),
                    tile_bytes,
                ));
                // Wait for GEMM-1 (all but the two most recent DMAs), then drain
                // the fresh score tile into shared memory for the softmax warps.
                b.op(WarpOp::FenceAsync { max_outstanding: 2 });
                b.op(dma(
                    MemLoc::accumulator(AddrExpr::fixed(ACC_S)),
                    MemLoc::shared(AddrExpr::double_buffered(SMEM_S0, SMEM_S_STRIDE)),
                    score_bytes,
                ));
                b.op(WarpOp::Barrier { id: 1 });
            });

            // Epilogue: write the accumulated O row block to global memory.
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(dma(
                MemLoc::accumulator(AddrExpr::fixed(ACC_O)),
                MemLoc::global(AddrExpr::streaming(GLOBAL_O + gbase, tile_bytes)),
                tile_bytes,
            ));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Barrier { id: 2 });
        });
        let orchestrator = Arc::new(orch.build());

        // ---- Softmax warps ------------------------------------------------------
        // Every warp processes its slice of the 64×64 score tile: running row
        // max, 2nd-order Taylor exponential, running sum, and the rescale of the
        // output tile.
        let elems = u64::from(BLOCK) * u64::from(BLOCK);
        let elems_per_warp = elems / total_warps;
        let vector_iters = (elems_per_warp / u64::from(lanes)).max(1);
        let build_softmax = |warp_index: u64| {
            let mut p = ProgramBuilder::new();
            p.repeat(cluster_rows, |b| {
                b.repeat(col_blocks, |b| {
                    b.op(WarpOp::Barrier { id: 0 });
                    // Online softmax over this warp's slice of S.
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op_n(
                            SOFTMAX_FLOPS_PER_ELEM,
                            WarpOp::Fpu {
                                rf_reads: 2,
                                rf_writes: 1,
                                flops_per_lane: 1,
                            },
                        );
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_S0 + offset, SMEM_S_STRIDE),
                                lanes,
                            ),
                        });
                    }
                    // Rescale this warp's slice of the O staging tile by the
                    // updated row statistics.
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        b.op(WarpOp::Fpu {
                            rf_reads: 2,
                            rf_writes: 1,
                            flops_per_lane: 2,
                        });
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(SMEM_O + offset),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::Barrier { id: 1 });
                });
                b.op(WarpOp::Barrier { id: 2 });
            });
            Arc::new(p.build())
        };

        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let program = if warp_index == 0 {
                    Arc::clone(&orchestrator)
                } else {
                    build_softmax(warp_index)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!(
                "flash_attention_virgo_{shape}{}",
                crate::cluster_suffix(clusters)
            ),
            shape.gemm_mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_commands_cover_both_gemms() {
        let shape = AttentionShape::paper_default();
        let kernel = build(&GpuConfig::virgo().to_fp32(), shape);
        let mut macs = 0u64;
        let mut cursor = kernel.warps[0].program.cursor();
        while let Some((_, op)) = cursor.next_op() {
            if let WarpOp::MmioWrite {
                device: DeviceId::MatrixUnit(_),
                cmd,
            } = op
            {
                if let Some(c) = cmd.as_matrix_compute() {
                    macs += c.mac_ops();
                }
            }
        }
        assert_eq!(macs, shape.gemm_mac_ops());
    }

    #[test]
    fn softmax_warps_do_fpu_work() {
        let kernel = build(
            &GpuConfig::virgo().to_fp32(),
            AttentionShape::paper_default(),
        );
        let mut cursor = kernel.warps[10].program.cursor();
        let mut fpu = 0u64;
        while let Some((_, op)) = cursor.next_op() {
            if matches!(op, WarpOp::Fpu { .. }) {
                fpu += 1;
            }
        }
        assert!(fpu > 0);
    }
}
