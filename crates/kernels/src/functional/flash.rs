//! Functional FlashAttention: naive reference and the blocked online-softmax
//! formulation used by the kernel mapping.

use super::matrix::Matrix;

/// Second-order Taylor approximation of `exp(x)` around zero,
/// `1 + x + x²/2`, clamped to be non-negative.
///
/// The Vortex core has no special-function unit, so the paper's kernels use
/// this approximation (Section 5.3); the functional model uses it too so the
/// blocked and kernel-level computations agree.
pub fn taylor_exp2(x: f32) -> f32 {
    (1.0 + x + 0.5 * x * x).max(0.0)
}

/// Naive softmax-attention reference: `softmax(Q·Kᵀ / sqrt(d)) · V`, using
/// the same Taylor-approximated exponential as the kernels.
///
/// # Panics
///
/// Panics if the Q/K/V shapes are inconsistent.
pub fn naive_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "K and V must share the sequence length");
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let scores = q.matmul(&k.transposed());
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let row_max = (0..k.rows())
            .map(|j| scores.get(i, j) * scale)
            .fold(f32::NEG_INFINITY, f32::max);
        let weights: Vec<f32> = (0..k.rows())
            .map(|j| taylor_exp2(scores.get(i, j) * scale - row_max))
            .collect();
        let sum: f32 = weights.iter().sum();
        for c in 0..v.cols() {
            let mut acc = 0.0;
            for (j, &w) in weights.iter().enumerate() {
                acc += w * v.get(j, c);
            }
            out.set(i, c, acc / sum);
        }
    }
    out
}

/// Blocked FlashAttention with online softmax: K/V are visited in
/// `block`-row chunks, maintaining running row maxima, running sums and a
/// rescaled output accumulator — the exact loop structure the Virgo kernel
/// pipelines across the matrix unit, the SIMT cores and the DMA engine.
///
/// # Panics
///
/// Panics if the sequence length is not divisible by `block`, or the shapes
/// are inconsistent.
pub fn flash_attention_blocked(q: &Matrix, k: &Matrix, v: &Matrix, block: usize) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "K and V must share the sequence length");
    assert!(
        block > 0 && k.rows().is_multiple_of(block),
        "sequence not divisible by block"
    );
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let seq = k.rows();

    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let mut row_max = f32::NEG_INFINITY;
        let mut row_sum = 0.0f32;
        let mut acc = vec![0.0f32; v.cols()];

        for block_start in (0..seq).step_by(block) {
            // GEMM-1: the score slice for this K block.
            let scores: Vec<f32> = (block_start..block_start + block)
                .map(|j| {
                    let mut s = 0.0;
                    for x in 0..d {
                        s += q.get(i, x) * k.get(j, x);
                    }
                    s * scale
                })
                .collect();
            // Online softmax update (SIMT-core work in the kernel).
            let block_max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let new_max = row_max.max(block_max);
            let correction = taylor_exp2(row_max - new_max);
            let weights: Vec<f32> = scores.iter().map(|&s| taylor_exp2(s - new_max)).collect();
            let block_sum: f32 = weights.iter().sum();
            row_sum = row_sum * correction + block_sum;
            // Rescale the accumulator, then GEMM-2: acc += P · V-block.
            for value in &mut acc {
                *value *= correction;
            }
            for (offset, &w) in weights.iter().enumerate() {
                let j = block_start + offset;
                for (c, value) in acc.iter_mut().enumerate() {
                    *value += w * v.get(j, c);
                }
            }
            row_max = new_max;
        }
        for (c, &value) in acc.iter().enumerate() {
            out.set(i, c, value / row_sum);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qkv(seq: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random(seq, d, seed),
            Matrix::random(seq, d, seed + 1),
            Matrix::random(seq, d, seed + 2),
        )
    }

    #[test]
    fn taylor_exp_is_close_to_exp_near_zero() {
        for x in [-0.5f32, -0.1, 0.0, 0.1, 0.5] {
            assert!((taylor_exp2(x) - x.exp()).abs() < 0.03, "x = {x}");
        }
        assert!(
            taylor_exp2(-10.0) >= 0.0,
            "approximation must stay non-negative"
        );
    }

    #[test]
    fn blocked_attention_matches_naive_reference() {
        let (q, k, v) = qkv(32, 16, 11);
        let reference = naive_attention(&q, &k, &v);
        for block in [8, 16, 32] {
            let blocked = flash_attention_blocked(&q, &k, &v, block);
            let diff = reference.max_abs_diff(&blocked);
            // The 2nd-order Taylor exponential is not exactly multiplicative
            // (taylor(a+b) != taylor(a)·taylor(b)), so the online rescaling
            // introduces a small additional error versus the one-shot
            // reference; the bound below reflects that approximation, not a
            // bug in the blocking.
            assert!(diff < 1e-1, "block {block}: diff {diff}");
        }
    }

    #[test]
    fn single_block_equals_full_attention() {
        let (q, k, v) = qkv(16, 8, 3);
        let reference = naive_attention(&q, &k, &v);
        let blocked = flash_attention_blocked(&q, &k, &v, 16);
        assert!(reference.max_abs_diff(&blocked) < 1e-4);
    }

    #[test]
    fn paper_shape_scaled_down_is_stable() {
        // 1024×64 scaled down by 8: 128 sequence, 64 head dim, 64 block.
        let (q, k, v) = qkv(128, 64, 21);
        let reference = naive_attention(&q, &k, &v);
        let blocked = flash_attention_blocked(&q, &k, &v, 64);
        assert!(reference.max_abs_diff(&blocked) < 5e-2);
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        // With the Taylor weights all non-negative and normalized, every
        // output element must lie within the range of V's column values.
        let (q, k, v) = qkv(24, 8, 5);
        let out = flash_attention_blocked(&q, &k, &v, 8);
        for c in 0..v.cols() {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for r in 0..v.rows() {
                lo = lo.min(v.get(r, c));
                hi = hi.max(v.get(r, c));
            }
            for r in 0..out.rows() {
                let x = out.get(r, c);
                assert!(
                    x >= lo - 1e-3 && x <= hi + 1e-3,
                    "({r},{c}) = {x} not in [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_block_panics() {
        let (q, k, v) = qkv(20, 8, 9);
        let _ = flash_attention_blocked(&q, &k, &v, 16);
    }
}
