//! Dense matrices and the tiled GEMM reference.

use virgo_sim::SplitMix64;

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with deterministic pseudo-random values in
    /// `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        let mut rng = SplitMix64::new(seed);
        for v in &mut m.data {
            *v = rng.next_f32_signed();
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Naive `O(n³)` matrix multiplication: `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Largest absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shapes must match"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Computes `A · B` with the same thread-block tiling the Virgo kernel uses:
/// the output is partitioned into `tile_m × tile_n` tiles, each accumulated
/// over `tile_k`-wide K chunks (the order of floating-point accumulation
/// matches the kernel's double-buffered K loop).
///
/// # Panics
///
/// Panics if the matrix dimensions are not divisible by the tile sizes.
pub fn tiled_gemm(a: &Matrix, b: &Matrix, tile_m: usize, tile_n: usize, tile_k: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must match");
    assert!(
        a.rows().is_multiple_of(tile_m)
            && b.cols().is_multiple_of(tile_n)
            && a.cols().is_multiple_of(tile_k),
        "dimensions must be divisible by the tile sizes"
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for tm in (0..a.rows()).step_by(tile_m) {
        for tn in (0..b.cols()).step_by(tile_n) {
            // The accumulator tile lives in the matrix unit's accumulator
            // memory across the K loop.
            let mut acc = vec![0.0f32; tile_m * tile_n];
            for tk in (0..a.cols()).step_by(tile_k) {
                for i in 0..tile_m {
                    for k in 0..tile_k {
                        let a_val = a.get(tm + i, tk + k);
                        for j in 0..tile_n {
                            acc[i * tile_n + j] += a_val * b.get(tk + k, tn + j);
                        }
                    }
                }
            }
            for i in 0..tile_m {
                for j in 0..tile_n {
                    c.set(tm + i, tn + j, acc[i * tile_n + j]);
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matmul_identity() {
        let mut eye = Matrix::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        let a = Matrix::random(4, 4, 1);
        let prod = a.matmul(&eye);
        assert!(a.max_abs_diff(&prod) < 1e-6);
    }

    #[test]
    fn tiled_gemm_matches_naive() {
        let a = Matrix::random(64, 32, 2);
        let b = Matrix::random(32, 48, 3);
        let naive = a.matmul(&b);
        let tiled = tiled_gemm(&a, &b, 16, 16, 8);
        assert!(naive.max_abs_diff(&tiled) < 1e-4);
    }

    #[test]
    fn tiled_gemm_with_virgo_tile_shape() {
        // The Virgo thread-block tile ratio (128:64:128) scaled down 8x.
        let a = Matrix::random(32, 32, 4);
        let b = Matrix::random(32, 16, 5);
        let naive = a.matmul(&b);
        let tiled = tiled_gemm(&a, &b, 16, 8, 16);
        assert!(naive.max_abs_diff(&tiled) < 1e-4);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::random(5, 9, 6);
        assert!(a.max_abs_diff(&a.transposed().transposed()) < 1e-9);
    }

    #[test]
    fn random_matrices_are_deterministic_per_seed() {
        assert_eq!(Matrix::random(8, 8, 7), Matrix::random(8, 8, 7));
        assert!(Matrix::random(8, 8, 7).max_abs_diff(&Matrix::random(8, 8, 8)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
