//! Functional (numerical) reference model.
//!
//! The cycle-level simulator is trace-free: it models timing and energy but
//! carries no matrix data. This module implements the *same tilings and
//! schedules* the kernels use — thread-block tiling with K-accumulation for
//! GEMM, and block-wise online softmax with a 2nd-order Taylor exponential
//! for FlashAttention — over real `f32` data, and validates them against
//! naive references. This separates "is the mapping algorithmically correct"
//! from "how long does it take", the classic functional/timing split of
//! trace-driven simulators.

pub mod flash;
pub mod matrix;

pub use flash::{flash_attention_blocked, naive_attention, taylor_exp2};
pub use matrix::{tiled_gemm, Matrix};
