//! GEMM kernels for the tightly-coupled (Volta-style / Ampere-style) tensor
//! cores (Section 5.1.1 / 5.1.2).
//!
//! The mapping follows the classic register-file-resident warp tiling:
//!
//! * thread-block tile 64×128, K-chunk 32, double-buffered in shared memory,
//! * each of the 64 warps owns an 8×16 accumulator tile in its register file
//!   (the 1 KiB per-warp register budget of Section 5.1.1 — two 8×16 FP16
//!   operand fragments plus an 8×8 FP32 accumulator per `wmma`),
//! * each `wmma` of shape (8,8,16) executes as 16 synchronous `HMMA` steps,
//!   with the operand fragments loaded from shared memory into registers and
//!   one address-generation instruction per fragment load,
//! * in the Volta-style variant the warps themselves copy the operand tiles
//!   from global to shared memory; in the Ampere-style variant the cluster
//!   DMA performs the copy asynchronously (Asynchronous Data Copy).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp,
};

use crate::workload::GemmShape;

use super::{GLOBAL_A, GLOBAL_B, GLOBAL_C};

use crate::{cluster_addr_offset, cluster_suffix};

/// Thread-block tile M dimension.
pub const TILE_M: u32 = 64;
/// Thread-block tile N dimension.
pub const TILE_N: u32 = 128;
/// Thread-block K chunk.
pub const TILE_K: u32 = 32;
/// `wmma` instruction tile (Section 5.1.1).
pub const WMMA: (u32, u32, u32) = (8, 8, 16);

/// Shared-memory layout: double-buffered A and B tiles.
const SMEM_A0: u64 = 0x0;
const SMEM_A_STRIDE: u64 = 0x1000; // 4 KiB per A buffer (64×32 fp16)
const SMEM_B0: u64 = 0x8000;
const SMEM_B_STRIDE: u64 = 0x2000; // 8 KiB per B buffer (32×128 fp16)

/// Builds the Volta-style (`use_dma == false`) or Ampere-style
/// (`use_dma == true`) GEMM kernel, splitting the output-tile space across
/// the configuration's clusters.
///
/// # Panics
///
/// Panics if the shape is not divisible by the 64×128×32 thread-block tile.
pub fn build(config: &GpuConfig, shape: GemmShape, use_dma: bool) -> Kernel {
    assert!(
        shape.m.is_multiple_of(TILE_M)
            && shape.n.is_multiple_of(TILE_N)
            && shape.k.is_multiple_of(TILE_K),
        "GEMM shape {shape} not divisible by the {TILE_M}x{TILE_N}x{TILE_K} tile"
    );
    let out_tiles = u64::from(shape.m / TILE_M) * u64::from(shape.n / TILE_N);
    let kt = u64::from(shape.k / TILE_K);
    let clusters = config.active_clusters();
    let partition = config.partition(out_tiles);
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);

    let a_tile_bytes = u64::from(TILE_M) * u64::from(TILE_K) * elem;
    let b_tile_bytes = u64::from(TILE_K) * u64::from(TILE_N) * elem;
    let copy_bytes_per_warp = (a_tile_bytes + b_tile_bytes) / total_warps;
    let copy_loads = copy_bytes_per_warp / (u64::from(lanes) * 4);

    // Per warp and K-chunk: an 8×16 output tile over k=32 needs
    // (8/8)·(16/8)·(32/16) = 4 wmma operations, sharing 2 A fragments.
    let wmmas_per_iter = 4u32;
    let a_frag_loads = 8u32; // 8×16 fp16 fragment = 256 B = 8 lane-wide loads
    let b_frag_loads = 8u32;
    let hmma_steps_per_wmma = (WMMA.0 * WMMA.1 * WMMA.2) / 64;
    let hmma_macs = 64u32;

    let dma_tile_loads = |b: &mut ProgramBuilder, base: u64| {
        for (global, smem_base, smem_stride, bytes) in [
            (GLOBAL_A + base, SMEM_A0, SMEM_A_STRIDE, a_tile_bytes),
            (GLOBAL_B + base, SMEM_B0, SMEM_B_STRIDE, b_tile_bytes),
        ] {
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::global(AddrExpr::streaming(global, bytes)),
                    MemLoc::shared(AddrExpr::double_buffered(smem_base, smem_stride)),
                    bytes,
                )),
            });
        }
    };

    let build_program = |leader: bool, warp_index: u64, cluster_tiles: u64, base: u64| {
        let mut p = ProgramBuilder::new();
        p.repeat(cluster_tiles, |b| {
            // Ampere-style: the leader programs the Asynchronous Data Copy
            // for the first K chunk before entering the pipelined loop.
            if use_dma && leader {
                dma_tile_loads(b, base);
            }
            b.repeat(kt, |b| {
                // ---- Operand delivery: global -> shared -----------------
                if use_dma {
                    if leader {
                        // Wait for the copy of this iteration's operand
                        // tiles, then immediately program the prefetch of the
                        // next K chunk so it overlaps with this iteration's
                        // tensor-core work (double buffering).
                        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                        dma_tile_loads(b, base);
                    }
                } else {
                    // Each warp copies its slice of the A and B tiles with
                    // plain loads and stores through the coalescer and L1.
                    let slice = copy_bytes_per_warp * warp_index;
                    for i in 0..copy_loads {
                        let offset = slice + i * u64::from(lanes) * 4;
                        b.op(WarpOp::Alu {
                            rf_reads: 2,
                            rf_writes: 1,
                        });
                        b.op(WarpOp::LoadGlobal {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::streaming(
                                    GLOBAL_A + base + offset,
                                    a_tile_bytes + b_tile_bytes,
                                ),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::WaitLoads);
                    for i in 0..copy_loads {
                        let offset =
                            (slice + i * u64::from(lanes) * 4) % (a_tile_bytes + b_tile_bytes);
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(SMEM_A0 + offset, SMEM_A_STRIDE),
                                lanes,
                            ),
                        });
                    }
                }
                b.op(WarpOp::Barrier { id: 0 });

                // ---- Warp-tile compute: 4 wmma, 2 shared A fragments -----
                for wmma in 0..wmmas_per_iter {
                    // A fragment is reused by the two wmmas that share the
                    // same k-chunk (register blocking across N).
                    let loads = if wmma % 2 == 0 {
                        a_frag_loads + b_frag_loads
                    } else {
                        b_frag_loads
                    };
                    for l in 0..loads {
                        b.op(WarpOp::Alu {
                            rf_reads: 2,
                            rf_writes: 1,
                        });
                        let base = if l < a_frag_loads && wmma % 2 == 0 {
                            SMEM_A0 + u64::from(warp_index as u32 % 8) * 512
                        } else {
                            SMEM_B0 + u64::from(warp_index as u32 / 8) * 512
                        };
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::double_buffered(
                                    base + u64::from(l) * u64::from(lanes) * 4,
                                    SMEM_A_STRIDE,
                                ),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::WaitLoads);
                    b.op_n(
                        hmma_steps_per_wmma,
                        WarpOp::HmmaStep {
                            macs: hmma_macs,
                            rf_reads: 4,
                            rf_writes: 2,
                        },
                    );
                }
                b.op(WarpOp::Barrier { id: 1 });
            });

            // ---- Epilogue: write the warp's 8×16 FP32 accumulator tile ---
            let c_words = 8 * 16;
            let c_stores = c_words / lanes;
            for s in 0..c_stores {
                b.op(WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                });
                b.op(WarpOp::StoreGlobal {
                    access: LaneAccess::contiguous_words(
                        AddrExpr::streaming(
                            GLOBAL_C
                                + base
                                + warp_index * u64::from(c_words) * 4
                                + u64::from(s * lanes * 4),
                            u64::from(TILE_M) * u64::from(TILE_N) * 4,
                        ),
                        lanes,
                    ),
                });
            }
            b.op(WarpOp::Barrier { id: 1 });
        });
        Arc::new(p.build())
    };

    let mut warps = Vec::new();
    for cluster in partition.cluster_ids().collect::<Vec<_>>() {
        let cluster_tiles = partition.count(cluster);
        let base = cluster_addr_offset(cluster);
        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let leader = core == 0 && warp == 0;
                warps.push(WarpAssignment::on_cluster(
                    cluster,
                    core,
                    warp,
                    build_program(leader, warp_index, cluster_tiles, base),
                ));
            }
        }
    }

    let style = if use_dma { "ampere" } else { "volta" };
    Kernel::new(
        KernelInfo::new(
            format!("gemm_{style}_{shape}{}", cluster_suffix(clusters)),
            shape.mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_kernel_moves_data_with_simt_instructions() {
        let kernel = build(&GpuConfig::volta_style(), GemmShape::square(256), false);
        let program = &kernel.warps[5].program;
        let mut cursor = program.cursor();
        let (mut global_loads, mut hmma, mut dma) = (0u64, 0u64, 0u64);
        while let Some((_, op)) = cursor.next_op() {
            match op {
                WarpOp::LoadGlobal { .. } => global_loads += 1,
                WarpOp::HmmaStep { .. } => hmma += 1,
                WarpOp::MmioWrite { .. } => dma += 1,
                _ => {}
            }
        }
        assert!(global_loads > 0, "Volta-style copies with SIMT loads");
        assert!(hmma > 0);
        assert_eq!(dma, 0, "Volta-style has no DMA");
    }

    #[test]
    fn ampere_kernel_uses_dma_instead_of_simt_copies() {
        let kernel = build(&GpuConfig::ampere_style(), GemmShape::square(256), true);
        let leader = &kernel.warps[0].program;
        let follower = &kernel.warps[1].program;
        let count = |program: &Arc<virgo_isa::Program>, pred: fn(&WarpOp) -> bool| {
            let mut cursor = program.cursor();
            let mut n = 0u64;
            while let Some((_, op)) = cursor.next_op() {
                if pred(&op) {
                    n += 1;
                }
            }
            n
        };
        assert!(count(leader, |op| matches!(op, WarpOp::MmioWrite { .. })) > 0);
        assert_eq!(
            count(follower, |op| matches!(op, WarpOp::LoadGlobal { .. })),
            0,
            "followers do not copy operand tiles in the Ampere-style kernel"
        );
        assert!(count(follower, |op| matches!(op, WarpOp::HmmaStep { .. })) > 0);
    }

    #[test]
    fn hmma_macs_cover_the_whole_problem() {
        let shape = GemmShape::square(256);
        let kernel = build(&GpuConfig::volta_style(), shape, false);
        let mut total_macs = 0u64;
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::HmmaStep { macs, .. } = op {
                    total_macs += u64::from(macs);
                }
            }
        }
        assert_eq!(total_macs, shape.mac_ops());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_shape_is_rejected() {
        let _ = build(
            &GpuConfig::volta_style(),
            GemmShape {
                m: 100,
                n: 128,
                k: 32,
            },
            false,
        );
    }
}
