//! The Hopper-style GEMM kernel: asynchronous `wgmma` operations with
//! operands in shared memory (Section 5.1.3).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp, WgmmaOp,
};

use crate::workload::GemmShape;

use super::{GLOBAL_A, GLOBAL_B, GLOBAL_C};

use crate::{cluster_addr_offset, cluster_suffix};

/// Thread-block tile M dimension.
pub const TILE_M: u32 = 64;
/// Thread-block tile N dimension.
pub const TILE_N: u32 = 128;
/// Thread-block K chunk.
pub const TILE_K: u32 = 32;
/// Per-warp `wgmma` tile (Section 5.1.3: the 1 KiB register budget holds a
/// single 16×16 FP32 accumulator; the K extent is 32).
pub const WGMMA: (u32, u32, u32) = (16, 16, 32);

/// Shared-memory layout: double-buffered A and B tiles.
const SMEM_A0: u64 = 0x0;
const SMEM_A_STRIDE: u64 = 0x1000; // 4 KiB per A buffer (64×32 fp16)
const SMEM_B0: u64 = 0x8000;
const SMEM_B_STRIDE: u64 = 0x2000; // 8 KiB per B buffer (32×128 fp16)

/// Builds the Hopper-style GEMM kernel, splitting the output-tile space
/// across the configuration's clusters.
///
/// The cluster DMA stages the operand tiles into shared memory; each warp
/// then initiates one asynchronous `wgmma` per K chunk, letting the unit's
/// access frontend stream the operands while the warp waits on
/// `wgmma.wait_group` before the next iteration.
///
/// # Panics
///
/// Panics if the shape is not divisible by the 64×128×32 thread-block tile.
pub fn build(config: &GpuConfig, shape: GemmShape) -> Kernel {
    assert!(
        shape.m.is_multiple_of(TILE_M)
            && shape.n.is_multiple_of(TILE_N)
            && shape.k.is_multiple_of(TILE_K),
        "GEMM shape {shape} not divisible by the {TILE_M}x{TILE_N}x{TILE_K} tile"
    );
    let out_tiles = u64::from(shape.m / TILE_M) * u64::from(shape.n / TILE_N);
    let kt = u64::from(shape.k / TILE_K);
    let clusters = config.active_clusters();
    let partition = config.partition(out_tiles);
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;

    let a_tile_bytes = u64::from(TILE_M) * u64::from(TILE_K) * elem;
    let b_tile_bytes = u64::from(TILE_K) * u64::from(TILE_N) * elem;

    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);
    // 64×128 outputs over 16×16 warp tiles = 32 warp tiles, exactly one per
    // warp in the 4-core Hopper-style cluster.
    let warp_tiles = u64::from(TILE_M / WGMMA.0) * u64::from(TILE_N / WGMMA.1);
    let tiles_per_warp = warp_tiles.div_ceil(total_warps).max(1);

    let dma_tile_loads = |b: &mut ProgramBuilder, base: u64| {
        for (global, smem_base, smem_stride, bytes) in [
            (GLOBAL_A + base, SMEM_A0, SMEM_A_STRIDE, a_tile_bytes),
            (GLOBAL_B + base, SMEM_B0, SMEM_B_STRIDE, b_tile_bytes),
        ] {
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::global(AddrExpr::streaming(global, bytes)),
                    MemLoc::shared(AddrExpr::double_buffered(smem_base, smem_stride)),
                    bytes,
                )),
            });
        }
    };

    let build_program = |leader: bool, warp_index: u64, cluster_tiles: u64, base: u64| {
        let mut p = ProgramBuilder::new();
        p.repeat(cluster_tiles, |b| {
            // The leader stages the first K chunk before the pipelined loop.
            if leader {
                dma_tile_loads(b, base);
            }
            b.repeat(kt, |b| {
                if leader {
                    // Wait for this iteration's operands, then prefetch the
                    // next chunk so the TMA-style copy overlaps with the
                    // wgmma work of this iteration.
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    dma_tile_loads(b, base);
                }
                b.op(WarpOp::Barrier { id: 0 });

                // Each warp initiates its asynchronous wgmma operation(s) on
                // its slice of the shared-memory tiles, then waits for the
                // group to drain before reusing the buffer.
                b.repeat(tiles_per_warp, |b| {
                    b.op(WarpOp::Alu {
                        rf_reads: 2,
                        rf_writes: 1,
                    });
                    b.op(WarpOp::Alu {
                        rf_reads: 2,
                        rf_writes: 1,
                    });
                    let a_slice = SMEM_A0
                        + (warp_index % u64::from(TILE_M / WGMMA.0))
                            * u64::from(WGMMA.0 * TILE_K)
                            * elem;
                    let b_slice = SMEM_B0
                        + (warp_index / u64::from(TILE_M / WGMMA.0))
                            * u64::from(WGMMA.1 * TILE_K)
                            * elem;
                    b.op(WarpOp::WgmmaInit(WgmmaOp {
                        a: AddrExpr::double_buffered(a_slice, SMEM_A_STRIDE),
                        b: AddrExpr::double_buffered(b_slice, SMEM_B_STRIDE),
                        m: WGMMA.0,
                        n: WGMMA.1,
                        k: WGMMA.2,
                        dtype,
                    }));
                });
                b.op(WarpOp::WgmmaWait);
                b.op(WarpOp::Barrier { id: 1 });
            });

            // Epilogue: each warp writes its 16×16 FP32 accumulator tile from
            // the register file to global memory.
            let c_words = u64::from(WGMMA.0) * u64::from(WGMMA.1) * tiles_per_warp;
            let c_stores = (c_words / u64::from(lanes)) as u32;
            for s in 0..c_stores {
                b.op(WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                });
                b.op(WarpOp::StoreGlobal {
                    access: LaneAccess::contiguous_words(
                        AddrExpr::streaming(
                            GLOBAL_C
                                + base
                                + warp_index * c_words * 4
                                + u64::from(s) * u64::from(lanes) * 4,
                            u64::from(TILE_M) * u64::from(TILE_N) * 4,
                        ),
                        lanes,
                    ),
                });
            }
            b.op(WarpOp::Barrier { id: 1 });
        });
        Arc::new(p.build())
    };

    let mut warps = Vec::new();
    for cluster in partition.cluster_ids().collect::<Vec<_>>() {
        let cluster_tiles = partition.count(cluster);
        let base = cluster_addr_offset(cluster);
        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let leader = core == 0 && warp == 0;
                warps.push(WarpAssignment::on_cluster(
                    cluster,
                    core,
                    warp,
                    build_program(leader, warp_index, cluster_tiles, base),
                ));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!("gemm_hopper_{shape}{}", cluster_suffix(clusters)),
            shape.mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgmma_macs_cover_the_whole_problem() {
        let shape = GemmShape::square(256);
        let config = GpuConfig::hopper_style();
        let kernel = build(&config, shape);
        let mut total = 0u64;
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::WgmmaInit(op) = op {
                    total += op.mac_ops();
                }
            }
        }
        assert_eq!(total, shape.mac_ops());
    }

    #[test]
    fn only_the_leader_warp_programs_the_dma() {
        let kernel = build(&GpuConfig::hopper_style(), GemmShape::square(256));
        let has_dma = |i: usize| {
            let mut cursor = kernel.warps[i].program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if matches!(op, WarpOp::MmioWrite { .. }) {
                    return true;
                }
            }
            false
        };
        assert!(has_dma(0));
        assert!(!has_dma(1));
        assert!(!has_dma(31));
    }

    #[test]
    fn instruction_count_sits_between_virgo_and_volta() {
        let shape = GemmShape::square(256);
        let hopper = build(&GpuConfig::hopper_style(), shape).dynamic_instructions();
        let volta = super::super::coupled::build(&GpuConfig::volta_style(), shape, false)
            .dynamic_instructions();
        let virgo = super::super::virgo::build(&GpuConfig::virgo(), shape).dynamic_instructions();
        assert!(virgo < hopper, "virgo {virgo} < hopper {hopper}");
        assert!(hopper < volta, "hopper {hopper} < volta {volta}");
    }
}
