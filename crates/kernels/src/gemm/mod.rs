//! GEMM kernel generators, one per design point (Section 5.3).
//!
//! Each generator produces the per-warp instruction streams that a compiled
//! kernel would present to the hardware, following the mapping the paper
//! describes for that design point:
//!
//! * [`coupled`] — Volta-style and Ampere-style kernels built around
//!   synchronous `HMMA` steps and register-file-resident warp tiles; the
//!   Ampere variant offloads the global→shared copy to the cluster DMA.
//! * [`hopper`] — the operand-decoupled kernel built around asynchronous
//!   `wgmma` operations reading operands from shared memory.
//! * [`virgo`] — the disaggregated kernel, where a single warp orchestrates
//!   MMIO commands to the cluster DMA and matrix unit and all warps join the
//!   cluster-wide barriers,
//! * [`split_k`] — the producer-consumer split-K variant whose cross-cluster
//!   partial-sum reduction travels either over the inter-cluster DSM fabric
//!   or through global memory (the A/B pair of the DSM study).

pub mod coupled;
pub mod hopper;
pub mod split_k;
pub mod virgo;

use ::virgo::{DesignKind, GpuConfig};
use virgo_isa::Kernel;

use crate::workload::GemmShape;

/// Global-memory base address of the A matrix.
pub(crate) const GLOBAL_A: u64 = 0x1000_0000;
/// Global-memory base address of the B matrix.
pub(crate) const GLOBAL_B: u64 = 0x2000_0000;
/// Global-memory base address of the C matrix.
pub(crate) const GLOBAL_C: u64 = 0x3000_0000;

/// Builds the GEMM kernel optimized for `config`'s design point.
///
/// # Panics
///
/// Panics if the problem shape is not divisible by the design's thread-block
/// tile (all paper sizes are).
pub fn build_gemm(config: &GpuConfig, shape: GemmShape) -> Kernel {
    match config.design {
        DesignKind::VoltaStyle => coupled::build(config, shape, false),
        DesignKind::AmpereStyle => coupled::build(config, shape, true),
        DesignKind::HopperStyle => hopper::build(config, shape),
        DesignKind::Virgo => virgo::build(config, shape),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ::virgo::DesignKind;

    #[test]
    fn every_design_produces_a_kernel() {
        let shape = GemmShape::square(256);
        for design in DesignKind::all() {
            let config = GpuConfig::for_design(design);
            let kernel = build_gemm(&config, shape);
            assert!(!kernel.warps.is_empty(), "{design}");
            assert_eq!(kernel.info.total_macs, shape.mac_ops(), "{design}");
            assert!(kernel.dynamic_instructions() > 0, "{design}");
        }
    }

    #[test]
    fn virgo_kernel_has_far_fewer_instructions_than_volta() {
        // Section 6.1.1: retired instructions in Virgo are ~0.5% of the
        // Volta-style design. The static kernels should already show an
        // enormous gap.
        let shape = GemmShape::square(256);
        let volta = build_gemm(&GpuConfig::volta_style(), shape);
        let virgo = build_gemm(&GpuConfig::virgo(), shape);
        let ratio = virgo.dynamic_instructions() as f64 / volta.dynamic_instructions() as f64;
        assert!(ratio < 0.05, "instruction ratio {ratio}");
    }

    #[test]
    fn warp_counts_match_cluster_shape() {
        let shape = GemmShape::square(256);
        assert_eq!(build_gemm(&GpuConfig::volta_style(), shape).warps.len(), 64);
        assert_eq!(
            build_gemm(&GpuConfig::hopper_style(), shape).warps.len(),
            32
        );
        assert_eq!(build_gemm(&GpuConfig::virgo(), shape).warps.len(), 64);
    }
}
