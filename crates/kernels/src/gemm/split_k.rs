//! Producer-consumer split-K GEMM across clusters.
//!
//! Where the plain multi-cluster Virgo GEMM ([`super::virgo`]) splits the
//! *output-tile* grid (clusters never share data), this kernel splits the
//! *reduction* dimension: every cluster computes a partial sum of every
//! output tile over its own K-slice, and the partials are then reduced on a
//! single consumer cluster (cluster 0). That reduction is exactly the
//! producer-consumer traffic the inter-cluster DSM fabric exists for, so the
//! kernel is generated in two A/B variants selected by
//! `GpuConfig::dsm.enabled`:
//!
//! * **DSM path** — each producer pushes its partial C tile straight from
//!   its accumulator into the consumer's scratchpad with a `DmaRemote`
//!   command over the fabric; DRAM never sees the partials.
//! * **DRAM path** — each producer stores its partial C tile to a global
//!   scratch region and the consumer loads it back, paying the full
//!   write + read round trip through the shared L2/DRAM back-end.
//!
//! The consumer's SIMT warps then reduce the staged partials with FPU adds
//! and the final tile is written to global memory once — identical in both
//! variants, so any difference in DRAM traffic and cycles is attributable to
//! the reduction path alone. As everywhere in this model, the schedule is
//! static: inter-cluster arrival is modelled by the fabric/DRAM timing, not
//! by cross-cluster synchronization primitives (which the ISA does not
//! have).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, GridPartition, Kernel, KernelInfo, LaneAccess,
    MatrixComputeCmd, MemLoc, MmioCommand, PartitionStrategy, ProgramBuilder, WarpAssignment,
    WarpOp,
};

use crate::workload::GemmShape;

use super::virgo::{TILE_K, TILE_M, TILE_N};
use super::{GLOBAL_A, GLOBAL_B, GLOBAL_C};

use crate::{cluster_addr_offset, cluster_suffix};

/// Global-memory base of the partial-sum scratch region the DRAM path spills
/// through (producer `p` writes its tile-`t` partial at
/// `GLOBAL_PARTIAL + (p - 1) · region + t · tile_bytes`).
pub const GLOBAL_PARTIAL: u64 = 0x8000_0000;

/// Shared-memory double-buffer base addresses (same layout as the plain
/// Virgo GEMM kernel).
const SMEM_A0: u64 = 0x0;
const SMEM_A_STRIDE: u64 = 0x8000;
const SMEM_B0: u64 = 0x1_0000;
const SMEM_B_STRIDE: u64 = 0x4000;

/// Byte address of the consumer's partial-tile staging slot `p`.
///
/// The reduction runs *after* the K-loop of its output tile, when the A/B
/// operand buffers' contents are dead (the next tile refetches them), so
/// the staging area reuses that space instead of growing past the 128 KiB
/// scratchpad: slot 0 (the consumer's own partial, and after reduction the
/// final tile) occupies the first A buffer, and producer partials ping-pong
/// between the second A buffer and the B-buffer pair — producers
/// `p = 1, 3, 5, ...` land at 0x8000 and `p = 2, 4, 6, ...` at 0x1_0000,
/// serializing the reduction over at most two in-flight partials at any
/// cluster count. The per-tile epilogue barrier orders the reduction
/// against the next tile's prefetches within the cluster.
fn stage_slot(p: u64, c_tile_bytes: u64) -> u64 {
    if p == 0 {
        SMEM_A0
    } else {
        SMEM_A_STRIDE + ((p - 1) % 2) * c_tile_bytes
    }
}

/// Builds the split-K GEMM kernel for `shape` on `config`'s clusters,
/// choosing the partial-sum path from `config.dsm.enabled`.
///
/// # Panics
///
/// Panics if the shape is not divisible by the 128×64×128 thread-block tile,
/// if the configuration has fewer than two clusters (split-K needs at least
/// one producer and the consumer), or if the K dimension has fewer tiles
/// than clusters (an empty K-slice).
pub fn build(config: &GpuConfig, shape: GemmShape) -> Kernel {
    assert!(
        shape.m.is_multiple_of(TILE_M)
            && shape.n.is_multiple_of(TILE_N)
            && shape.k.is_multiple_of(TILE_K),
        "GEMM shape {shape} not divisible by the {TILE_M}x{TILE_N}x{TILE_K} tile"
    );
    let clusters = config.clusters.max(1);
    assert!(
        clusters >= 2,
        "split-K GEMM needs at least one producer cluster plus the consumer"
    );
    let kt_total = u64::from(shape.k / TILE_K);
    assert!(
        kt_total >= u64::from(clusters),
        "split-K over {clusters} clusters needs at least {clusters} K-tiles, \
         shape {shape} has {kt_total}"
    );
    let use_dsm = config.dsm.enabled;
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);

    let tiles_m = u64::from(shape.m / TILE_M);
    let tiles_n = u64::from(shape.n / TILE_N);
    let out_tiles = tiles_m * tiles_n;
    let k_partition = GridPartition::new(kt_total, clusters);

    let a_tile_bytes = u64::from(TILE_M) * u64::from(TILE_K) * elem;
    let b_tile_bytes = u64::from(TILE_K) * u64::from(TILE_N) * elem;
    let c_tile_bytes = u64::from(TILE_M) * u64::from(TILE_N) * 4;
    let partial_region = out_tiles * c_tile_bytes;

    let mmio = |cmd: MmioCommand| WarpOp::MmioWrite {
        device: match cmd {
            MmioCommand::DmaCopy(_) | MmioCommand::DmaRemote(_) => DeviceId::DMA0,
            MmioCommand::MatrixCompute(_) => DeviceId::MATRIX0,
        },
        cmd,
    };

    let mut warps = Vec::new();
    for cluster in 0..clusters {
        let kt = k_partition.count(cluster);
        let base = cluster_addr_offset(cluster);

        let dma_a = mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(AddrExpr::streaming(GLOBAL_A + base, a_tile_bytes)),
            MemLoc::shared(AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE)),
            a_tile_bytes,
        )));
        let dma_b = mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::global(AddrExpr::streaming(GLOBAL_B + base, b_tile_bytes)),
            MemLoc::shared(AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE)),
            b_tile_bytes,
        )));
        let compute = |accumulate: bool| {
            mmio(MmioCommand::MatrixCompute(MatrixComputeCmd {
                a: AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE),
                b: AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE),
                acc_addr: 0,
                m: TILE_M,
                n: TILE_N,
                k: TILE_K,
                accumulate,
                dtype,
            }))
        };

        // ---- Orchestrator warp ---------------------------------------------
        let mut orch = ProgramBuilder::new();
        orch.repeat(out_tiles, |b| {
            // K-slice loop: the same DMA/compute software pipeline as the
            // plain Virgo GEMM, over this cluster's kt K-tiles.
            b.op(WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            });
            b.op(dma_a);
            b.op(dma_b);
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(compute(false));
            if kt > 1 {
                b.op(dma_a);
                b.op(dma_b);
            }
            if kt > 2 {
                b.repeat(kt - 2, |b| {
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    b.op(WarpOp::Barrier { id: 0 });
                    b.op(compute(true));
                    b.op(dma_a);
                    b.op(dma_b);
                });
            }
            if kt > 1 {
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 0 });
                b.op(compute(true));
            }
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });

            if cluster > 0 {
                // Producer epilogue: ship this tile's partial sum to the
                // consumer — over the DSM fabric, or through global memory.
                let slot = stage_slot(u64::from(cluster), c_tile_bytes);
                let ship = if use_dsm {
                    MmioCommand::DmaRemote(DmaCopyCmd::new(
                        MemLoc::accumulator(AddrExpr::fixed(0)),
                        MemLoc::remote_shared(0, AddrExpr::fixed(slot)),
                        c_tile_bytes,
                    ))
                } else {
                    MmioCommand::DmaCopy(DmaCopyCmd::new(
                        MemLoc::accumulator(AddrExpr::fixed(0)),
                        MemLoc::global(AddrExpr::streaming(
                            GLOBAL_PARTIAL + (u64::from(cluster) - 1) * partial_region,
                            c_tile_bytes,
                        )),
                        c_tile_bytes,
                    ))
                };
                b.op(mmio(ship));
                // The accumulator is overwritten by the next output tile, so
                // the shipment must drain before this tile ends.
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            } else {
                // Consumer epilogue: stage every partial in shared memory,
                // let the follower warps reduce them, and write the final
                // tile to global memory.
                b.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::accumulator(AddrExpr::fixed(0)),
                    MemLoc::shared(AddrExpr::fixed(stage_slot(0, c_tile_bytes))),
                    c_tile_bytes,
                ))));
                if !use_dsm {
                    for p in 1..u64::from(clusters) {
                        b.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                            MemLoc::global(AddrExpr::streaming(
                                GLOBAL_PARTIAL + (p - 1) * partial_region,
                                c_tile_bytes,
                            )),
                            MemLoc::shared(AddrExpr::fixed(stage_slot(p, c_tile_bytes))),
                            c_tile_bytes,
                        ))));
                    }
                }
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 2 });
                // Followers run the FPU reduction between barriers 2 and 3.
                b.op(WarpOp::Barrier { id: 3 });
                b.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::shared(AddrExpr::fixed(stage_slot(0, c_tile_bytes))),
                    MemLoc::global(AddrExpr::streaming(GLOBAL_C + base, c_tile_bytes)),
                    c_tile_bytes,
                ))));
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            }
            b.op(WarpOp::Barrier { id: 1 });
        });
        let orchestrator = Arc::new(orch.build());

        // ---- Follower warps ------------------------------------------------
        let inner_barriers = kt.saturating_sub(1);
        let elems = u64::from(TILE_M) * u64::from(TILE_N);
        let elems_per_warp = elems / total_warps;
        let vector_iters = (elems_per_warp / u64::from(lanes)).max(1);
        let build_follower = |warp_index: u64| {
            let mut f = ProgramBuilder::new();
            f.repeat(out_tiles, |b| {
                b.repeat(inner_barriers, |b| {
                    b.op(WarpOp::Barrier { id: 0 });
                });
                if cluster == 0 {
                    // The cross-cluster reduction: each warp owns a slice of
                    // the output tile, loads its own partial once and folds
                    // every producer's staged partial onto it.
                    b.op(WarpOp::Barrier { id: 2 });
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        b.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(stage_slot(0, c_tile_bytes) + offset),
                                lanes,
                            ),
                        });
                        b.op(WarpOp::WaitLoads);
                        for p in 1..u64::from(clusters) {
                            b.op(WarpOp::LoadShared {
                                access: LaneAccess::contiguous_words(
                                    AddrExpr::fixed(stage_slot(p, c_tile_bytes) + offset),
                                    lanes,
                                ),
                            });
                            b.op(WarpOp::WaitLoads);
                            b.op(WarpOp::Fpu {
                                rf_reads: 2,
                                rf_writes: 1,
                                flops_per_lane: 1,
                            });
                        }
                        b.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(stage_slot(0, c_tile_bytes) + offset),
                                lanes,
                            ),
                        });
                    }
                    b.op(WarpOp::Barrier { id: 3 });
                }
                b.op(WarpOp::Barrier { id: 1 });
            });
            Arc::new(f.build())
        };

        // Producer followers only count barriers, so every warp of a
        // producer cluster shares one program; consumer followers each own a
        // warp_index-dependent slice of the reduction.
        let shared_follower = (cluster != 0).then(|| build_follower(0));
        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let program = if warp_index == 0 {
                    Arc::clone(&orchestrator)
                } else if let Some(shared) = &shared_follower {
                    Arc::clone(shared)
                } else {
                    build_follower(warp_index)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!(
                "gemm_splitk_{shape}{}_{}",
                cluster_suffix(clusters),
                if use_dsm { "dsm" } else { "dram" }
            ),
            shape.mac_ops(),
            dtype,
        ),
        warps,
    )
}

/// Builds the split-K GEMM kernel with an explicit output-tile ownership
/// strategy.
///
/// [`PartitionStrategy::Contiguous`] delegates to [`build`] — the historical
/// single-consumer kernel, byte-identical programs and name, so existing
/// fingerprints and cached reports are untouched. The `Interleaved` and
/// `Rotated` strategies build the *distributed-reduction* variant instead:
/// output-tile ownership is dealt across the clusters by
/// [`GridPartition::owner`], every cluster is both producer and consumer —
/// for each tile the non-owners `DmaRemote` their partial straight into the
/// owner's scratchpad (or spill it through DRAM on the no-DSM path) and the
/// owner's SIMT warps reduce it — so the reduction traffic lands on all N
/// DSM ingress links concurrently instead of funnelling into cluster 0's
/// single link.
///
/// # Panics
///
/// Panics under the same conditions as [`build`].
pub fn build_with_strategy(
    config: &GpuConfig,
    shape: GemmShape,
    strategy: PartitionStrategy,
) -> Kernel {
    if strategy == PartitionStrategy::Contiguous {
        return build(config, shape);
    }
    assert!(
        shape.m.is_multiple_of(TILE_M)
            && shape.n.is_multiple_of(TILE_N)
            && shape.k.is_multiple_of(TILE_K),
        "GEMM shape {shape} not divisible by the {TILE_M}x{TILE_N}x{TILE_K} tile"
    );
    let clusters = config.clusters.max(1);
    assert!(
        clusters >= 2,
        "split-K GEMM needs at least one producer cluster plus the consumer"
    );
    let kt_total = u64::from(shape.k / TILE_K);
    assert!(
        kt_total >= u64::from(clusters),
        "split-K over {clusters} clusters needs at least {clusters} K-tiles, \
         shape {shape} has {kt_total}"
    );
    let use_dsm = config.dsm.enabled;
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());
    let lanes = config.core.lanes;
    let total_warps = u64::from(config.cores) * u64::from(config.core.warps);

    let tiles_m = u64::from(shape.m / TILE_M);
    let tiles_n = u64::from(shape.n / TILE_N);
    let out_tiles = tiles_m * tiles_n;
    let k_partition = GridPartition::new(kt_total, clusters);
    let c_partition = GridPartition::with_strategy(out_tiles, clusters, strategy);

    let a_tile_bytes = u64::from(TILE_M) * u64::from(TILE_K) * elem;
    let b_tile_bytes = u64::from(TILE_K) * u64::from(TILE_N) * elem;
    let c_tile_bytes = u64::from(TILE_M) * u64::from(TILE_N) * 4;
    let partial_region = out_tiles * c_tile_bytes;

    let mmio = |cmd: MmioCommand| WarpOp::MmioWrite {
        device: match cmd {
            MmioCommand::DmaCopy(_) | MmioCommand::DmaRemote(_) => DeviceId::DMA0,
            MmioCommand::MatrixCompute(_) => DeviceId::MATRIX0,
        },
        cmd,
    };

    // Staging slot of a non-owner's partial in the owner's scratchpad: the
    // producers of a tile are numbered by skipping the owner, which keeps
    // the slot indices in the same 1..N ping-pong range the contiguous
    // kernel uses (`stage_slot` folds them onto two buffers).
    let producer_slot = |producer: u32, owner: u32| {
        let p_idx = if producer < owner {
            u64::from(producer)
        } else {
            u64::from(producer - 1)
        };
        stage_slot(p_idx + 1, c_tile_bytes)
    };

    let mut warps = Vec::new();
    for cluster in 0..clusters {
        let kt = k_partition.count(cluster);
        let base = cluster_addr_offset(cluster);

        let compute = |accumulate: bool| {
            mmio(MmioCommand::MatrixCompute(MatrixComputeCmd {
                a: AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE),
                b: AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE),
                acc_addr: 0,
                m: TILE_M,
                n: TILE_N,
                k: TILE_K,
                accumulate,
                dtype,
            }))
        };

        // ---- Orchestrator warp ---------------------------------------------
        // Roles rotate per output tile, so the tile loop is unrolled into
        // static ops instead of a `repeat` (the K pipeline inside each tile
        // still uses one). Each static DMA executes once, so the operand
        // streams carry explicit per-tile bases.
        let mut orch = ProgramBuilder::new();
        for tile in 0..out_tiles {
            let owner = c_partition.owner(tile);
            let a_base = GLOBAL_A + base + tile * kt * a_tile_bytes;
            let b_base = GLOBAL_B + base + tile * kt * b_tile_bytes;
            let dma_a = |step: u64| {
                mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::global(AddrExpr::streaming(
                        a_base + step * a_tile_bytes,
                        a_tile_bytes,
                    )),
                    MemLoc::shared(AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE)),
                    a_tile_bytes,
                )))
            };
            let dma_b = |step: u64| {
                mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::global(AddrExpr::streaming(
                        b_base + step * b_tile_bytes,
                        b_tile_bytes,
                    )),
                    MemLoc::shared(AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE)),
                    b_tile_bytes,
                )))
            };

            orch.op(WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            });
            orch.op(dma_a(0));
            orch.op(dma_b(0));
            orch.op(WarpOp::FenceAsync { max_outstanding: 0 });
            orch.op(compute(false));
            if kt > 1 {
                orch.op(dma_a(1));
                orch.op(dma_b(1));
            }
            if kt > 2 {
                orch.repeat(kt - 2, |b| {
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    b.op(WarpOp::Barrier { id: 0 });
                    b.op(compute(true));
                    b.op(dma_a(2));
                    b.op(dma_b(2));
                });
            }
            if kt > 1 {
                orch.op(WarpOp::FenceAsync { max_outstanding: 0 });
                orch.op(WarpOp::Barrier { id: 0 });
                orch.op(compute(true));
            }
            orch.op(WarpOp::FenceAsync { max_outstanding: 0 });

            if cluster != owner {
                // Producer for this tile: ship the partial into the owner's
                // scratchpad over the fabric, or spill it through DRAM.
                let slot = producer_slot(cluster, owner);
                let ship = if use_dsm {
                    MmioCommand::DmaRemote(DmaCopyCmd::new(
                        MemLoc::accumulator(AddrExpr::fixed(0)),
                        MemLoc::remote_shared(owner, AddrExpr::fixed(slot)),
                        c_tile_bytes,
                    ))
                } else {
                    MmioCommand::DmaCopy(DmaCopyCmd::new(
                        MemLoc::accumulator(AddrExpr::fixed(0)),
                        MemLoc::global(AddrExpr::fixed(
                            GLOBAL_PARTIAL
                                + u64::from(cluster) * partial_region
                                + tile * c_tile_bytes,
                        )),
                        c_tile_bytes,
                    ))
                };
                orch.op(mmio(ship));
                orch.op(WarpOp::FenceAsync { max_outstanding: 0 });
            } else {
                // Owner of this tile: stage the local partial, gather the
                // spills on the DRAM path, reduce, write the final tile.
                orch.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::accumulator(AddrExpr::fixed(0)),
                    MemLoc::shared(AddrExpr::fixed(stage_slot(0, c_tile_bytes))),
                    c_tile_bytes,
                ))));
                if !use_dsm {
                    for p in 0..clusters {
                        if p == cluster {
                            continue;
                        }
                        orch.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                            MemLoc::global(AddrExpr::fixed(
                                GLOBAL_PARTIAL
                                    + u64::from(p) * partial_region
                                    + tile * c_tile_bytes,
                            )),
                            MemLoc::shared(AddrExpr::fixed(producer_slot(p, owner))),
                            c_tile_bytes,
                        ))));
                    }
                }
                orch.op(WarpOp::FenceAsync { max_outstanding: 0 });
                orch.op(WarpOp::Barrier { id: 2 });
                // Followers run the FPU reduction between barriers 2 and 3.
                orch.op(WarpOp::Barrier { id: 3 });
                orch.op(mmio(MmioCommand::DmaCopy(DmaCopyCmd::new(
                    MemLoc::shared(AddrExpr::fixed(stage_slot(0, c_tile_bytes))),
                    MemLoc::global(AddrExpr::fixed(GLOBAL_C + tile * c_tile_bytes)),
                    c_tile_bytes,
                ))));
                orch.op(WarpOp::FenceAsync { max_outstanding: 0 });
            }
            orch.op(WarpOp::Barrier { id: 1 });
        }
        let orchestrator = Arc::new(orch.build());

        // ---- Follower warps ------------------------------------------------
        let inner_barriers = kt.saturating_sub(1);
        let elems = u64::from(TILE_M) * u64::from(TILE_N);
        let elems_per_warp = elems / total_warps;
        let vector_iters = (elems_per_warp / u64::from(lanes)).max(1);
        let owned_tiles = c_partition.items(cluster);
        let build_follower = |warp_index: u64| {
            let mut f = ProgramBuilder::new();
            for tile in 0..out_tiles {
                f.repeat(inner_barriers, |b| {
                    b.op(WarpOp::Barrier { id: 0 });
                });
                if c_partition.owner(tile) == cluster {
                    f.op(WarpOp::Barrier { id: 2 });
                    for i in 0..vector_iters {
                        let offset = warp_index * elems_per_warp * 4 + i * u64::from(lanes) * 4;
                        f.op(WarpOp::LoadShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(stage_slot(0, c_tile_bytes) + offset),
                                lanes,
                            ),
                        });
                        f.op(WarpOp::WaitLoads);
                        for p in 1..u64::from(clusters) {
                            f.op(WarpOp::LoadShared {
                                access: LaneAccess::contiguous_words(
                                    AddrExpr::fixed(stage_slot(p, c_tile_bytes) + offset),
                                    lanes,
                                ),
                            });
                            f.op(WarpOp::WaitLoads);
                            f.op(WarpOp::Fpu {
                                rf_reads: 2,
                                rf_writes: 1,
                                flops_per_lane: 1,
                            });
                        }
                        f.op(WarpOp::StoreShared {
                            access: LaneAccess::contiguous_words(
                                AddrExpr::fixed(stage_slot(0, c_tile_bytes) + offset),
                                lanes,
                            ),
                        });
                    }
                    f.op(WarpOp::Barrier { id: 3 });
                }
                f.op(WarpOp::Barrier { id: 1 });
            }
            Arc::new(f.build())
        };

        // A cluster that owns no tiles (more clusters than output tiles)
        // never reduces, so all its followers share one barrier-only program.
        let shared_follower = owned_tiles.is_empty().then(|| build_follower(0));
        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let warp_index = u64::from(core) * u64::from(config.core.warps) + u64::from(warp);
                let program = if warp_index == 0 {
                    Arc::clone(&orchestrator)
                } else if let Some(shared) = &shared_follower {
                    Arc::clone(shared)
                } else {
                    build_follower(warp_index)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    let strategy_tag = match strategy {
        PartitionStrategy::Contiguous => unreachable!("contiguous delegates to build()"),
        PartitionStrategy::Interleaved => "int",
        PartitionStrategy::Rotated => "rot",
    };
    Kernel::new(
        KernelInfo::new(
            format!(
                "gemm_splitk_{shape}{}_{}_{strategy_tag}",
                cluster_suffix(clusters),
                if use_dsm { "dsm" } else { "dram" }
            ),
            shape.mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> GemmShape {
        GemmShape {
            m: 128,
            n: 128,
            k: 512,
        }
    }

    #[test]
    fn both_variants_build_with_matching_macs() {
        let dram = build(&GpuConfig::virgo().with_clusters(2), shape());
        let dsm = build(
            &GpuConfig::virgo().with_clusters(2).with_dsm_enabled(),
            shape(),
        );
        assert_eq!(dram.info.total_macs, shape().mac_ops());
        assert_eq!(dsm.info.total_macs, shape().mac_ops());
        assert!(dram.info.name.ends_with("dram"), "{}", dram.info.name);
        assert!(dsm.info.name.ends_with("dsm"), "{}", dsm.info.name);
        assert_eq!(dram.clusters_used(), 2);
    }

    #[test]
    fn dsm_variant_ships_partials_over_the_fabric() {
        let kernel = build(
            &GpuConfig::virgo().with_clusters(4).with_dsm_enabled(),
            shape(),
        );
        // A producer orchestrator (cluster 1, warp 0) issues DmaRemote
        // commands targeting the consumer's scratchpad.
        let producer = kernel
            .warps
            .iter()
            .find(|w| w.cluster == 1)
            .expect("cluster 1 exists");
        let mut remote = 0;
        let mut cursor = producer.program.cursor();
        while let Some((_, op)) = cursor.next_op() {
            if let WarpOp::MmioWrite {
                cmd: MmioCommand::DmaRemote(copy),
                ..
            } = op
            {
                assert_eq!(copy.dst.remote_cluster(), Some(0));
                remote += 1;
            }
        }
        // One shipment per output tile (2 output tiles for 128x128).
        assert_eq!(remote, 2);
    }

    #[test]
    fn dram_variant_never_uses_remote_commands() {
        let kernel = build(&GpuConfig::virgo().with_clusters(4), shape());
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                assert!(
                    !matches!(
                        op,
                        WarpOp::MmioWrite {
                            cmd: MmioCommand::DmaRemote(_),
                            ..
                        }
                    ),
                    "DRAM path must stay off the fabric"
                );
            }
        }
    }

    #[test]
    fn staging_slots_fit_the_scratchpad_at_any_cluster_count() {
        let c_tile_bytes = u64::from(TILE_M) * u64::from(TILE_N) * 4;
        let capacity = GpuConfig::virgo().smem.capacity_bytes;
        for p in 0..16 {
            let slot = stage_slot(p, c_tile_bytes);
            assert!(
                slot + c_tile_bytes <= capacity,
                "slot {p} at {slot:#x} overflows the {capacity}-byte scratchpad"
            );
        }
        // Concurrent slots never alias: own vs the two ping-pong slots.
        assert_ne!(stage_slot(0, c_tile_bytes), stage_slot(1, c_tile_bytes));
        assert_ne!(stage_slot(0, c_tile_bytes), stage_slot(2, c_tile_bytes));
        assert_ne!(stage_slot(1, c_tile_bytes), stage_slot(2, c_tile_bytes));
    }

    #[test]
    fn contiguous_strategy_delegates_to_the_historical_builder() {
        let config = GpuConfig::virgo().with_clusters(4).with_dsm_enabled();
        let old = build(&config, shape());
        let via = build_with_strategy(&config, shape(), PartitionStrategy::Contiguous);
        assert_eq!(old.info.name, via.info.name);
        assert_eq!(old.warps.len(), via.warps.len());
        for (a, b) in old.warps.iter().zip(via.warps.iter()) {
            assert_eq!((a.cluster, a.core, a.warp), (b.cluster, b.core, b.warp));
            assert_eq!(a.program, b.program);
        }
    }

    #[test]
    fn rotated_dsm_ships_each_tile_to_its_owner() {
        let config = GpuConfig::virgo().with_clusters(4).with_dsm_enabled();
        let big = GemmShape {
            m: 256,
            n: 256,
            k: 512,
        };
        let kernel = build_with_strategy(&config, big, PartitionStrategy::Rotated);
        assert!(
            kernel.info.name.ends_with("dsm_rot"),
            "{}",
            kernel.info.name
        );
        let out_tiles = u64::from(big.m / TILE_M) * u64::from(big.n / TILE_N);
        let partition = GridPartition::with_strategy(out_tiles, 4, PartitionStrategy::Rotated);
        let mut total_ships = 0u64;
        for cluster in 0..4u32 {
            let orch = kernel
                .warps
                .iter()
                .find(|w| w.cluster == cluster && w.core == 0 && w.warp == 0)
                .expect("orchestrator exists");
            let mut destinations = Vec::new();
            let mut cursor = orch.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::MmioWrite {
                    cmd: MmioCommand::DmaRemote(copy),
                    ..
                } = op
                {
                    destinations.push(copy.dst.remote_cluster().expect("remote dst"));
                }
            }
            // The cluster ships every tile it does not own, in tile order,
            // each to that tile's owner.
            let expected: Vec<u32> = (0..out_tiles)
                .map(|t| partition.owner(t))
                .filter(|&o| o != cluster)
                .collect();
            assert_eq!(destinations, expected, "cluster {cluster}");
            total_ships += destinations.len() as u64;
        }
        // Conservation: (N-1) partials shipped per output tile, same as the
        // contiguous kernel's N-1 producers x all tiles.
        assert_eq!(total_ships, 3 * out_tiles);
    }

    #[test]
    fn interleaved_dram_path_stays_off_the_fabric() {
        let kernel = build_with_strategy(
            &GpuConfig::virgo().with_clusters(4),
            shape(),
            PartitionStrategy::Interleaved,
        );
        assert!(
            kernel.info.name.ends_with("dram_int"),
            "{}",
            kernel.info.name
        );
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                assert!(
                    !matches!(
                        op,
                        WarpOp::MmioWrite {
                            cmd: MmioCommand::DmaRemote(_),
                            ..
                        }
                    ),
                    "DRAM path must stay off the fabric"
                );
            }
        }
    }

    #[test]
    fn distributed_variants_keep_the_mac_count() {
        for strategy in [PartitionStrategy::Interleaved, PartitionStrategy::Rotated] {
            let kernel = build_with_strategy(
                &GpuConfig::virgo().with_clusters(2).with_dsm_enabled(),
                shape(),
                strategy,
            );
            assert_eq!(kernel.info.total_macs, shape().mac_ops());
            assert_eq!(kernel.clusters_used(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn single_cluster_is_rejected() {
        let _ = build(&GpuConfig::virgo(), shape());
    }

    #[test]
    #[should_panic(expected = "K-tiles")]
    fn too_many_clusters_for_the_k_dimension_are_rejected() {
        let _ = build(
            &GpuConfig::virgo().with_clusters(8),
            GemmShape {
                m: 128,
                n: 64,
                k: 512,
            },
        );
    }
}
