//! The Virgo GEMM kernel: MMIO-orchestrated, DMA-fed, cluster-level matrix
//! unit (Section 4.4).

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DeviceId, DmaCopyCmd, Kernel, KernelInfo, MatrixComputeCmd, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp,
};

use crate::workload::GemmShape;

use super::{GLOBAL_A, GLOBAL_B, GLOBAL_C};

use crate::{cluster_addr_offset, cluster_suffix};

/// Thread-block tile exposed by the matrix unit (Section 4.4.1).
pub const TILE_M: u32 = 128;
/// Thread-block tile N dimension.
pub const TILE_N: u32 = 64;
/// Thread-block tile K dimension.
pub const TILE_K: u32 = 128;

/// Shared-memory double-buffer base addresses for the A and B tiles.
const SMEM_A0: u64 = 0x0;
const SMEM_A_STRIDE: u64 = 0x8000; // 32 KiB per A buffer
const SMEM_B0: u64 = 0x1_0000;
const SMEM_B_STRIDE: u64 = 0x4000; // 16 KiB per B buffer

/// Builds the Virgo GEMM kernel for `shape`, splitting the output-tile space
/// across the configuration's clusters.
///
/// One warp per cluster acts as the orchestrator: it programs the cluster's
/// DMA engine and matrix unit through MMIO and issues the `virgo_fence`
/// polls. Every other warp of the cluster participates in the cluster-wide
/// barriers, mirroring the collaborative-execution model of Section 4.2 (in
/// a pure GEMM they have no per-element work, since both data movement and
/// compute are offloaded). Each cluster owns a contiguous run of output
/// tiles and streams its operands from a disjoint global-memory partition,
/// so the clusters interact only through contention on the shared L2/DRAM.
///
/// # Panics
///
/// Panics if the shape is not divisible by the 128×64×128 thread-block tile.
pub fn build(config: &GpuConfig, shape: GemmShape) -> Kernel {
    assert!(
        shape.m.is_multiple_of(TILE_M)
            && shape.n.is_multiple_of(TILE_N)
            && shape.k.is_multiple_of(TILE_K),
        "GEMM shape {shape} not divisible by the {TILE_M}x{TILE_N}x{TILE_K} tile"
    );
    let tiles_m = u64::from(shape.m / TILE_M);
    let tiles_n = u64::from(shape.n / TILE_N);
    let out_tiles = tiles_m * tiles_n;
    let kt = u64::from(shape.k / TILE_K);
    let clusters = config.active_clusters();
    let partition = config.partition(out_tiles);
    let dtype = config.dtype;
    let elem = u64::from(dtype.bytes());

    let a_tile_bytes = u64::from(TILE_M) * u64::from(TILE_K) * elem;
    let b_tile_bytes = u64::from(TILE_K) * u64::from(TILE_N) * elem;
    let c_tile_bytes = u64::from(TILE_M) * u64::from(TILE_N) * 4;

    let mmio = |cmd: MmioCommand| WarpOp::MmioWrite {
        device: match cmd {
            MmioCommand::DmaCopy(_) | MmioCommand::DmaRemote(_) => DeviceId::DMA0,
            MmioCommand::MatrixCompute(_) => DeviceId::MATRIX0,
        },
        cmd,
    };

    let mut warps = Vec::new();
    for cluster in partition.cluster_ids().collect::<Vec<_>>() {
        let cluster_tiles = partition.count(cluster);
        let base = cluster_addr_offset(cluster);

        // Addresses: the operand tiles stream through global memory (distinct
        // addresses per execution, so cache and DRAM behaviour is realistic)
        // and ping-pong between two shared-memory buffers.
        let dma_a = |stride: u64| {
            MmioCommand::DmaCopy(DmaCopyCmd::new(
                MemLoc::global(AddrExpr::streaming(GLOBAL_A + base, stride)),
                MemLoc::shared(AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE)),
                a_tile_bytes,
            ))
        };
        let dma_b = |stride: u64| {
            MmioCommand::DmaCopy(DmaCopyCmd::new(
                MemLoc::global(AddrExpr::streaming(GLOBAL_B + base, stride)),
                MemLoc::shared(AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE)),
                b_tile_bytes,
            ))
        };
        let compute = |accumulate: bool| {
            MmioCommand::MatrixCompute(MatrixComputeCmd {
                a: AddrExpr::double_buffered(SMEM_A0, SMEM_A_STRIDE),
                b: AddrExpr::double_buffered(SMEM_B0, SMEM_B_STRIDE),
                acc_addr: 0,
                m: TILE_M,
                n: TILE_N,
                k: TILE_K,
                accumulate,
                dtype,
            })
        };
        let dma_store_c = MmioCommand::DmaCopy(DmaCopyCmd::new(
            MemLoc::accumulator(AddrExpr::fixed(0)),
            MemLoc::global(AddrExpr::streaming(GLOBAL_C + base, c_tile_bytes)),
            c_tile_bytes,
        ));

        // ---- Orchestrator warp ---------------------------------------------
        let mut orch = ProgramBuilder::new();
        orch.repeat(cluster_tiles, |b| {
            // Prologue: fetch the first K-tile of A and B.
            b.op(WarpOp::Alu {
                rf_reads: 2,
                rf_writes: 1,
            });
            b.op(mmio(dma_a(a_tile_bytes)));
            b.op(mmio(dma_b(b_tile_bytes)));
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            // First compute overwrites the accumulator; prefetch the next tile
            // while it runs.
            b.op(mmio(compute(false)));
            if kt > 1 {
                b.op(mmio(dma_a(a_tile_bytes)));
                b.op(mmio(dma_b(b_tile_bytes)));
            }
            // Steady-state software pipeline: wait for the previous compute and
            // prefetch, launch this iteration's compute, prefetch the next tile.
            if kt > 2 {
                b.repeat(kt - 2, |b| {
                    b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                    b.op(WarpOp::Barrier { id: 0 });
                    b.op(mmio(compute(true)));
                    b.op(mmio(dma_a(a_tile_bytes)));
                    b.op(mmio(dma_b(b_tile_bytes)));
                });
            }
            // Final K iteration: no further prefetch.
            if kt > 1 {
                b.op(WarpOp::FenceAsync { max_outstanding: 0 });
                b.op(WarpOp::Barrier { id: 0 });
                b.op(mmio(compute(true)));
            }
            // Epilogue: drain the accumulator tile to global memory. The store is
            // left asynchronous so it overlaps with the next output tile's
            // prologue DMA loads; the fence at the top of the next tile (and the
            // cluster drain at kernel end) provides the required ordering before
            // the accumulator is overwritten.
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(mmio(dma_store_c));
            b.op(WarpOp::Barrier { id: 1 });
        });
        let orchestrator = Arc::new(orch.build());

        // ---- Follower warps ------------------------------------------------
        // Followers join the per-K-iteration barrier (issued `kt - 1` times
        // per output tile for kt > 1) and the per-tile epilogue barrier.
        let inner_barriers = kt.saturating_sub(1);
        let mut foll = ProgramBuilder::new();
        foll.repeat(cluster_tiles, |b| {
            b.repeat(inner_barriers, |b| {
                b.op(WarpOp::Barrier { id: 0 });
            });
            b.op(WarpOp::Barrier { id: 1 });
        });
        let follower = Arc::new(foll.build());

        for core in 0..config.cores {
            for warp in 0..config.core.warps {
                let program = if core == 0 && warp == 0 {
                    Arc::clone(&orchestrator)
                } else {
                    Arc::clone(&follower)
                };
                warps.push(WarpAssignment::on_cluster(cluster, core, warp, program));
            }
        }
    }

    Kernel::new(
        KernelInfo::new(
            format!("gemm_virgo_{shape}{}", cluster_suffix(clusters)),
            shape.mac_ops(),
            dtype,
        ),
        warps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_structure_matches_tiling() {
        let config = GpuConfig::virgo();
        let shape = GemmShape::square(256);
        let kernel = build(&config, shape);
        assert_eq!(kernel.warps.len(), 64);
        assert_eq!(kernel.cores_used(), 8);
        // 2×4 output tiles, each with a 2-iteration K loop.
        let orchestrator = &kernel.warps[0].program;
        // Orchestrator issues one matrix compute per (tile, k) pair.
        let computes = 2 * 4 * 2;
        // Count MMIO matrix commands in the dynamic stream.
        let mut cursor = orchestrator.cursor();
        let mut count = 0;
        while let Some((_, op)) = cursor.next_op() {
            if let WarpOp::MmioWrite {
                device: DeviceId::MatrixUnit(_),
                ..
            } = op
            {
                count += 1;
            }
        }
        assert_eq!(count, computes);
    }

    #[test]
    fn single_k_iteration_shape_is_supported() {
        let config = GpuConfig::virgo();
        let shape = GemmShape {
            m: 128,
            n: 64,
            k: 128,
        };
        let kernel = build(&config, shape);
        assert!(kernel.dynamic_instructions() > 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_shape_is_rejected() {
        let _ = build(
            &GpuConfig::virgo(),
            GemmShape {
                m: 100,
                n: 64,
                k: 128,
            },
        );
    }
}
