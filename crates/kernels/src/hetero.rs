//! The heterogeneous dual-matrix-unit workload of Section 6.3.
//!
//! The configuration instantiates two differently-sized matrix units in one
//! cluster (a 16×16 unit and an 8×8 unit) and maps two different GEMMs onto
//! them: a 256×256×256 problem on the large unit and a 128×128×128 problem on
//! the small unit. The paper compares running the two GEMMs concurrently
//! against running them serially, showing near-identical utilization (59.5%
//! vs 59.7%) and only a 4.3% increase in power per FLOP.

use std::sync::Arc;

use virgo::GpuConfig;
use virgo_isa::{
    AddrExpr, DataType, DeviceId, DmaCopyCmd, Kernel, KernelInfo, MatrixComputeCmd, MemLoc,
    MmioCommand, ProgramBuilder, WarpAssignment, WarpOp,
};

use crate::workload::GemmShape;

/// The GEMM mapped to the large (16×16) unit.
pub const LARGE_GEMM: GemmShape = GemmShape::square(256);
/// The GEMM mapped to the small (8×8) unit.
pub const SMALL_GEMM: GemmShape = GemmShape::square(128);

/// Per-unit orchestration parameters.
#[derive(Debug, Clone, Copy)]
struct UnitPlan {
    device: DeviceId,
    shape: GemmShape,
    tile: (u32, u32, u32),
    smem_a: u64,
    smem_b: u64,
    global_base: u64,
}

/// Builds the orchestrator program that runs one GEMM on one matrix unit.
fn orchestrate(plan: &UnitPlan, dtype: DataType) -> Arc<virgo_isa::Program> {
    let (tm, tn, tk) = plan.tile;
    assert!(
        plan.shape.m.is_multiple_of(tm)
            && plan.shape.n.is_multiple_of(tn)
            && plan.shape.k.is_multiple_of(tk),
        "GEMM {} not divisible by tile {tm}x{tn}x{tk}",
        plan.shape
    );
    let out_tiles = u64::from(plan.shape.m / tm) * u64::from(plan.shape.n / tn);
    let kt = u64::from(plan.shape.k / tk);
    let elem = u64::from(dtype.bytes());
    let a_bytes = u64::from(tm) * u64::from(tk) * elem;
    let b_bytes = u64::from(tk) * u64::from(tn) * elem;
    let c_bytes = u64::from(tm) * u64::from(tn) * 4;

    let mut p = ProgramBuilder::new();
    p.repeat(out_tiles, |b| {
        b.repeat(kt, |b| {
            for (offset, bytes, smem) in [
                (0u64, a_bytes, plan.smem_a),
                (0x0800_0000, b_bytes, plan.smem_b),
            ] {
                b.op(WarpOp::MmioWrite {
                    device: DeviceId::DMA0,
                    cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(
                        MemLoc::global(AddrExpr::streaming(plan.global_base + offset, bytes)),
                        MemLoc::shared(AddrExpr::double_buffered(smem, 0x2000)),
                        bytes,
                    )),
                });
            }
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::MmioWrite {
                device: plan.device,
                cmd: MmioCommand::MatrixCompute(MatrixComputeCmd {
                    a: AddrExpr::double_buffered(plan.smem_a, 0x2000),
                    b: AddrExpr::double_buffered(plan.smem_b, 0x2000),
                    acc_addr: 0,
                    m: tm,
                    n: tn,
                    k: tk,
                    accumulate: true,
                    dtype,
                }),
            });
        });
        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
        b.op(WarpOp::MmioWrite {
            device: DeviceId::DMA0,
            cmd: MmioCommand::DmaCopy(DmaCopyCmd::new(
                MemLoc::accumulator(AddrExpr::fixed(0)),
                MemLoc::global(AddrExpr::streaming(plan.global_base + 0x0F00_0000, c_bytes)),
                c_bytes,
            )),
        });
        b.op(WarpOp::FenceAsync { max_outstanding: 0 });
    });
    Arc::new(p.build())
}

fn large_plan() -> UnitPlan {
    UnitPlan {
        device: DeviceId::MatrixUnit(0),
        shape: LARGE_GEMM,
        tile: (128, 64, 128),
        smem_a: 0x0,
        smem_b: 0x8000,
        global_base: 0x1000_0000,
    }
}

fn small_plan() -> UnitPlan {
    UnitPlan {
        device: DeviceId::MatrixUnit(1),
        shape: SMALL_GEMM,
        tile: (64, 64, 64),
        smem_a: 0x1_0000,
        smem_b: 0x1_8000,
        global_base: 0x4000_0000,
    }
}

/// Builds the parallel workload: both GEMMs run concurrently, each driven by
/// its own orchestrator warp on a different core.
///
/// # Panics
///
/// Panics if `config` does not instantiate at least two matrix units.
pub fn build_heterogeneous_parallel(config: &GpuConfig) -> Kernel {
    assert!(
        config.matrix_units.len() >= 2,
        "heterogeneous workload needs two matrix units (use GpuConfig::virgo_heterogeneous)"
    );
    let dtype = config.dtype;
    let warps = vec![
        WarpAssignment::new(0, 0, orchestrate(&large_plan(), dtype)),
        WarpAssignment::new(1, 0, orchestrate(&small_plan(), dtype)),
    ];
    Kernel::new(
        KernelInfo::new(
            "hetero_parallel",
            LARGE_GEMM.mac_ops() + SMALL_GEMM.mac_ops(),
            dtype,
        ),
        warps,
    )
}

/// Builds the serial workloads: the two GEMMs as separate kernels, to be run
/// one after the other on the same heterogeneous configuration.
pub fn build_heterogeneous_serial(config: &GpuConfig) -> (Kernel, Kernel) {
    assert!(
        config.matrix_units.len() >= 2,
        "heterogeneous workload needs two matrix units (use GpuConfig::virgo_heterogeneous)"
    );
    let dtype = config.dtype;
    let large = Kernel::new(
        KernelInfo::new("hetero_serial_large", LARGE_GEMM.mac_ops(), dtype),
        vec![WarpAssignment::new(0, 0, orchestrate(&large_plan(), dtype))],
    );
    let small = Kernel::new(
        KernelInfo::new("hetero_serial_small", SMALL_GEMM.mac_ops(), dtype),
        vec![WarpAssignment::new(1, 0, orchestrate(&small_plan(), dtype))],
    );
    (large, small)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_workload_targets_both_units() {
        let config = GpuConfig::virgo_heterogeneous();
        let kernel = build_heterogeneous_parallel(&config);
        assert_eq!(kernel.warps.len(), 2);
        let mut devices = Vec::new();
        for warp in &kernel.warps {
            let mut cursor = warp.program.cursor();
            while let Some((_, op)) = cursor.next_op() {
                if let WarpOp::MmioWrite {
                    device: DeviceId::MatrixUnit(i),
                    ..
                } = op
                {
                    devices.push(i);
                }
            }
        }
        assert!(devices.contains(&0) && devices.contains(&1));
    }

    #[test]
    fn serial_kernels_split_the_work() {
        let config = GpuConfig::virgo_heterogeneous();
        let (large, small) = build_heterogeneous_serial(&config);
        assert_eq!(large.info.total_macs, LARGE_GEMM.mac_ops());
        assert_eq!(small.info.total_macs, SMALL_GEMM.mac_ops());
    }

    #[test]
    #[should_panic(expected = "two matrix units")]
    fn single_unit_configuration_rejected() {
        let _ = build_heterogeneous_parallel(&GpuConfig::virgo());
    }
}
