//! GEMM and FlashAttention-3 kernels for the Virgo GPU model, plus the
//! functional reference model used to validate the mappings numerically.
//!
//! The paper evaluates two workloads (Section 5.3):
//!
//! * **GEMM** at 256³, 512³ and 1024³ in FP16, with kernels independently
//!   optimized for each design point (Volta-style, Ampere-style,
//!   Hopper-style, Virgo), and
//! * **FlashAttention-3** forward pass (sequence length 1024, head dimension
//!   64, one head, batch 1) in FP32, mapped to Virgo and to the Ampere-style
//!   baseline.
//!
//! The [`gemm`] and [`attention`] modules generate the per-warp instruction
//! streams (as [`virgo_isa::Kernel`]s) that the cycle-level simulator
//! executes; the [`functional`] module implements the same tilings over real
//! matrices so the mappings can be checked against naive references.
//! [`hetero`] builds the dual-matrix-unit workload of Section 6.3.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod functional;
pub mod gemm;
pub mod hetero;
pub mod workload;

pub use attention::build_flash_attention;
pub use gemm::build_gemm;
pub use hetero::{build_heterogeneous_parallel, build_heterogeneous_serial};
pub use workload::{AttentionShape, GemmShape};
