//! GEMM and FlashAttention-3 kernels for the Virgo GPU model, plus the
//! functional reference model used to validate the mappings numerically.
//!
//! The paper evaluates two workloads (Section 5.3):
//!
//! * **GEMM** at 256³, 512³ and 1024³ in FP16, with kernels independently
//!   optimized for each design point (Volta-style, Ampere-style,
//!   Hopper-style, Virgo), and
//! * **FlashAttention-3** forward pass (sequence length 1024, head dimension
//!   64, one head, batch 1) in FP32, mapped to Virgo and to the Ampere-style
//!   baseline.
//!
//! The [`gemm`] and [`attention`] modules generate the per-warp instruction
//! streams (as [`virgo_isa::Kernel`]s) that the cycle-level simulator
//! executes; the [`functional`] module implements the same tilings over real
//! matrices so the mappings can be checked against naive references.
//! [`hetero`] builds the dual-matrix-unit workload of Section 6.3.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod functional;
pub mod gemm;
pub mod hetero;
pub mod workload;

pub use attention::broadcast::build as build_flash_attention_broadcast;
pub use attention::broadcast::build_interleaved as build_flash_attention_interleaved;
pub use attention::build_flash_attention;
pub use gemm::build_gemm;
pub use gemm::split_k::build as build_split_k_gemm;
pub use gemm::split_k::build_with_strategy as build_split_k_gemm_with_strategy;
pub use hetero::{build_heterogeneous_parallel, build_heterogeneous_serial};
pub use workload::{AttentionShape, GemmShape};

/// Global-memory offset separating the operand partitions of adjacent
/// clusters (64 GiB apart, so tiles streamed by different clusters never
/// alias in the shared L2). Cluster 0's offset is zero, which keeps
/// single-cluster kernels bit-identical to their pre-partition form.
///
/// Public so hand-written multi-cluster kernels (and the integration tests)
/// can place their traffic in the same disjoint per-cluster partitions the
/// generated kernels use.
pub fn cluster_addr_offset(cluster: u32) -> u64 {
    u64::from(cluster) << 36
}

/// Suffix appended to kernel names when the grid is split over more than one
/// cluster (empty for the single-cluster default).
pub(crate) fn cluster_suffix(clusters: u32) -> String {
    if clusters > 1 {
        format!("_c{clusters}")
    } else {
        String::new()
    }
}
