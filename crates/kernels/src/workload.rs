//! Workload shapes evaluated in the paper.

/// The dimensions of one GEMM problem: `C[m×n] += A[m×k] · B[k×n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: u32,
    /// Columns of B and C.
    pub n: u32,
    /// Columns of A / rows of B.
    pub k: u32,
}

impl GemmShape {
    /// A square GEMM of side `n` (the paper evaluates 256, 512 and 1024).
    pub const fn square(n: u32) -> Self {
        GemmShape { m: n, n, k: n }
    }

    /// The three GEMM sizes of Table 3.
    pub fn paper_sizes() -> [GemmShape; 3] {
        [
            GemmShape::square(256),
            GemmShape::square(512),
            GemmShape::square(1024),
        ]
    }

    /// Total multiply-accumulate operations of the problem.
    pub const fn mac_ops(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// A short label such as `"256x256x256"`.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.n, self.k)
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The shape of one self-attention forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttentionShape {
    /// Sequence length.
    pub seq_len: u32,
    /// Head dimension.
    pub head_dim: u32,
    /// Number of attention heads.
    pub heads: u32,
    /// Batch size.
    pub batch: u32,
}

impl AttentionShape {
    /// The configuration evaluated in Section 6.2: sequence length 1024,
    /// head dimension 64, a single head, batch size 1.
    pub const fn paper_default() -> Self {
        AttentionShape {
            seq_len: 1024,
            head_dim: 64,
            heads: 1,
            batch: 1,
        }
    }

    /// Multiply-accumulates in the two GEMMs of one head (`Q·Kᵀ` and `P·V`).
    pub const fn gemm_mac_ops(&self) -> u64 {
        let per_head = 2 * self.seq_len as u64 * self.seq_len as u64 * self.head_dim as u64;
        per_head * self.heads as u64 * self.batch as u64
    }
}

impl std::fmt::Display for AttentionShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seq={} d={} heads={} batch={}",
            self.seq_len, self.head_dim, self.heads, self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_gemm_mac_count() {
        let s = GemmShape::square(256);
        assert_eq!(s.mac_ops(), 256 * 256 * 256);
        assert_eq!(s.label(), "256x256x256");
        assert_eq!(s.to_string(), "256x256x256");
    }

    #[test]
    fn paper_sizes_are_increasing() {
        let sizes = GemmShape::paper_sizes();
        assert!(sizes[0].mac_ops() < sizes[1].mac_ops());
        assert!(sizes[1].mac_ops() < sizes[2].mac_ops());
    }

    #[test]
    fn attention_macs_cover_both_gemms() {
        let a = AttentionShape::paper_default();
        assert_eq!(a.gemm_mac_ops(), 2 * 1024 * 1024 * 64);
        assert_eq!(a.to_string(), "seq=1024 d=64 heads=1 batch=1");
    }
}
