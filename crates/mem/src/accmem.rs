//! The accumulator memory private to the disaggregated matrix unit
//! (Section 3.2.2).
//!
//! Unlike the register file, which must support divergent scatter/gather SIMT
//! accesses, the accumulator data is accessed in wide, contiguous bursts by
//! the systolic array and the DMA engine. This allows a single-banked SRAM
//! with one wide port — simpler and lower energy per access than the
//! multi-banked register file it replaces.

use virgo_sim::{Cycle, NextActivity};

/// Event counters for the accumulator memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccumulatorStats {
    /// 32-bit words read.
    pub words_read: u64,
    /// 32-bit words written.
    pub words_written: u64,
    /// Wide accesses served.
    pub accesses: u64,
}

/// The single-banked accumulator SRAM.
///
/// # Example
///
/// ```
/// use virgo_mem::AccumulatorMemory;
/// use virgo_sim::Cycle;
///
/// let mut acc = AccumulatorMemory::new(32 * 1024, 64);
/// let done = acc.access(Cycle::new(0), 0, 256, true);
/// // 256 bytes over a 64-byte port: 4 cycles plus the 1-cycle latency.
/// assert_eq!(done, Cycle::new(5));
/// ```
#[derive(Debug, Clone)]
pub struct AccumulatorMemory {
    capacity_bytes: u64,
    port_bytes: u64,
    busy_until: Cycle,
    stats: AccumulatorStats,
}

impl AccumulatorMemory {
    /// Access latency of the SRAM macro in cycles.
    const LATENCY: u64 = 1;

    /// Creates an accumulator memory of `capacity_bytes` with a single
    /// `port_bytes`-wide port.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(capacity_bytes: u64, port_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert!(port_bytes > 0, "port width must be non-zero");
        AccumulatorMemory {
            capacity_bytes,
            port_bytes,
            busy_until: Cycle::ZERO,
            stats: AccumulatorStats::default(),
        }
    }

    /// The Table 2 Virgo configuration: 32 KiB with a 64-byte port.
    pub fn default_virgo() -> Self {
        AccumulatorMemory::new(32 * 1024, 64)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AccumulatorStats {
        self.stats
    }

    /// Performs a wide access of `bytes` starting at `addr`, returning the
    /// completion cycle. Accesses are serialized on the single port.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the access runs past the end of the SRAM.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        debug_assert!(
            addr + bytes <= self.capacity_bytes,
            "accumulator access out of bounds: {addr}+{bytes} > {}",
            self.capacity_bytes
        );
        let words = bytes.div_ceil(4).max(1);
        let cycles = bytes.div_ceil(self.port_bytes).max(1);
        let start = now.max(self.busy_until);
        self.busy_until = start.plus(cycles);
        self.stats.accesses += 1;
        if write {
            self.stats.words_written += words;
        } else {
            self.stats.words_read += words;
        }
        start.plus(cycles + Self::LATENCY)
    }

    /// Cycle at which the port is next free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

impl NextActivity for AccumulatorMemory {
    /// The accumulator SRAM is purely reactive (driven by the matrix unit
    /// and the DMA engine) and contributes no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_occupies_port_by_width() {
        let mut acc = AccumulatorMemory::new(1024, 64);
        let done = acc.access(Cycle::new(0), 0, 128, false);
        assert_eq!(done, Cycle::new(2 + 1));
        assert_eq!(acc.stats().words_read, 32);
    }

    #[test]
    fn accesses_serialize_on_single_port() {
        let mut acc = AccumulatorMemory::new(4096, 64);
        let first = acc.access(Cycle::new(0), 0, 256, true);
        let second = acc.access(Cycle::new(0), 1024, 256, true);
        assert_eq!(first, Cycle::new(4 + 1));
        assert_eq!(second, Cycle::new(8 + 1));
        assert_eq!(acc.stats().accesses, 2);
        assert_eq!(acc.stats().words_written, 128);
    }

    #[test]
    fn default_virgo_capacity() {
        let acc = AccumulatorMemory::default_virgo();
        assert_eq!(acc.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn tiny_access_still_takes_a_cycle() {
        let mut acc = AccumulatorMemory::new(64, 64);
        let done = acc.access(Cycle::new(10), 0, 4, false);
        assert_eq!(done, Cycle::new(12));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics_in_debug() {
        let mut acc = AccumulatorMemory::new(64, 64);
        let _ = acc.access(Cycle::new(0), 32, 64, false);
    }
}
