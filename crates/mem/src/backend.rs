//! The machine-wide memory back-end: the L2 cache and the multi-channel DRAM
//! subsystem shared by every cluster.
//!
//! The global-memory hierarchy is split in two. Each cluster owns a private
//! front-end of per-core L1 caches ([`GlobalMemory`](crate::GlobalMemory));
//! all front-ends feed this single back-end, where the shared L2 and the
//! address-interleaved DRAM channels arbitrate between clusters. Each request
//! that misses the L2 is routed to the channel that owns its address
//! (`(addr / interleave_bytes) % channels`); requests from different clusters
//! that collide on one channel serialize exactly like requests from one
//! cluster do, and the back-end attributes the resulting queueing delay to
//! the requesting cluster — with a per-channel breakdown — so multi-cluster
//! runs can report DRAM-contention stalls per cluster and per channel.

use virgo_sim::fault::FaultPlan;
use virgo_sim::{Cycle, NextActivity};

use crate::cache::Cache;
use crate::dram::{DramFaultStats, DramStats, MultiChannelDram};
use crate::global::GlobalMemoryConfig;

/// Aggregated statistics for the shared back-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBackendStats {
    /// L2 accesses (from L1 misses and DMA traffic).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved by DMA transfers through the L2.
    pub dma_bytes: u64,
}

/// One cluster's contention counters on a single DRAM channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelContentionStats {
    /// DRAM transfers this cluster issued to this channel.
    pub requests: u64,
    /// Exposed queueing cycles this cluster's requests suffered on this
    /// channel (see [`ClusterContentionStats::dram_stall_cycles`]).
    pub stall_cycles: u64,
}

/// Per-cluster contention counters kept by the shared back-end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterContentionStats {
    /// L2 accesses issued by this cluster (demand misses and DMA chunks).
    pub l2_accesses: u64,
    /// L2 misses among this cluster's accesses. Every machine-wide miss is
    /// charged to exactly one cluster, so these sum to
    /// [`MemoryBackendStats::l2_misses`] — the invariant per-job attribution
    /// rests on.
    pub l2_misses: u64,
    /// Bytes this cluster moved by DMA through the L2 (requested bytes,
    /// hit or miss). Sums to [`MemoryBackendStats::dma_bytes`].
    pub dma_bytes: u64,
    /// DRAM transfers issued by this cluster, summed over channels.
    pub dram_requests: u64,
    /// Bytes this cluster moved over the DRAM channels (the requested bytes
    /// that missed the L2, before burst rounding).
    pub dram_bytes: u64,
    /// Wall-clock cycles this cluster's DRAM transfers lost to channel
    /// contention — the contention metric of the cluster-scaling study.
    ///
    /// Two rules keep this an *actual delay*, not a bus-occupancy count:
    ///
    /// * only the **exposed** part of a queue wait counts — the fixed DRAM
    ///   latency overlaps with queueing, so a request charges
    ///   `max(0, busy_until - (present_time + latency))`, exactly the
    ///   cycles by which its completion slips versus an idle channel, and
    /// * each *logical* transfer contributes its **critical-path** wait — a
    ///   DMA split into parallel per-channel sub-transfers adds the max of
    ///   their exposed waits (they queue concurrently), while a line access
    ///   adds its single channel's wait,
    ///
    /// so the metric stays comparable across channel counts. With a single
    /// cluster this is pure self-queueing; extra clusters add cross-cluster
    /// interference on top.
    pub dram_stall_cycles: u64,
    /// Per-channel breakdown, in channel order (always `channels` entries).
    /// `requests` sums to `dram_requests`; `stall_cycles` counts each
    /// channel's own exposed queueing, so its sum is `>= dram_stall_cycles`
    /// when split DMA sub-transfers wait concurrently (equal at one
    /// channel).
    pub per_channel: Vec<ChannelContentionStats>,
}

impl ClusterContentionStats {
    /// An empty counter set sized for `channels` DRAM channels.
    pub fn for_channels(channels: u32) -> Self {
        ClusterContentionStats {
            per_channel: vec![ChannelContentionStats::default(); channels as usize],
            ..Default::default()
        }
    }

    /// The counters accumulated since `base` was captured (saturating, so a
    /// mismatched base degrades to the absolute counters instead of
    /// panicking). The per-channel vectors must have the same geometry.
    pub fn since(&self, base: &ClusterContentionStats) -> ClusterContentionStats {
        ClusterContentionStats {
            l2_accesses: self.l2_accesses.saturating_sub(base.l2_accesses),
            l2_misses: self.l2_misses.saturating_sub(base.l2_misses),
            dma_bytes: self.dma_bytes.saturating_sub(base.dma_bytes),
            dram_requests: self.dram_requests.saturating_sub(base.dram_requests),
            dram_bytes: self.dram_bytes.saturating_sub(base.dram_bytes),
            dram_stall_cycles: self
                .dram_stall_cycles
                .saturating_sub(base.dram_stall_cycles),
            per_channel: self
                .per_channel
                .iter()
                .zip(&base.per_channel)
                .map(|(now, then)| now.since(then))
                .collect(),
        }
    }
}

impl ChannelContentionStats {
    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &ChannelContentionStats) -> ChannelContentionStats {
        ChannelContentionStats {
            requests: self.requests.saturating_sub(base.requests),
            stall_cycles: self.stall_cycles.saturating_sub(base.stall_cycles),
        }
    }
}

impl MemoryBackendStats {
    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &MemoryBackendStats) -> MemoryBackendStats {
        MemoryBackendStats {
            l2_accesses: self.l2_accesses.saturating_sub(base.l2_accesses),
            l2_misses: self.l2_misses.saturating_sub(base.l2_misses),
            dma_bytes: self.dma_bytes.saturating_sub(base.dma_bytes),
        }
    }
}

/// Everything the shared back-end has counted, captured at one instant: the
/// aggregate stats, the DRAM interface and fault counters (total and
/// per-channel) and the per-cluster contention slices. A job-residency
/// session captures one at admission and subtracts it from the one at
/// retirement ([`BackendAttribution::since`]) to attribute the window's
/// traffic to the job.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendAttribution {
    /// Aggregate L2/DMA counters.
    pub stats: MemoryBackendStats,
    /// DRAM interface counters, summed over channels.
    pub dram: DramStats,
    /// Per-channel DRAM interface counters, in channel order.
    pub dram_channels: Vec<DramStats>,
    /// Degraded-mode DRAM counters.
    pub dram_fault: DramFaultStats,
    /// Per-cluster contention counters, in cluster order.
    pub per_cluster: Vec<ClusterContentionStats>,
}

impl BackendAttribution {
    /// The counters accumulated since `base` was captured (saturating,
    /// element-wise; both snapshots must come from the same back-end).
    pub fn since(&self, base: &BackendAttribution) -> BackendAttribution {
        BackendAttribution {
            stats: self.stats.since(&base.stats),
            dram: self.dram.since(&base.dram),
            dram_channels: self
                .dram_channels
                .iter()
                .zip(&base.dram_channels)
                .map(|(now, then)| now.since(then))
                .collect(),
            dram_fault: self.dram_fault.since(&base.dram_fault),
            per_cluster: self
                .per_cluster
                .iter()
                .zip(&base.per_cluster)
                .map(|(now, then)| now.since(then))
                .collect(),
        }
    }

    /// Total DRAM queueing delay across clusters within this window.
    pub fn total_dram_stall_cycles(&self) -> u64 {
        self.per_cluster.iter().map(|c| c.dram_stall_cycles).sum()
    }
}

/// The shared L2 + multi-channel DRAM back-end, bandwidth-arbitrated between
/// clusters.
///
/// # Example
///
/// ```
/// use virgo_mem::{GlobalMemoryConfig, MemoryBackend};
/// use virgo_sim::Cycle;
///
/// let mut backend = MemoryBackend::new(GlobalMemoryConfig::default_soc(8), 2);
/// let cold = backend.line_access(Cycle::new(0), 0, 0x1000, 32, false);
/// // The same line from the other cluster hits in the shared L2.
/// let warm = backend.line_access(cold, 1, 0x1000, 32, false);
/// assert!(warm - cold < cold, "shared L2 hit must be much faster than DRAM");
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    config: GlobalMemoryConfig,
    l2: Cache,
    dram: MultiChannelDram,
    stats: MemoryBackendStats,
    per_cluster: Vec<ClusterContentionStats>,
    /// Scratch buffer reused by [`MemoryBackend::dma_access`] to bin one
    /// transfer's missed bytes per channel without allocating per call.
    dma_split: Vec<u64>,
}

impl MemoryBackend {
    /// Creates the back-end with a cold L2, sized for `clusters` clusters of
    /// contention accounting.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero, or if the DRAM interleave granularity
    /// is not a multiple of the L2 line size (the back-end routes whole
    /// lines, so a finer interleave would silently charge part of every
    /// line to the wrong channel).
    pub fn new(config: GlobalMemoryConfig, clusters: u32) -> Self {
        assert!(clusters > 0, "the back-end serves at least one cluster");
        assert!(
            config
                .dram
                .interleave_bytes
                .is_multiple_of(u64::from(config.l2.line_bytes)),
            "DRAM interleave granularity ({} B) must be a multiple of the L2 line size ({} B)",
            config.dram.interleave_bytes,
            config.l2.line_bytes,
        );
        let dram = MultiChannelDram::new(config.dram);
        let channels = dram.channel_count();
        MemoryBackend {
            l2: Cache::new(config.l2),
            dma_split: vec![0; channels as usize],
            dram,
            config,
            stats: MemoryBackendStats::default(),
            per_cluster: vec![ClusterContentionStats::for_channels(channels); clusters as usize],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GlobalMemoryConfig {
        &self.config
    }

    /// Aggregated back-end statistics.
    pub fn stats(&self) -> MemoryBackendStats {
        self.stats
    }

    /// DRAM interface statistics, summed over channels.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Per-channel DRAM interface statistics, in channel order.
    pub fn dram_channel_stats(&self) -> Vec<DramStats> {
        self.dram.per_channel_stats()
    }

    /// Installs the DRAM channel fault windows of `plan` on the back-end's
    /// DRAM subsystem (see [`MultiChannelDram::apply_faults`]).
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        self.dram.apply_faults(plan);
    }

    /// Degraded-mode DRAM counters (all zero without DRAM faults).
    pub fn dram_fault_stats(&self) -> DramFaultStats {
        self.dram.fault_stats()
    }

    /// Number of DRAM channels behind the L2.
    pub fn dram_channels(&self) -> u32 {
        self.dram.channel_count()
    }

    /// Contention counters for one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_stats(&self, cluster: u32) -> ClusterContentionStats {
        self.per_cluster[cluster as usize].clone()
    }

    /// Contention counters for every cluster, in cluster order.
    pub fn per_cluster_stats(&self) -> &[ClusterContentionStats] {
        &self.per_cluster
    }

    /// Total DRAM queueing delay across clusters — the machine-wide
    /// contention metric.
    pub fn total_dram_stall_cycles(&self) -> u64 {
        self.per_cluster.iter().map(|c| c.dram_stall_cycles).sum()
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.stats().hit_rate()
    }

    /// Captures every counter the back-end keeps, for windowed per-job
    /// attribution (see [`BackendAttribution`]).
    pub fn attribution(&self) -> BackendAttribution {
        BackendAttribution {
            stats: self.stats,
            dram: self.dram.stats(),
            dram_channels: self.dram.per_channel_stats(),
            dram_fault: self.dram.fault_stats(),
            per_cluster: self.per_cluster.clone(),
        }
    }

    /// Serves one line-granular request from `cluster` that missed its L1,
    /// presented to the L2 at `at`; returns the completion cycle. An L2 miss
    /// is routed to the DRAM channel that owns the line's address.
    pub fn line_access(
        &mut self,
        at: Cycle,
        cluster: u32,
        line_addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        self.stats.l2_accesses += 1;
        self.per_cluster[cluster as usize].l2_accesses += 1;
        let l2_latency = self.l2.latency();
        if self.l2.access(line_addr).is_hit() {
            return at.plus(l2_latency);
        }
        self.stats.l2_misses += 1;
        self.per_cluster[cluster as usize].l2_misses += 1;
        let present = at.plus(l2_latency);
        let channel = self.dram.route(present, line_addr);
        let (done, stall) = self.dram_access(present, cluster, channel, bytes, write);
        self.per_cluster[cluster as usize].dram_stall_cycles += stall;
        done
    }

    /// Serves a bulk DMA transfer from `cluster` that bypasses the L1 caches
    /// and streams through the L2 in line-sized chunks, returning the
    /// completion cycle. Lines that miss the L2 are binned by the DRAM
    /// channel that owns them; the per-channel sub-transfers proceed in
    /// parallel and the transfer completes when the slowest channel does.
    pub fn dma_access(
        &mut self,
        now: Cycle,
        cluster: u32,
        addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        if bytes == 0 {
            return now;
        }
        self.stats.dma_bytes += bytes;
        self.per_cluster[cluster as usize].dma_bytes += bytes;
        let line = u64::from(self.config.l2.line_bytes);
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        let end = addr + bytes;
        // The L2 streams the transfer at four lines per cycle; short
        // transfers still pay at least one streaming cycle. Computed up
        // front because `l2_time` is when sub-transfers reach the channels,
        // which is the routing point for fault windows.
        let lines = last - first + 1;
        let l2_time = now.plus(self.l2.latency() + lines.div_ceil(4));
        self.dma_split.iter_mut().for_each(|b| *b = 0);
        for l in first..=last {
            self.stats.l2_accesses += 1;
            self.per_cluster[cluster as usize].l2_accesses += 1;
            if !self.l2.access(l * line).is_hit() {
                self.stats.l2_misses += 1;
                self.per_cluster[cluster as usize].l2_misses += 1;
                // Only the requested bytes that fall inside this line are
                // moved on a miss: partial head/tail lines count their
                // overlap with the transfer, not the whole line (the DRAM
                // model re-applies burst rounding to what is actually sent).
                let span = end.min((l + 1) * line) - addr.max(l * line);
                let channel = self.dram.route(l2_time, l * line);
                self.dma_split[channel as usize] += span;
            }
        }
        let mut done = l2_time;
        // The sub-transfers queue on their channels *concurrently*, so the
        // DMA's contention cost is the slowest channel's wait, not the sum.
        let mut critical_path_stall = 0u64;
        for channel in 0..self.dram.channel_count() {
            let missed = self.dma_split[channel as usize];
            if missed > 0 {
                let (sub_done, stall) = self.dram_access(l2_time, cluster, channel, missed, write);
                done = done.max(sub_done);
                critical_path_stall = critical_path_stall.max(stall);
            }
        }
        self.per_cluster[cluster as usize].dram_stall_cycles += critical_path_stall;
        done
    }

    /// Issues one DRAM sub-transfer on `channel` on behalf of `cluster`,
    /// recording its request/byte counts and per-channel exposed queueing
    /// delay; returns the completion cycle and the delay so the caller can
    /// charge the logical transfer's critical-path wait to the cluster
    /// aggregate.
    fn dram_access(
        &mut self,
        at: Cycle,
        cluster: u32,
        channel: u32,
        bytes: u64,
        write: bool,
    ) -> (Cycle, u64) {
        // Only the queueing the fixed access latency does not hide is a real
        // stall: the request's completion slips by exactly these cycles
        // relative to an idle channel (`DramModel::access` overlaps latency
        // with the queue).
        let stall = self
            .dram
            .busy_until(channel)
            .saturating_sub(at.plus(self.config.dram.latency))
            .get();
        let stats = &mut self.per_cluster[cluster as usize];
        stats.dram_requests += 1;
        stats.dram_bytes += bytes;
        let per_channel = &mut stats.per_channel[channel as usize];
        per_channel.requests += 1;
        per_channel.stall_cycles += stall;
        (self.dram.access_on(channel, at, bytes, write), stall)
    }
}

impl NextActivity for MemoryBackend {
    /// The L2 and the DRAM channels behind it are purely reactive and
    /// contribute no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::dram::DramConfig;

    fn backend(clusters: u32) -> MemoryBackend {
        MemoryBackend::new(GlobalMemoryConfig::default_soc(2), clusters)
    }

    fn backend_with_channels(clusters: u32, channels: u32) -> MemoryBackend {
        let mut config = GlobalMemoryConfig::default_soc(2);
        config.dram = config.dram.with_channels(channels);
        MemoryBackend::new(config, clusters)
    }

    #[test]
    fn l2_is_shared_across_clusters() {
        let mut b = backend(2);
        let cold = b.line_access(Cycle::new(0), 0, 0, 32, false);
        assert!(cold.get() > 100, "cold miss reaches DRAM");
        let warm = b.line_access(Cycle::new(1000), 1, 0, 32, false);
        assert_eq!(warm, Cycle::new(1000 + 12));
        assert_eq!(b.stats().l2_accesses, 2);
        assert_eq!(b.stats().l2_misses, 1);
        assert_eq!(b.cluster_stats(0).l2_accesses, 1);
        assert_eq!(b.cluster_stats(1).l2_accesses, 1);
    }

    #[test]
    fn concurrent_clusters_contend_for_dram() {
        let mut b = backend(2);
        // Two cold 8 KiB DMA transfers to distinct regions presented at the
        // same cycle: long enough that the bus occupancy dominates the fixed
        // latency, so the second cluster's transfer visibly queues behind
        // the first on the single channel.
        let first = b.dma_access(Cycle::new(0), 0, 0, 8192, false);
        let second = b.dma_access(Cycle::new(0), 1, 1 << 20, 8192, false);
        assert!(second > first);
        assert_eq!(b.cluster_stats(0).dram_stall_cycles, 0);
        assert!(b.cluster_stats(1).dram_stall_cycles > 0);
        assert_eq!(
            b.total_dram_stall_cycles(),
            b.cluster_stats(1).dram_stall_cycles
        );
        // The per-channel breakdown sums to the aggregate.
        let stats = b.cluster_stats(1);
        assert_eq!(stats.per_channel.len(), 1);
        assert_eq!(stats.per_channel[0].requests, stats.dram_requests);
        assert_eq!(stats.per_channel[0].stall_cycles, stats.dram_stall_cycles);
    }

    #[test]
    fn interleaved_channels_split_contention() {
        // Same scenario as above, but with 2 channels the first cluster's
        // 32 KiB burst stripes over both channels and drains twice as fast,
        // so the second cluster (arriving while it is still in flight) sees
        // a shorter backlog and finishes sooner.
        let mut single = backend(2);
        let mut dual = backend_with_channels(2, 2);
        let single_done = {
            single.dma_access(Cycle::new(0), 0, 0, 32 * 1024, false);
            single.dma_access(Cycle::new(200), 1, 1 << 20, 8192, false)
        };
        let dual_done = {
            dual.dma_access(Cycle::new(0), 0, 0, 32 * 1024, false);
            dual.dma_access(Cycle::new(200), 1, 1 << 20, 8192, false)
        };
        assert!(
            dual_done < single_done,
            "two channels must beat one: {dual_done:?} vs {single_done:?}"
        );
        assert!(
            dual.cluster_stats(1).dram_stall_cycles < single.cluster_stats(1).dram_stall_cycles,
            "queueing must shrink with more channels"
        );
        // Both channels saw traffic, the request breakdown sums to the
        // total, and the aggregate stall is the critical-path wait — never
        // more than the per-channel waits added together.
        let stats = dual.cluster_stats(0);
        assert_eq!(stats.per_channel.len(), 2);
        assert!(stats.per_channel.iter().all(|c| c.requests > 0));
        assert_eq!(
            stats.per_channel.iter().map(|c| c.requests).sum::<u64>(),
            stats.dram_requests
        );
        let queued = dual.cluster_stats(1);
        assert!(
            queued.dram_stall_cycles
                <= queued
                    .per_channel
                    .iter()
                    .map(|c| c.stall_cycles)
                    .sum::<u64>(),
            "aggregate stall is the max over concurrent sub-transfers"
        );
        // Burst-aligned transfers move identical bytes across the split
        // (see `straddling_partial_lines_round_per_channel` for the
        // unaligned edge).
        assert_eq!(dual.dram_stats().bytes, single.dram_stats().bytes);
        assert_eq!(dual.dram_stats().bursts, single.dram_stats().bursts);
        assert_eq!(dual.dram_channel_stats().len(), 2);
    }

    #[test]
    fn line_accesses_route_by_address() {
        let mut b = backend_with_channels(1, 4);
        // Interleave is 256 bytes: lines 0 and 256 land on channels 0 and 1.
        b.line_access(Cycle::new(0), 0, 0, 32, false);
        b.line_access(Cycle::new(0), 0, 256, 32, false);
        let per_channel = b.dram_channel_stats();
        assert_eq!(per_channel[0].reads, 1);
        assert_eq!(per_channel[1].reads, 1);
        assert_eq!(per_channel[2].reads + per_channel[3].reads, 0);
    }

    #[test]
    fn dma_access_streams_through_l2() {
        let mut b = backend(1);
        let done = b.dma_access(Cycle::new(0), 0, 0, 1024, false);
        assert!(done.get() > 100);
        assert_eq!(b.stats().dma_bytes, 1024);
        assert_eq!(b.cluster_stats(0).dram_requests, 1);
        // A later DMA of the same region hits in L2 and avoids DRAM.
        let warm = b.dma_access(done, 0, 0, 1024, false);
        assert!(warm - done < Cycle::new(50));
    }

    /// Regression test: a cold DMA that covers partial head/tail lines only
    /// charges the *requested* bytes to DRAM, not whole lines — the
    /// `dram_bytes` doc ("before burst rounding") now holds.
    #[test]
    fn unaligned_dma_counts_requested_bytes_only() {
        let mut b = backend(1);
        // 32 requested bytes straddling two 32-byte lines (16 in each).
        let done = b.dma_access(Cycle::new(0), 0, 16, 32, false);
        assert!(done.get() > 100, "cold miss reaches DRAM");
        assert_eq!(b.cluster_stats(0).dram_bytes, 32, "clamped to the span");
        assert_eq!(b.stats().l2_misses, 2, "both lines miss");
        // The DRAM interface still rounds what it sends to bursts.
        assert_eq!(b.dram_stats().bytes, 32);
        assert_eq!(b.dram_stats().bursts, 1);
    }

    /// Regression test: transfers under four lines still pay one L2
    /// streaming cycle (the old integer division truncated it to zero).
    #[test]
    fn short_dma_pays_one_streaming_cycle() {
        let mut b = backend(1);
        // Warm the line so the second access is pure L2 time.
        b.dma_access(Cycle::new(0), 0, 0, 32, false);
        let start = Cycle::new(1000);
        let warm = b.dma_access(start, 0, 0, 32, false);
        // L2 latency (12) plus ceil(1/4) = 1 streaming cycle.
        assert_eq!(warm, Cycle::new(1000 + 12 + 1));
    }

    /// A non-default burst size flows end to end through the back-end: the
    /// channel counts bursts in `burst_bytes` units.
    #[test]
    fn non_default_burst_bytes_flow_through_backend() {
        let mut config = GlobalMemoryConfig {
            l1: CacheConfig::l1_16k(),
            l2: CacheConfig::l2_512k(),
            dram: DramConfig {
                burst_bytes: 64,
                ..DramConfig::default_soc()
            },
            cores: 2,
        };
        config.dram.channels = 2;
        let mut b = MemoryBackend::new(config, 1);
        // A 96-byte cold DMA: three 32-byte lines, striped 96 bytes onto
        // channel 0 (interleave 256 covers all three lines).
        b.dma_access(Cycle::new(0), 0, 0, 96, false);
        let stats = b.dram_stats();
        assert_eq!(stats.bytes, 128, "96 bytes round up to two 64-byte bursts");
        assert_eq!(stats.bursts, 2);
        let per_channel = b.dram_channel_stats();
        assert_eq!(per_channel[0].bursts, 2);
        assert_eq!(per_channel[1].bursts, 0);
        // A cold line access on the other channel's block.
        b.line_access(Cycle::new(0), 0, 256, 32, false);
        assert_eq!(b.dram_channel_stats()[1].bursts, 1, "one 64-byte burst");
        assert_eq!(b.dram_stats().bytes, 128 + 64);
    }

    /// A cold transfer whose missed lines straddle an interleave boundary
    /// fills lines on *both* channels, so each channel pays its own burst
    /// rounding: the requested bytes (`dram_bytes`, pre-rounding) are always
    /// conserved across channel counts, but the rounded interface traffic
    /// can gain a burst per extra channel touched — each channel's bus
    /// really does move its own line.
    #[test]
    fn straddling_partial_lines_round_per_channel() {
        let mut single = backend(1);
        let mut dual = backend_with_channels(1, 2);
        // Two requested bytes: addr 255 (line 7, channel 0) and addr 256
        // (line 8, channel 1 at 256-byte interleave).
        single.dma_access(Cycle::new(0), 0, 255, 2, false);
        dual.dma_access(Cycle::new(0), 0, 255, 2, false);
        assert_eq!(single.cluster_stats(0).dram_bytes, 2);
        assert_eq!(
            dual.cluster_stats(0).dram_bytes,
            2,
            "requested bytes conserved"
        );
        assert_eq!(single.dram_stats().bursts, 1, "one coalesced burst");
        assert_eq!(dual.dram_stats().bursts, 2, "one burst per touched channel");
    }

    #[test]
    fn zero_byte_dma_is_a_noop() {
        let mut b = backend(1);
        assert_eq!(b.dma_access(Cycle::new(7), 0, 0, 0, false), Cycle::new(7));
        assert_eq!(b.stats().dma_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = MemoryBackend::new(GlobalMemoryConfig::default_soc(2), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the L2 line size")]
    fn sub_line_interleave_rejected() {
        // A 16-byte interleave under 32-byte L2 lines would silently route
        // half of every line to the wrong channel; fail fast instead.
        let mut config = GlobalMemoryConfig::default_soc(2);
        config.dram.interleave_bytes = 16;
        let _ = MemoryBackend::new(config, 1);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_range_cluster_panics() {
        let mut b = backend(1);
        let _ = b.line_access(Cycle::new(0), 3, 0, 32, false);
    }

    #[test]
    fn dead_channel_traffic_lands_on_survivors() {
        use virgo_sim::fault::FaultKind;
        let mut b = backend_with_channels(1, 4);
        let plan = FaultPlan::seeded(3).with_event(
            FaultKind::DramChannelDown { channel: 1 },
            0,
            1_000_000,
        );
        b.apply_faults(&plan);
        // Line 256 homes on channel 1, which is down for the whole run.
        b.line_access(Cycle::new(0), 0, 256, 32, false);
        let per_channel = b.dram_channel_stats();
        assert_eq!(per_channel[1].reads, 0, "dead channel serves nothing");
        assert_eq!(b.dram_stats().reads, 1, "the access still completes");
        assert_eq!(b.dram_fault_stats().restriped_accesses, 1);
        // A cold DMA spanning all four channels also avoids channel 1.
        b.dma_access(Cycle::new(0), 0, 4096, 4096, false);
        assert_eq!(b.dram_channel_stats()[1].reads, 0);
        assert!(b.dram_fault_stats().restriped_accesses > 1);
    }
}
