//! The machine-wide memory back-end: the L2 cache and DRAM channel shared by
//! every cluster.
//!
//! The global-memory hierarchy is split in two. Each cluster owns a private
//! front-end of per-core L1 caches ([`GlobalMemory`](crate::GlobalMemory));
//! all front-ends feed this single back-end, where the shared L2 and the
//! bandwidth-limited DRAM channel arbitrate between clusters. Requests from
//! different clusters serialize on the DRAM channel exactly like requests
//! from one cluster do, and the back-end attributes the resulting queueing
//! delay to the requesting cluster so multi-cluster runs can report
//! DRAM-contention stalls per cluster.

use virgo_sim::{Cycle, NextActivity};

use crate::cache::Cache;
use crate::dram::{DramModel, DramStats};
use crate::global::GlobalMemoryConfig;

/// Aggregated statistics for the shared back-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBackendStats {
    /// L2 accesses (from L1 misses and DMA traffic).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved by DMA transfers through the L2.
    pub dma_bytes: u64,
}

/// Per-cluster contention counters kept by the shared back-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterContentionStats {
    /// L2 accesses issued by this cluster (demand misses and DMA chunks).
    pub l2_accesses: u64,
    /// DRAM transfers issued by this cluster.
    pub dram_requests: u64,
    /// Bytes this cluster moved over the DRAM channel (before burst
    /// rounding).
    pub dram_bytes: u64,
    /// Cycles this cluster's DRAM requests spent queued behind the busy
    /// channel — the contention metric of the cluster-scaling study. With a
    /// single cluster this is pure self-queueing; extra clusters add
    /// cross-cluster interference on top.
    pub dram_stall_cycles: u64,
}

/// The shared L2 + DRAM back-end, bandwidth-arbitrated between clusters.
///
/// # Example
///
/// ```
/// use virgo_mem::{GlobalMemoryConfig, MemoryBackend};
/// use virgo_sim::Cycle;
///
/// let mut backend = MemoryBackend::new(GlobalMemoryConfig::default_soc(8), 2);
/// let cold = backend.line_access(Cycle::new(0), 0, 0x1000, 32, false);
/// // The same line from the other cluster hits in the shared L2.
/// let warm = backend.line_access(cold, 1, 0x1000, 32, false);
/// assert!(warm - cold < cold, "shared L2 hit must be much faster than DRAM");
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    config: GlobalMemoryConfig,
    l2: Cache,
    dram: DramModel,
    stats: MemoryBackendStats,
    per_cluster: Vec<ClusterContentionStats>,
}

impl MemoryBackend {
    /// Creates the back-end with a cold L2, sized for `clusters` clusters of
    /// contention accounting.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(config: GlobalMemoryConfig, clusters: u32) -> Self {
        assert!(clusters > 0, "the back-end serves at least one cluster");
        MemoryBackend {
            l2: Cache::new(config.l2),
            dram: DramModel::new(config.dram),
            config,
            stats: MemoryBackendStats::default(),
            per_cluster: vec![ClusterContentionStats::default(); clusters as usize],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GlobalMemoryConfig {
        &self.config
    }

    /// Aggregated back-end statistics.
    pub fn stats(&self) -> MemoryBackendStats {
        self.stats
    }

    /// DRAM interface statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Contention counters for one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_stats(&self, cluster: u32) -> ClusterContentionStats {
        self.per_cluster[cluster as usize]
    }

    /// Contention counters for every cluster, in cluster order.
    pub fn per_cluster_stats(&self) -> &[ClusterContentionStats] {
        &self.per_cluster
    }

    /// Total DRAM queueing delay across clusters — the machine-wide
    /// contention metric.
    pub fn total_dram_stall_cycles(&self) -> u64 {
        self.per_cluster.iter().map(|c| c.dram_stall_cycles).sum()
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.stats().hit_rate()
    }

    /// Serves one line-granular request from `cluster` that missed its L1,
    /// presented to the L2 at `at`; returns the completion cycle.
    pub fn line_access(
        &mut self,
        at: Cycle,
        cluster: u32,
        line_addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        self.stats.l2_accesses += 1;
        self.per_cluster[cluster as usize].l2_accesses += 1;
        let l2_latency = self.l2.latency();
        if self.l2.access(line_addr).is_hit() {
            return at.plus(l2_latency);
        }
        self.stats.l2_misses += 1;
        self.dram_access(at.plus(l2_latency), cluster, bytes, write)
    }

    /// Serves a bulk DMA transfer from `cluster` that bypasses the L1 caches
    /// and streams through the L2 in line-sized chunks, returning the
    /// completion cycle.
    pub fn dma_access(
        &mut self,
        now: Cycle,
        cluster: u32,
        addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        if bytes == 0 {
            return now;
        }
        self.stats.dma_bytes += bytes;
        let line = u64::from(self.config.l2.line_bytes);
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        let mut missed_bytes = 0u64;
        for l in first..=last {
            self.stats.l2_accesses += 1;
            self.per_cluster[cluster as usize].l2_accesses += 1;
            if !self.l2.access(l * line).is_hit() {
                self.stats.l2_misses += 1;
                missed_bytes += line;
            }
        }
        let l2_time = now.plus(self.l2.latency() + (last - first + 1) / 4);
        if missed_bytes == 0 {
            l2_time
        } else {
            self.dram_access(l2_time, cluster, missed_bytes, write)
        }
    }

    /// Issues one DRAM transfer on behalf of `cluster`, recording the
    /// channel-queueing delay it experienced.
    fn dram_access(&mut self, at: Cycle, cluster: u32, bytes: u64, write: bool) -> Cycle {
        let stats = &mut self.per_cluster[cluster as usize];
        stats.dram_requests += 1;
        stats.dram_bytes += bytes;
        stats.dram_stall_cycles += self.dram.busy_until().saturating_sub(at).get();
        self.dram.access(at, bytes, write)
    }
}

impl NextActivity for MemoryBackend {
    /// The L2 and the DRAM channel behind it are purely reactive and
    /// contribute no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend(clusters: u32) -> MemoryBackend {
        MemoryBackend::new(GlobalMemoryConfig::default_soc(2), clusters)
    }

    #[test]
    fn l2_is_shared_across_clusters() {
        let mut b = backend(2);
        let cold = b.line_access(Cycle::new(0), 0, 0, 32, false);
        assert!(cold.get() > 100, "cold miss reaches DRAM");
        let warm = b.line_access(Cycle::new(1000), 1, 0, 32, false);
        assert_eq!(warm, Cycle::new(1000 + 12));
        assert_eq!(b.stats().l2_accesses, 2);
        assert_eq!(b.stats().l2_misses, 1);
        assert_eq!(b.cluster_stats(0).l2_accesses, 1);
        assert_eq!(b.cluster_stats(1).l2_accesses, 1);
    }

    #[test]
    fn concurrent_clusters_contend_for_dram() {
        let mut b = backend(2);
        // Two cold misses to distinct lines presented at the same cycle: the
        // second cluster's transfer queues behind the first on the channel.
        let first = b.line_access(Cycle::new(0), 0, 0, 32, false);
        let second = b.line_access(Cycle::new(0), 1, 4096, 32, false);
        assert!(second > first);
        assert_eq!(b.cluster_stats(0).dram_stall_cycles, 0);
        assert!(b.cluster_stats(1).dram_stall_cycles > 0);
        assert_eq!(
            b.total_dram_stall_cycles(),
            b.cluster_stats(1).dram_stall_cycles
        );
    }

    #[test]
    fn dma_access_streams_through_l2() {
        let mut b = backend(1);
        let done = b.dma_access(Cycle::new(0), 0, 0, 1024, false);
        assert!(done.get() > 100);
        assert_eq!(b.stats().dma_bytes, 1024);
        assert_eq!(b.cluster_stats(0).dram_requests, 1);
        // A later DMA of the same region hits in L2 and avoids DRAM.
        let warm = b.dma_access(done, 0, 0, 1024, false);
        assert!(warm - done < Cycle::new(50));
    }

    #[test]
    fn zero_byte_dma_is_a_noop() {
        let mut b = backend(1);
        assert_eq!(b.dma_access(Cycle::new(7), 0, 0, 0, false), Cycle::new(7));
        assert_eq!(b.stats().dma_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = MemoryBackend::new(GlobalMemoryConfig::default_soc(2), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_range_cluster_panics() {
        let mut b = backend(1);
        let _ = b.line_access(Cycle::new(0), 3, 0, 32, false);
    }
}
