//! A set-associative cache model with LRU replacement.
//!
//! Used for the per-core L1 data caches and the shared L2 cache. The model
//! tracks tags only (no data payloads) — the simulator is trace-free and the
//! functional results are validated separately at the tile level.

use virgo_sim::{Cycle, NextActivity};

/// Configuration of one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
}

impl CacheConfig {
    /// The 16 KiB per-core L1 data cache of Table 2.
    pub fn l1_16k() -> Self {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 4,
            latency: 2,
        }
    }

    /// The 512 KiB shared L2 cache of Table 2.
    pub fn l2_512k() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 32,
            ways: 8,
            latency: 12,
        }
    }

    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }
}

impl virgo_sim::StableHash for CacheConfig {
    fn stable_hash(&self, h: &mut virgo_sim::StableHasher) {
        h.write_u64(self.capacity_bytes);
        h.write_u64(u64::from(self.line_bytes));
        h.write_u64(u64::from(self.ways));
        h.write_u64(self.latency);
    }
}

/// Outcome of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another).
    Miss,
}

/// Event counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of line fills performed (equals misses in this model).
    pub fills: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, LRU-replacement cache.
///
/// # Example
///
/// ```
/// use virgo_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1_16k());
/// assert!(!l1.access(0x1000).is_hit()); // cold miss
/// assert!(l1.access(0x1000).is_hit());  // now resident
/// assert!(l1.access(0x1010).is_hit());  // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets × ways` tag array; `None` means invalid.
    tags: Vec<Option<u64>>,
    /// LRU counters parallel to `tags`; larger means more recently used.
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl CacheOutcome {
    /// True for [`CacheOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

impl Cache {
    /// Creates a cache with all lines invalid.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one set.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache must have at least one set");
        let entries = (sets * u64::from(config.ways)) as usize;
        Cache {
            config,
            tags: vec![None; entries],
            lru: vec![0; entries],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Looks up the line containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / u64::from(self.config.line_bytes);
        let set = (line % self.config.sets()) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;

        // Hit check.
        for way in 0..ways {
            if self.tags[base + way] == Some(line) {
                self.lru[base + way] = self.tick;
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }

        // Miss: fill into the least recently used way (or an invalid way).
        self.stats.misses += 1;
        self.stats.fills += 1;
        let victim = (0..ways)
            .min_by_key(|&way| {
                let idx = base + way;
                if self.tags[idx].is_none() {
                    (0, 0)
                } else {
                    (1, self.lru[idx])
                }
            })
            .expect("ways >= 1");
        self.tags[base + victim] = Some(line);
        self.lru[base + victim] = self.tick;
        CacheOutcome::Miss
    }

    /// Number of distinct cache lines touched by a `[addr, addr+bytes)`
    /// access.
    pub fn lines_for(&self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let line = u64::from(self.config.line_bytes);
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        last - first + 1
    }

    /// Invalidates every line (used between kernel phases in tests).
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
    }
}

impl NextActivity for Cache {
    /// Caches are purely reactive tag arrays: they never initiate work, so
    /// they contribute no self-driven events to the fast-forward horizon.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 32 B lines = 256 B.
        Cache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(4), CacheOutcome::Hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 4 lines × 32 B).
        let set_stride = 4 * 32;
        c.access(0);
        c.access(set_stride);
        // Touch line 0 again so the line at `set_stride` becomes LRU.
        c.access(0);
        c.access(2 * set_stride); // evicts `set_stride`
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(set_stride), CacheOutcome::Miss);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache();
        for i in 0..4u64 {
            assert_eq!(c.access(i * 32), CacheOutcome::Miss);
        }
        for i in 0..4u64 {
            assert_eq!(c.access(i * 32), CacheOutcome::Hit);
        }
    }

    #[test]
    fn lines_for_counts_straddling_accesses() {
        let c = small_cache();
        assert_eq!(c.lines_for(0, 0), 0);
        assert_eq!(c.lines_for(0, 1), 1);
        assert_eq!(c.lines_for(0, 32), 1);
        assert_eq!(c.lines_for(0, 33), 2);
        assert_eq!(c.lines_for(30, 4), 2);
        assert_eq!(c.lines_for(0, 128), 4);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small_cache();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), CacheOutcome::Miss);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small_cache();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standard_configs_have_sane_geometry() {
        assert_eq!(CacheConfig::l1_16k().sets(), 128);
        assert_eq!(CacheConfig::l2_512k().sets(), 2048);
    }
}
