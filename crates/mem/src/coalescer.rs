//! The SIMT memory coalescer (Section 3.2.3).
//!
//! Vortex originally lacked hardware memory coalescing; the paper adds a
//! coalescing unit between the core and the L1 cache that merges per-lane
//! scalar accesses into cache-line-sized requests. The model here performs
//! the same merge: given the lane addresses of one warp memory instruction it
//! returns the distinct cache-line requests to send to the L1.

/// Event counters for the coalescer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescerStats {
    /// Warp memory instructions processed.
    pub warp_accesses: u64,
    /// Lane addresses examined.
    pub lane_accesses: u64,
    /// Coalesced line requests produced.
    pub line_requests: u64,
}

impl CoalescerStats {
    /// Average number of lane accesses merged into each line request.
    pub fn merge_factor(&self) -> f64 {
        if self.line_requests == 0 {
            0.0
        } else {
            self.lane_accesses as f64 / self.line_requests as f64
        }
    }
}

/// The memory coalescing unit.
///
/// # Example
///
/// ```
/// use virgo_mem::Coalescer;
///
/// let mut c = Coalescer::new(32);
/// // Eight consecutive words: a single 32-byte line request.
/// let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
/// assert_eq!(c.coalesce(&addrs, 4).len(), 1);
/// // Eight words strided by 128 bytes: eight separate requests.
/// let strided: Vec<u64> = (0..8).map(|i| i * 128).collect();
/// assert_eq!(c.coalesce(&strided, 4).len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Coalescer {
    line_bytes: u64,
    stats: CoalescerStats,
    /// Reusable request buffer so the per-access merge allocates nothing.
    scratch: Vec<u64>,
}

impl Coalescer {
    /// Creates a coalescer producing requests of `line_bytes` granularity
    /// (the L1 line size).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(line_bytes: u64) -> Self {
        assert!(line_bytes > 0, "line size must be non-zero");
        Coalescer {
            line_bytes,
            stats: CoalescerStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The coalescing granularity in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoalescerStats {
        self.stats
    }

    /// Merges the per-lane byte addresses of one warp memory instruction into
    /// the distinct line-aligned requests they require. Lane accesses of
    /// `bytes_per_lane` bytes that straddle a line boundary generate requests
    /// for both lines.
    pub fn coalesce(&mut self, lane_addrs: &[u64], bytes_per_lane: u32) -> Vec<u64> {
        self.coalesce_lines(lane_addrs, bytes_per_lane).to_vec()
    }

    /// Allocation-free variant of [`Coalescer::coalesce`]: the returned slice
    /// of line-aligned request addresses borrows an internal scratch buffer
    /// and is valid until the next call.
    pub fn coalesce_lines(&mut self, lane_addrs: &[u64], bytes_per_lane: u32) -> &[u64] {
        self.stats.warp_accesses += 1;
        self.stats.lane_accesses += lane_addrs.len() as u64;

        self.scratch.clear();
        for &addr in lane_addrs {
            let first = addr / self.line_bytes;
            let last = (addr + u64::from(bytes_per_lane).max(1) - 1) / self.line_bytes;
            for line in first..=last {
                self.scratch.push(line);
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.stats.line_requests += self.scratch.len() as u64;
        for line in &mut self.scratch {
            *line *= self.line_bytes;
        }
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_warp_access_fully_coalesces() {
        let mut c = Coalescer::new(32);
        let addrs: Vec<u64> = (0..8).map(|i| 0x1000 + i * 4).collect();
        let lines = c.coalesce(&addrs, 4);
        assert_eq!(lines, vec![0x1000]);
        assert!((c.stats().merge_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn contiguous_access_spanning_two_lines() {
        let mut c = Coalescer::new(32);
        let addrs: Vec<u64> = (0..16).map(|i| i * 4).collect();
        let lines = c.coalesce(&addrs, 4);
        assert_eq!(lines, vec![0, 32]);
    }

    #[test]
    fn strided_access_does_not_coalesce() {
        let mut c = Coalescer::new(32);
        let addrs: Vec<u64> = (0..8).map(|i| i * 256).collect();
        assert_eq!(c.coalesce(&addrs, 4).len(), 8);
    }

    #[test]
    fn straddling_lane_access_touches_both_lines() {
        let mut c = Coalescer::new(32);
        let lines = c.coalesce(&[30], 4);
        assert_eq!(lines, vec![0, 32]);
    }

    #[test]
    fn duplicate_lane_addresses_merge() {
        let mut c = Coalescer::new(32);
        let lines = c.coalesce(&[0, 0, 0, 0], 4);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut c = Coalescer::new(32);
        c.coalesce(&[0, 4], 4);
        c.coalesce(&[64, 68], 4);
        let s = c.stats();
        assert_eq!(s.warp_accesses, 2);
        assert_eq!(s.lane_accesses, 4);
        assert_eq!(s.line_requests, 2);
    }

    #[test]
    fn empty_access_produces_no_requests() {
        let mut c = Coalescer::new(32);
        assert!(c.coalesce(&[], 4).is_empty());
        assert_eq!(c.stats().merge_factor(), 0.0);
    }
}
