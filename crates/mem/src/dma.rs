//! The MMIO-programmed cluster DMA engine (Section 3.2.4).
//!
//! The Ampere-style and Hopper-style baselines, as well as Virgo, include a
//! cluster-level DMA engine that moves tiles directly between global memory
//! and shared memory, bypassing the core's register file. In Virgo the same
//! engine can also drain the matrix unit's accumulator memory to global
//! memory. The engine executes one transfer at a time from a FIFO of
//! programmed transfers; completion is reported back to the cluster so that
//! `virgo_fence` can track outstanding asynchronous operations.

use virgo_isa::{decode_remote_smem, MemRegion};
use virgo_sim::{BoundedQueue, Cycle, NextActivity};

use crate::accmem::AccumulatorMemory;
use crate::backend::MemoryBackend;
use crate::dsm::DsmFabric;
use crate::global::GlobalMemory;
use crate::smem::SharedMemory;

impl virgo_sim::StableHash for DmaConfig {
    fn stable_hash(&self, h: &mut virgo_sim::StableHasher) {
        h.write_u64(self.beat_bytes);
        h.write_u64(self.queue_depth as u64);
    }
}

/// Configuration of the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Bytes moved per cycle once a transfer is streaming.
    pub beat_bytes: u64,
    /// Depth of the transfer queue.
    pub queue_depth: usize,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            beat_bytes: 32,
            queue_depth: 8,
        }
    }
}

/// One programmed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Source memory region.
    pub src_region: MemRegion,
    /// Source byte address.
    pub src_addr: u64,
    /// Destination memory region.
    pub dst_region: MemRegion,
    /// Destination byte address.
    pub dst_addr: u64,
    /// Transfer length in bytes.
    pub bytes: u64,
    /// Caller-assigned tag, reported back on completion (used by the cluster
    /// asynchronous-operation tracker behind `virgo_fence`).
    pub tag: u64,
}

/// Event counters for the DMA engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Transfers completed.
    pub transfers: u64,
    /// Total bytes moved.
    pub bytes_moved: u64,
    /// Beats (of `beat_bytes`) moved.
    pub beats: u64,
    /// Cycles the engine spent with an active transfer.
    pub busy_cycles: u64,
}

impl DmaStats {
    /// Adds the counts of `other` into `self` (used to aggregate the
    /// per-cluster engines into a machine-wide view).
    pub fn merge(&mut self, other: &DmaStats) {
        self.transfers += other.transfers;
        self.bytes_moved += other.bytes_moved;
        self.beats += other.beats;
        self.busy_cycles += other.busy_cycles;
    }
}

/// The cluster DMA engine.
///
/// Dependencies (global memory, shared memory, accumulator memory) are passed
/// at [`DmaEngine::tick`] time, so the engine itself holds no shared
/// references.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    config: DmaConfig,
    queue: BoundedQueue<DmaTransfer>,
    /// The in-flight transfer and its completion cycle.
    active: Option<(DmaTransfer, Cycle)>,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an idle DMA engine.
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine {
            queue: BoundedQueue::new(config.queue_depth),
            config,
            active: None,
            stats: DmaStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Programs a transfer.
    ///
    /// # Errors
    ///
    /// Returns the transfer back when the queue is full (the issuing warp
    /// must retry, modelling MMIO back-pressure).
    pub fn submit(&mut self, transfer: DmaTransfer) -> Result<(), DmaTransfer> {
        self.queue.push(transfer)
    }

    /// Number of transfers queued or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// True when no transfer is queued or active.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Advances the engine by one cycle; returns the transfers that completed
    /// this cycle. Global-memory endpoints stream through the cluster's
    /// `global` front-end into the shared `backend`; shared-memory endpoints
    /// addressed through the remote DSM window traverse the `fabric` to the
    /// peer cluster's scratchpad instead of the local banks.
    pub fn tick(
        &mut self,
        now: Cycle,
        global: &mut GlobalMemory,
        backend: &mut MemoryBackend,
        smem: &mut SharedMemory,
        accmem: Option<&mut AccumulatorMemory>,
        fabric: &mut DsmFabric,
    ) -> Vec<DmaTransfer> {
        let mut completed = Vec::new();

        if let Some((transfer, done)) = self.active {
            self.stats.busy_cycles += 1;
            if now >= done {
                self.stats.transfers += 1;
                self.stats.bytes_moved += transfer.bytes;
                self.stats.beats += transfer.bytes.div_ceil(self.config.beat_bytes);
                completed.push(transfer);
                self.active = None;
            }
        }

        if self.active.is_none() {
            if let Some(transfer) = self.queue.pop() {
                let done = self.schedule(now, &transfer, global, backend, smem, accmem, fabric);
                self.active = Some((transfer, done));
            }
        }

        completed
    }

    /// Bulk-accounts `cycles` skipped ticks during which the engine is known
    /// to keep streaming its active transfer.
    ///
    /// The naive loop increments `busy_cycles` once per tick while a transfer
    /// is active; when the fast-forward driver skips a quiescent window it
    /// calls this instead so the statistics stay bit-identical. The caller
    /// guarantees (via [`NextActivity`]) that the window ends no later than
    /// the active transfer's completion cycle.
    pub fn fast_forward(&mut self, cycles: u64) {
        if self.active.is_some() {
            self.stats.busy_cycles += cycles;
        }
    }

    /// Computes when a transfer started at `now` completes, reserving the
    /// memory resources it uses.
    // One parameter per memory the engine can touch; bundling them into a
    // context struct would just move the argument list one call up.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &mut self,
        now: Cycle,
        transfer: &DmaTransfer,
        global: &mut GlobalMemory,
        backend: &mut MemoryBackend,
        smem: &mut SharedMemory,
        mut accmem: Option<&mut AccumulatorMemory>,
        fabric: &mut DsmFabric,
    ) -> Cycle {
        let stream_cycles = transfer.bytes.div_ceil(self.config.beat_bytes).max(1);
        let mut done = now.plus(stream_cycles);

        for (region, addr, write) in [
            (transfer.src_region, transfer.src_addr, false),
            (transfer.dst_region, transfer.dst_addr, true),
        ] {
            let endpoint_done = match region {
                MemRegion::Global => global.dma_access(now, addr, transfer.bytes, write, backend),
                // A shared endpoint in the remote DSM window traverses the
                // inter-cluster fabric to the peer's scratchpad port (the
                // fabric models the remote bank occupancy as part of its
                // link streaming time); a local one streams through this
                // cluster's wide port.
                MemRegion::Shared => match decode_remote_smem(addr) {
                    Some((peer, _offset)) => {
                        fabric.transfer(now, global.cluster(), peer, transfer.bytes)
                    }
                    None => {
                        // Stream through the wide port in 64-byte chunks.
                        let mut t = now;
                        let mut offset = 0;
                        while offset < transfer.bytes {
                            let chunk = (transfer.bytes - offset).min(64);
                            t = smem.access_wide(t, addr + offset, chunk, write).done;
                            offset += chunk;
                        }
                        t
                    }
                },
                MemRegion::Accumulator => match accmem.as_deref_mut() {
                    Some(acc) => acc.access(now, addr, transfer.bytes, write),
                    None => now,
                },
            };
            done = done.max(endpoint_done);
        }
        done
    }
}

impl NextActivity for DmaEngine {
    /// The engine next acts when its in-flight transfer completes, or
    /// immediately if a queued transfer is waiting to start. Ticks before the
    /// active transfer's completion only increment `busy_cycles`, which
    /// [`DmaEngine::fast_forward`] replays in bulk.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match &self.active {
            Some((_, done)) => Some((*done).max(now)),
            None if !self.queue.is_empty() => Some(now),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsm::DsmConfig;
    use crate::global::GlobalMemoryConfig;
    use crate::smem::SmemConfig;

    fn setup() -> (
        DmaEngine,
        GlobalMemory,
        MemoryBackend,
        SharedMemory,
        AccumulatorMemory,
        DsmFabric,
    ) {
        let config = GlobalMemoryConfig::default_soc(4);
        (
            DmaEngine::new(DmaConfig::default()),
            GlobalMemory::new(config),
            MemoryBackend::new(config, 1),
            SharedMemory::new(SmemConfig::virgo_cluster()),
            AccumulatorMemory::default_virgo(),
            DsmFabric::new(DsmConfig::enabled_default(), 2),
        )
    }

    fn run_until_complete(
        dma: &mut DmaEngine,
        global: &mut GlobalMemory,
        backend: &mut MemoryBackend,
        smem: &mut SharedMemory,
        acc: &mut AccumulatorMemory,
        fabric: &mut DsmFabric,
        limit: u64,
    ) -> (Vec<DmaTransfer>, u64) {
        let mut all = Vec::new();
        for cycle in 0..limit {
            let done = dma.tick(Cycle::new(cycle), global, backend, smem, Some(acc), fabric);
            all.extend(done);
            if dma.is_idle() && !all.is_empty() {
                return (all, cycle);
            }
        }
        (all, limit)
    }

    fn transfer(src: MemRegion, dst: MemRegion, bytes: u64, tag: u64) -> DmaTransfer {
        DmaTransfer {
            src_region: src,
            src_addr: 0,
            dst_region: dst,
            dst_addr: 0,
            bytes,
            tag,
        }
    }

    #[test]
    fn global_to_shared_transfer_completes() {
        let (mut dma, mut g, mut be, mut s, mut a, mut f) = setup();
        dma.submit(transfer(MemRegion::Global, MemRegion::Shared, 4096, 7))
            .unwrap();
        let (done, cycle) =
            run_until_complete(&mut dma, &mut g, &mut be, &mut s, &mut a, &mut f, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        // 4096 bytes at 16 B/cycle DRAM bandwidth needs at least 256 cycles.
        assert!(cycle >= 256, "completed unrealistically fast: {cycle}");
        assert_eq!(dma.stats().transfers, 1);
        assert_eq!(dma.stats().bytes_moved, 4096);
        assert!(s.stats().bytes_written >= 4096);
    }

    #[test]
    fn accumulator_to_global_transfer_touches_accumulator() {
        let (mut dma, mut g, mut be, mut s, mut a, mut f) = setup();
        dma.submit(transfer(MemRegion::Accumulator, MemRegion::Global, 2048, 1))
            .unwrap();
        let (done, _) =
            run_until_complete(&mut dma, &mut g, &mut be, &mut s, &mut a, &mut f, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(a.stats().words_read, 512);
        assert!(be.stats().dma_bytes >= 2048);
    }

    #[test]
    fn transfers_execute_in_fifo_order() {
        let (mut dma, mut g, mut be, mut s, mut a, mut f) = setup();
        dma.submit(transfer(MemRegion::Global, MemRegion::Shared, 256, 1))
            .unwrap();
        dma.submit(transfer(MemRegion::Global, MemRegion::Shared, 256, 2))
            .unwrap();
        let mut order = Vec::new();
        for cycle in 0..10_000 {
            for t in dma.tick(
                Cycle::new(cycle),
                &mut g,
                &mut be,
                &mut s,
                Some(&mut a),
                &mut f,
            ) {
                order.push(t.tag);
            }
            if dma.is_idle() {
                break;
            }
        }
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn remote_window_destination_routes_over_the_fabric() {
        let (mut dma, mut g, mut be, mut s, mut a, mut f) = setup();
        // Push a 4 KiB tile from the local accumulator into cluster 1's
        // scratchpad: the shared-memory leg must traverse the DSM fabric,
        // not the local banks, and must not touch the DRAM back-end.
        dma.submit(DmaTransfer {
            src_region: MemRegion::Accumulator,
            src_addr: 0,
            dst_region: MemRegion::Shared,
            dst_addr: virgo_isa::remote_smem_addr(1, 0x4000),
            bytes: 4096,
            tag: 3,
        })
        .unwrap();
        let (done, _) =
            run_until_complete(&mut dma, &mut g, &mut be, &mut s, &mut a, &mut f, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(f.stats().transfers, 1);
        assert_eq!(f.stats().bytes, 4096);
        assert_eq!(f.cluster_stats(0).per_link[1].bytes, 4096);
        assert_eq!(s.stats().wide_accesses, 0, "local banks bypassed");
        assert_eq!(be.stats().dma_bytes, 0, "no DRAM round trip");
        assert_eq!(a.stats().words_read, 1024, "accumulator side still local");
    }

    #[test]
    fn queue_exerts_backpressure() {
        let mut dma = DmaEngine::new(DmaConfig {
            beat_bytes: 32,
            queue_depth: 1,
        });
        assert!(dma
            .submit(transfer(MemRegion::Global, MemRegion::Shared, 64, 1))
            .is_ok());
        assert!(dma
            .submit(transfer(MemRegion::Global, MemRegion::Shared, 64, 2))
            .is_err());
        assert_eq!(dma.pending(), 1);
    }

    #[test]
    fn idle_engine_reports_idle() {
        let (mut dma, mut g, mut be, mut s, mut a, mut f) = setup();
        assert!(dma.is_idle());
        let done = dma.tick(Cycle::new(0), &mut g, &mut be, &mut s, Some(&mut a), &mut f);
        assert!(done.is_empty());
        assert_eq!(dma.stats().busy_cycles, 0);
    }
}
