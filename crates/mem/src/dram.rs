//! A bandwidth- and latency-limited DRAM model.

use virgo_sim::{Cycle, NextActivity};

/// Configuration of the DRAM interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Fixed access latency in cycles (row activation, controller queueing).
    pub latency: u64,
    /// Sustained bandwidth in bytes per SoC cycle.
    pub bytes_per_cycle: u64,
    /// Burst granularity in bytes; every transfer is rounded up to bursts.
    pub burst_bytes: u64,
}

impl DramConfig {
    /// A DDR-class interface matched to the 400 MHz SoC: 32 bytes/cycle
    /// (≈ 12.8 GB/s) with 100-cycle latency.
    pub fn default_soc() -> Self {
        DramConfig {
            latency: 100,
            bytes_per_cycle: 32,
            burst_bytes: 32,
        }
    }
}

/// Event counters for the DRAM interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests served.
    pub writes: u64,
    /// Total bytes transferred (after rounding to bursts).
    pub bytes: u64,
    /// Total 32-byte bursts transferred.
    pub bursts: u64,
}

/// The DRAM model: a single channel with fixed latency and finite bandwidth.
///
/// Requests occupy the channel back-to-back; a request issued while the
/// channel is busy is serialized behind the earlier ones.
///
/// # Example
///
/// ```
/// use virgo_mem::{DramConfig, DramModel};
/// use virgo_sim::Cycle;
///
/// let mut dram = DramModel::new(DramConfig::default_soc());
/// let done = dram.access(Cycle::new(0), 256, false);
/// // 256 bytes at 32 B/cycle occupies 8 cycles after the 100-cycle latency.
/// assert_eq!(done, Cycle::new(108));
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    /// Cycle at which the channel becomes free.
    busy_until: Cycle,
    stats: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth or burst size is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.bytes_per_cycle > 0, "bandwidth must be non-zero");
        assert!(config.burst_bytes > 0, "burst size must be non-zero");
        DramModel {
            config,
            busy_until: Cycle::ZERO,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Cycle at which the channel next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Performs a transfer of `bytes` starting no earlier than `now`,
    /// returning the completion cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64, write: bool) -> Cycle {
        let bursts = bytes.div_ceil(self.config.burst_bytes).max(1);
        let rounded = bursts * self.config.burst_bytes;
        let transfer_cycles = rounded.div_ceil(self.config.bytes_per_cycle).max(1);

        // Data transfer starts when the channel is free; the fixed latency
        // overlaps with queueing only up to the channel-free point.
        let start = now.max(self.busy_until);
        let done = start.plus(self.config.latency + transfer_cycles);
        self.busy_until = start.plus(transfer_cycles);

        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += rounded;
        self.stats.bursts += bursts;
        done
    }
}

impl NextActivity for DramModel {
    /// The DRAM channel is purely reactive: `busy_until` shapes the latency
    /// of *future* requests but nothing happens when the channel drains, so
    /// it contributes no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::new(DramConfig {
            latency: 10,
            bytes_per_cycle: 8,
            burst_bytes: 32,
        })
    }

    #[test]
    fn single_access_latency_plus_transfer() {
        let mut d = dram();
        let done = d.access(Cycle::new(0), 32, false);
        assert_eq!(done, Cycle::new(10 + 4));
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes, 32);
    }

    #[test]
    fn small_access_rounds_to_burst() {
        let mut d = dram();
        d.access(Cycle::new(0), 4, true);
        assert_eq!(d.stats().bytes, 32);
        assert_eq!(d.stats().bursts, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn back_to_back_accesses_serialize() {
        let mut d = dram();
        let first = d.access(Cycle::new(0), 64, false);
        let second = d.access(Cycle::new(0), 64, false);
        assert_eq!(first, Cycle::new(10 + 8));
        // Second transfer waits for the first to release the channel.
        assert_eq!(second, Cycle::new(8 + 10 + 8));
        assert!(d.busy_until() == Cycle::new(16));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = dram();
        d.access(Cycle::new(0), 32, false);
        let done = d.access(Cycle::new(1000), 32, false);
        assert_eq!(done, Cycle::new(1000 + 10 + 4));
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut d = dram();
        let mut last = Cycle::ZERO;
        for _ in 0..100 {
            last = d.access(Cycle::ZERO, 32, false);
        }
        // 100 bursts × 4 cycles each = 400 cycles of bus occupancy.
        assert!(last.get() >= 400);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = DramModel::new(DramConfig {
            latency: 1,
            bytes_per_cycle: 0,
            burst_bytes: 32,
        });
    }
}
