//! A bandwidth- and latency-limited DRAM model: one channel, and the
//! address-interleaved multi-channel subsystem built from it.

use virgo_sim::{Cycle, NextActivity, StableHash, StableHasher};

/// Configuration of the DRAM interface.
///
/// `channels` and `interleave_bytes` describe the *subsystem* built by
/// [`MultiChannelDram`]: physical addresses are striped across channels at
/// `interleave_bytes` granularity (`channel = (addr / interleave_bytes) %
/// channels`), and every channel owns a full `bytes_per_cycle` bus, so
/// aggregate bandwidth scales with the channel count. A single
/// [`DramModel`] ignores both fields — it *is* one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Fixed access latency in cycles (row activation, controller queueing).
    pub latency: u64,
    /// Sustained bandwidth in bytes per SoC cycle, per channel.
    pub bytes_per_cycle: u64,
    /// Burst granularity in bytes; every transfer is rounded up to bursts.
    pub burst_bytes: u64,
    /// Number of independent channels the subsystem stripes addresses over.
    pub channels: u32,
    /// Address-interleave granularity in bytes: consecutive
    /// `interleave_bytes`-sized blocks map to consecutive channels.
    pub interleave_bytes: u64,
}

impl DramConfig {
    /// A DDR-class interface matched to the 400 MHz SoC: a single channel of
    /// 32 bytes/cycle (≈ 12.8 GB/s) with 100-cycle latency, interleaved at
    /// 256-byte granularity when scaled to more channels.
    pub fn default_soc() -> Self {
        DramConfig {
            latency: 100,
            bytes_per_cycle: 32,
            burst_bytes: 32,
            channels: 1,
            interleave_bytes: 256,
        }
    }

    /// The same interface scaled to `channels` address-interleaved channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels > 0, "a DRAM subsystem needs at least one channel");
        self.channels = channels;
        self
    }
}

impl StableHash for DramConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.latency);
        h.write_u64(self.bytes_per_cycle);
        h.write_u64(self.burst_bytes);
        h.write_u64(u64::from(self.channels));
        h.write_u64(self.interleave_bytes);
    }
}

/// Event counters for one DRAM channel (or the aggregate over channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests served.
    pub writes: u64,
    /// Total bytes transferred (after rounding to bursts).
    pub bytes: u64,
    /// Total bursts transferred, each `burst_bytes` wide (32 bytes at the
    /// default SoC configuration).
    pub bursts: u64,
}

impl DramStats {
    /// Adds the counts of `other` into `self` (used to aggregate channels).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes += other.bytes;
        self.bursts += other.bursts;
    }
}

/// The DRAM model: a single channel with fixed latency and finite bandwidth.
///
/// Requests occupy the channel's data bus back-to-back; a request issued
/// while the bus is busy is serialized behind the earlier ones, but its fixed
/// access latency (row activation, controller pipeline) overlaps with the
/// queueing delay instead of being paid again on top of it.
///
/// # Example
///
/// ```
/// use virgo_mem::{DramConfig, DramModel};
/// use virgo_sim::Cycle;
///
/// let mut dram = DramModel::new(DramConfig::default_soc());
/// let done = dram.access(Cycle::new(0), 256, false);
/// // 256 bytes at 32 B/cycle occupies 8 cycles after the 100-cycle latency.
/// assert_eq!(done, Cycle::new(108));
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    /// Cycle at which the channel becomes free.
    busy_until: Cycle,
    stats: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth or burst size is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.bytes_per_cycle > 0, "bandwidth must be non-zero");
        assert!(config.burst_bytes > 0, "burst size must be non-zero");
        DramModel {
            config,
            busy_until: Cycle::ZERO,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Cycle at which the channel next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Performs a transfer of `bytes` starting no earlier than `now`,
    /// returning the completion cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64, write: bool) -> Cycle {
        let bursts = bytes.div_ceil(self.config.burst_bytes).max(1);
        let rounded = bursts * self.config.burst_bytes;
        let transfer_cycles = rounded.div_ceil(self.config.bytes_per_cycle).max(1);

        // Data transfer starts when the bus is free; the fixed latency runs
        // concurrently with the queueing delay, so completion is the later of
        // "bus slot ends" and "latency plus transfer from request time".
        let start = now.max(self.busy_until);
        self.busy_until = start.plus(transfer_cycles);
        let done = start
            .max(now.plus(self.config.latency))
            .plus(transfer_cycles);

        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += rounded;
        self.stats.bursts += bursts;
        done
    }
}

impl NextActivity for DramModel {
    /// The DRAM channel is purely reactive: `busy_until` shapes the latency
    /// of *future* requests but nothing happens when the channel drains, so
    /// it contributes no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

/// The address-interleaved multi-channel DRAM subsystem.
///
/// `channels` independent [`DramModel`] channels sit behind one physical
/// address space; block `addr / interleave_bytes` belongs to channel
/// `(addr / interleave_bytes) % channels`. Each channel has its own data bus,
/// so requests to distinct channels proceed in parallel and aggregate
/// bandwidth scales with the channel count, while requests that collide on
/// one channel still serialize exactly like the single-channel model.
///
/// With `channels = 1` every address routes to channel 0 and the subsystem
/// is bit-identical to a bare [`DramModel`] (pinned by the property tests in
/// the workspace's `tests/integration_dram.rs`).
///
/// # Example
///
/// ```
/// use virgo_mem::{DramConfig, MultiChannelDram};
/// use virgo_sim::Cycle;
///
/// let mut dram = MultiChannelDram::new(DramConfig::default_soc().with_channels(2));
/// // Blocks 0 and 1 (256-byte interleave) land on different channels, so
/// // two same-cycle transfers both complete without queueing.
/// let a = dram.access(Cycle::new(0), 0, 256, false);
/// let b = dram.access(Cycle::new(0), 256, 256, true);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDram {
    config: DramConfig,
    channels: Vec<DramModel>,
}

impl MultiChannelDram {
    /// Creates the subsystem with every channel idle.
    ///
    /// # Panics
    ///
    /// Panics if the channel count, interleave granularity, bandwidth or
    /// burst size is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "at least one DRAM channel");
        assert!(
            config.interleave_bytes > 0,
            "interleave granularity must be non-zero"
        );
        let channels = (0..config.channels)
            .map(|_| DramModel::new(config))
            .collect();
        MultiChannelDram { config, channels }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channel_count(&self) -> u32 {
        self.config.channels
    }

    /// The channel index serving physical address `addr`.
    pub fn channel_for(&self, addr: u64) -> u32 {
        ((addr / self.config.interleave_bytes) % u64::from(self.config.channels)) as u32
    }

    /// Cycle at which `channel` next becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn busy_until(&self, channel: u32) -> Cycle {
        self.channels[channel as usize].busy_until()
    }

    /// Performs a transfer of `bytes` on the channel that owns `addr`,
    /// starting no earlier than `now`; returns the completion cycle.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        let channel = self.channel_for(addr);
        self.access_on(channel, now, bytes, write)
    }

    /// Performs a transfer of `bytes` on an explicit channel (used by callers
    /// that already routed, e.g. to split a DMA transfer into per-channel
    /// sub-transfers).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn access_on(&mut self, channel: u32, now: Cycle, bytes: u64, write: bool) -> Cycle {
        self.channels[channel as usize].access(now, bytes, write)
    }

    /// Aggregate statistics summed over every channel.
    pub fn stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for channel in &self.channels {
            total.merge(&channel.stats());
        }
        total
    }

    /// Per-channel statistics, in channel order.
    pub fn per_channel_stats(&self) -> Vec<DramStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }
}

impl NextActivity for MultiChannelDram {
    /// Like the single channel: purely reactive, no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DramConfig {
        DramConfig {
            latency: 10,
            bytes_per_cycle: 8,
            burst_bytes: 32,
            channels: 1,
            interleave_bytes: 256,
        }
    }

    fn dram() -> DramModel {
        DramModel::new(config())
    }

    #[test]
    fn single_access_latency_plus_transfer() {
        let mut d = dram();
        let done = d.access(Cycle::new(0), 32, false);
        assert_eq!(done, Cycle::new(10 + 4));
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes, 32);
    }

    #[test]
    fn small_access_rounds_to_burst() {
        let mut d = dram();
        d.access(Cycle::new(0), 4, true);
        assert_eq!(d.stats().bytes, 32);
        assert_eq!(d.stats().bursts, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn back_to_back_accesses_serialize_on_the_bus() {
        let mut d = dram();
        let first = d.access(Cycle::new(0), 64, false);
        let second = d.access(Cycle::new(0), 64, false);
        assert_eq!(first, Cycle::new(10 + 8));
        // The second transfer's data moves over bus cycles 8..16, but its
        // fixed latency (10) overlapped with the 8-cycle queueing delay, so
        // it completes at max(8, 10) + 8 = 18, not 8 + 10 + 8 = 26.
        assert_eq!(second, Cycle::new(18));
        assert!(d.busy_until() == Cycle::new(16));
    }

    /// Regression test for the latency/queueing double-charge: two requests
    /// issued the same cycle used to each pay the full fixed latency *after*
    /// queueing; now latency overlaps the queue, so the queued request is
    /// delayed only by the bus occupancy it actually waited for.
    #[test]
    fn queued_request_overlaps_latency_with_queueing() {
        let mut d = dram();
        // 32-byte transfers: 4 bus cycles each, 10-cycle latency.
        let first = d.access(Cycle::new(0), 32, false);
        let second = d.access(Cycle::new(0), 32, false);
        assert_eq!(first, Cycle::new(14), "idle channel: latency + transfer");
        // Queued behind 4 bus cycles, but the 10-cycle latency covers that
        // wait entirely: completion stays latency + transfer = 14 instead of
        // the old serial 4 + 10 + 4 = 18.
        assert_eq!(second, Cycle::new(14));
        let third = d.access(Cycle::new(0), 32, false);
        // Bus free at 8; latency floor (10) still dominates: max(8,10)+4.
        assert_eq!(third, Cycle::new(14));
        let fourth = d.access(Cycle::new(0), 32, false);
        // Deep in the queue the bus wait finally dominates: starts at 12,
        // completes at 12 + 4 = 16 (> the latency floor of 14).
        assert_eq!(fourth, Cycle::new(16));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = dram();
        d.access(Cycle::new(0), 32, false);
        let done = d.access(Cycle::new(1000), 32, false);
        assert_eq!(done, Cycle::new(1000 + 10 + 4));
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut d = dram();
        let mut last = Cycle::ZERO;
        for _ in 0..100 {
            last = d.access(Cycle::ZERO, 32, false);
        }
        // 100 bursts × 4 cycles each = 400 cycles of bus occupancy.
        assert!(last.get() >= 400);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = DramModel::new(DramConfig {
            bytes_per_cycle: 0,
            ..config()
        });
    }

    #[test]
    #[should_panic(expected = "at least one DRAM channel")]
    fn zero_channels_rejected() {
        let _ = MultiChannelDram::new(DramConfig {
            channels: 0,
            ..config()
        });
    }

    #[test]
    #[should_panic(expected = "interleave")]
    fn zero_interleave_rejected() {
        let _ = MultiChannelDram::new(DramConfig {
            interleave_bytes: 0,
            ..config()
        });
    }

    #[test]
    fn addresses_stripe_round_robin_across_channels() {
        let d = MultiChannelDram::new(config().with_channels(4));
        assert_eq!(d.channel_for(0), 0);
        assert_eq!(d.channel_for(255), 0);
        assert_eq!(d.channel_for(256), 1);
        assert_eq!(d.channel_for(512), 2);
        assert_eq!(d.channel_for(768), 3);
        assert_eq!(d.channel_for(1024), 0);
    }

    #[test]
    fn distinct_channels_do_not_queue() {
        let mut d = MultiChannelDram::new(config().with_channels(2));
        // 256-byte transfers occupy a bus for 32 cycles — longer than the
        // 10-cycle latency, so queueing is visible in completion times.
        let a = d.access(Cycle::new(0), 0, 256, false);
        let b = d.access(Cycle::new(0), 256, 256, false);
        assert_eq!(a, b, "parallel channels serve same-cycle requests");
        // A third request colliding with channel 0 queues behind `a`'s bus.
        let c = d.access(Cycle::new(0), 512, 256, false);
        assert!(c > a);
    }

    #[test]
    fn aggregate_stats_sum_channels() {
        let mut d = MultiChannelDram::new(config().with_channels(2));
        d.access(Cycle::new(0), 0, 32, false);
        d.access(Cycle::new(0), 256, 64, true);
        let total = d.stats();
        assert_eq!(total.reads, 1);
        assert_eq!(total.writes, 1);
        assert_eq!(total.bytes, 96);
        assert_eq!(total.bursts, 3);
        let per = d.per_channel_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].reads, 1);
        assert_eq!(per[1].writes, 1);
    }

    /// A non-32-byte burst configuration counts bursts in `burst_bytes`
    /// units, not hard-coded 32-byte units.
    #[test]
    fn burst_counting_follows_configured_burst_bytes() {
        let mut d = DramModel::new(DramConfig {
            burst_bytes: 64,
            ..config()
        });
        d.access(Cycle::new(0), 96, false);
        assert_eq!(d.stats().bursts, 2, "96 bytes is two 64-byte bursts");
        assert_eq!(d.stats().bytes, 128, "rounded to burst multiples");
    }
}
