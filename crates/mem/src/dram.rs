//! A bandwidth- and latency-limited DRAM model: one channel, and the
//! address-interleaved multi-channel subsystem built from it.

use virgo_sim::fault::{FaultKind, FaultPlan, PERMANENT};
use virgo_sim::{Cycle, NextActivity, StableHash, StableHasher};

/// Configuration of the DRAM interface.
///
/// `channels` and `interleave_bytes` describe the *subsystem* built by
/// [`MultiChannelDram`]: physical addresses are striped across channels at
/// `interleave_bytes` granularity (`channel = (addr / interleave_bytes) %
/// channels`), and every channel owns a full `bytes_per_cycle` bus, so
/// aggregate bandwidth scales with the channel count. A single
/// [`DramModel`] ignores both fields — it *is* one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Fixed access latency in cycles (row activation, controller queueing).
    pub latency: u64,
    /// Sustained bandwidth in bytes per SoC cycle, per channel.
    pub bytes_per_cycle: u64,
    /// Burst granularity in bytes; every transfer is rounded up to bursts.
    pub burst_bytes: u64,
    /// Number of independent channels the subsystem stripes addresses over.
    pub channels: u32,
    /// Address-interleave granularity in bytes: consecutive
    /// `interleave_bytes`-sized blocks map to consecutive channels.
    pub interleave_bytes: u64,
}

impl DramConfig {
    /// A DDR-class interface matched to the 400 MHz SoC: a single channel of
    /// 32 bytes/cycle (≈ 12.8 GB/s) with 100-cycle latency, interleaved at
    /// 256-byte granularity when scaled to more channels.
    pub fn default_soc() -> Self {
        DramConfig {
            latency: 100,
            bytes_per_cycle: 32,
            burst_bytes: 32,
            channels: 1,
            interleave_bytes: 256,
        }
    }

    /// The same interface scaled to `channels` address-interleaved channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels > 0, "a DRAM subsystem needs at least one channel");
        self.channels = channels;
        self
    }
}

impl StableHash for DramConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.latency);
        h.write_u64(self.bytes_per_cycle);
        h.write_u64(self.burst_bytes);
        h.write_u64(u64::from(self.channels));
        h.write_u64(self.interleave_bytes);
    }
}

/// Event counters for one DRAM channel (or the aggregate over channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests served.
    pub writes: u64,
    /// Total bytes transferred (after rounding to bursts).
    pub bytes: u64,
    /// Total bursts transferred, each `burst_bytes` wide (32 bytes at the
    /// default SoC configuration).
    pub bursts: u64,
}

impl DramStats {
    /// Adds the counts of `other` into `self` (used to aggregate channels).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes += other.bytes;
        self.bursts += other.bursts;
    }

    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads.saturating_sub(base.reads),
            writes: self.writes.saturating_sub(base.writes),
            bytes: self.bytes.saturating_sub(base.bytes),
            bursts: self.bursts.saturating_sub(base.bursts),
        }
    }
}

/// The DRAM model: a single channel with fixed latency and finite bandwidth.
///
/// Requests occupy the channel's data bus back-to-back; a request issued
/// while the bus is busy is serialized behind the earlier ones, but its fixed
/// access latency (row activation, controller pipeline) overlaps with the
/// queueing delay instead of being paid again on top of it.
///
/// # Example
///
/// ```
/// use virgo_mem::{DramConfig, DramModel};
/// use virgo_sim::Cycle;
///
/// let mut dram = DramModel::new(DramConfig::default_soc());
/// let done = dram.access(Cycle::new(0), 256, false);
/// // 256 bytes at 32 B/cycle occupies 8 cycles after the 100-cycle latency.
/// assert_eq!(done, Cycle::new(108));
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    /// Cycle at which the channel becomes free.
    busy_until: Cycle,
    stats: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth or burst size is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.bytes_per_cycle > 0, "bandwidth must be non-zero");
        assert!(config.burst_bytes > 0, "burst size must be non-zero");
        DramModel {
            config,
            busy_until: Cycle::ZERO,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Cycle at which the channel next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Performs a transfer of `bytes` starting no earlier than `now`,
    /// returning the completion cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64, write: bool) -> Cycle {
        self.access_scaled(now, bytes, write, 1)
    }

    /// Like [`DramModel::access`], with the fixed access latency multiplied
    /// by `latency_multiplier` (a throttled channel during a fault window;
    /// `1` is the healthy path and changes nothing).
    pub fn access_scaled(
        &mut self,
        now: Cycle,
        bytes: u64,
        write: bool,
        latency_multiplier: u64,
    ) -> Cycle {
        let bursts = bytes.div_ceil(self.config.burst_bytes).max(1);
        let rounded = bursts * self.config.burst_bytes;
        let transfer_cycles = rounded.div_ceil(self.config.bytes_per_cycle).max(1);
        let latency = self.config.latency * latency_multiplier.max(1);

        // Data transfer starts when the bus is free; the fixed latency runs
        // concurrently with the queueing delay, so completion is the later of
        // "bus slot ends" and "latency plus transfer from request time".
        let start = now.max(self.busy_until);
        self.busy_until = start.plus(transfer_cycles);
        let done = start.max(now.plus(latency)).plus(transfer_cycles);

        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += rounded;
        self.stats.bursts += bursts;
        done
    }
}

impl NextActivity for DramModel {
    /// The DRAM channel is purely reactive: `busy_until` shapes the latency
    /// of *future* requests but nothing happens when the channel drains, so
    /// it contributes no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

/// Degraded-mode counters for the multi-channel DRAM subsystem, populated
/// only when a [`FaultPlan`] carries DRAM channel faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramFaultStats {
    /// Accesses whose home channel was down and were re-striped onto a
    /// surviving channel.
    pub restriped_accesses: u64,
    /// Cycles between a channel's fault window closing and the first access
    /// it served afterwards (recovery latency), summed over channels.
    pub recovery_cycles: u64,
}

impl DramFaultStats {
    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &DramFaultStats) -> DramFaultStats {
        DramFaultStats {
            restriped_accesses: self
                .restriped_accesses
                .saturating_sub(base.restriped_accesses),
            recovery_cycles: self.recovery_cycles.saturating_sub(base.recovery_cycles),
        }
    }
}

/// One DRAM channel fault window, resolved against the subsystem.
#[derive(Debug, Clone, Copy)]
struct ChannelFaultState {
    channel: u32,
    from: u64,
    until: u64,
    /// `None` for a full outage; `Some(m)` multiplies the access latency.
    latency_multiplier: Option<u32>,
    /// Whether the first post-window access was already accounted as the
    /// recovery point (pre-set for permanent windows, which never recover).
    recovered: bool,
}

impl ChannelFaultState {
    fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }
}

/// The address-interleaved multi-channel DRAM subsystem.
///
/// `channels` independent [`DramModel`] channels sit behind one physical
/// address space; block `addr / interleave_bytes` belongs to channel
/// `(addr / interleave_bytes) % channels`. Each channel has its own data bus,
/// so requests to distinct channels proceed in parallel and aggregate
/// bandwidth scales with the channel count, while requests that collide on
/// one channel still serialize exactly like the single-channel model.
///
/// With `channels = 1` every address routes to channel 0 and the subsystem
/// is bit-identical to a bare [`DramModel`] (pinned by the property tests in
/// the workspace's `tests/integration_dram.rs`).
///
/// # Example
///
/// ```
/// use virgo_mem::{DramConfig, MultiChannelDram};
/// use virgo_sim::Cycle;
///
/// let mut dram = MultiChannelDram::new(DramConfig::default_soc().with_channels(2));
/// // Blocks 0 and 1 (256-byte interleave) land on different channels, so
/// // two same-cycle transfers both complete without queueing.
/// let a = dram.access(Cycle::new(0), 0, 256, false);
/// let b = dram.access(Cycle::new(0), 256, 256, true);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDram {
    config: DramConfig,
    channels: Vec<DramModel>,
    /// DRAM channel fault windows; empty on a healthy machine, in which case
    /// routing takes the original zero-cost path.
    faults: Vec<ChannelFaultState>,
    fault_stats: DramFaultStats,
}

impl MultiChannelDram {
    /// Creates the subsystem with every channel idle.
    ///
    /// # Panics
    ///
    /// Panics if the channel count, interleave granularity, bandwidth or
    /// burst size is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "at least one DRAM channel");
        assert!(
            config.interleave_bytes > 0,
            "interleave granularity must be non-zero"
        );
        let channels = (0..config.channels)
            .map(|_| DramModel::new(config))
            .collect();
        MultiChannelDram {
            config,
            channels,
            faults: Vec::new(),
            fault_stats: DramFaultStats::default(),
        }
    }

    /// Installs the DRAM channel fault windows of `plan`. An empty plan (or
    /// one without DRAM events) leaves the subsystem on its zero-cost path.
    ///
    /// # Panics
    ///
    /// Panics if an event names a channel the subsystem does not have.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for event in &plan.events {
            let (channel, latency_multiplier) = match event.kind {
                FaultKind::DramChannelDown { channel } => (channel, None),
                FaultKind::DramChannelThrottle {
                    channel,
                    latency_multiplier,
                } => (channel, Some(latency_multiplier)),
                _ => continue,
            };
            assert!(
                channel < self.config.channels,
                "fault on DRAM channel {channel} but the subsystem has {} channels",
                self.config.channels
            );
            self.faults.push(ChannelFaultState {
                channel,
                from: event.from,
                until: event.until,
                latency_multiplier,
                recovered: event.until == PERMANENT,
            });
        }
    }

    /// Degraded-mode counters (all zero without DRAM faults).
    pub fn fault_stats(&self) -> DramFaultStats {
        self.fault_stats
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channel_count(&self) -> u32 {
        self.config.channels
    }

    /// The channel index serving physical address `addr`.
    pub fn channel_for(&self, addr: u64) -> u32 {
        ((addr / self.config.interleave_bytes) % u64::from(self.config.channels)) as u32
    }

    /// Cycle at which `channel` next becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn busy_until(&self, channel: u32) -> Cycle {
        self.channels[channel as usize].busy_until()
    }

    /// The channel that will actually serve address `addr` at cycle `now`:
    /// the interleave-mapped home channel on a healthy machine, or a
    /// deterministic re-striping onto the surviving channels while the home
    /// channel's outage window is active.
    ///
    /// Re-striping spreads displaced blocks across the survivors by the same
    /// interleave arithmetic (`alive[(addr / interleave) % alive.len()]`), so
    /// the degraded subsystem keeps its bandwidth-scaling shape. If *every*
    /// channel is down, requests fall back to the home channel (the outage
    /// then just costs queueing, mirroring the DSM fabric's parked-transfer
    /// behavior rather than deadlocking the machine).
    pub fn route(&mut self, now: Cycle, addr: u64) -> u32 {
        let preferred = self.channel_for(addr);
        if self.faults.is_empty() {
            return preferred;
        }
        let t = now.get();
        let down = |faults: &[ChannelFaultState], ch: u32| {
            faults
                .iter()
                .any(|f| f.channel == ch && f.latency_multiplier.is_none() && f.active_at(t))
        };
        if !down(&self.faults, preferred) {
            return preferred;
        }
        let alive: Vec<u32> = (0..self.config.channels)
            .filter(|&c| !down(&self.faults, c))
            .collect();
        if alive.is_empty() {
            return preferred;
        }
        let block = addr / self.config.interleave_bytes;
        let rerouted = alive[(block % alive.len() as u64) as usize];
        self.fault_stats.restriped_accesses += 1;
        rerouted
    }

    /// Performs a transfer of `bytes` on the channel that owns `addr`,
    /// starting no earlier than `now`; returns the completion cycle.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        let channel = self.route(now, addr);
        self.access_on(channel, now, bytes, write)
    }

    /// Performs a transfer of `bytes` on an explicit channel (used by callers
    /// that already routed, e.g. to split a DMA transfer into per-channel
    /// sub-transfers).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn access_on(&mut self, channel: u32, now: Cycle, bytes: u64, write: bool) -> Cycle {
        if self.faults.is_empty() {
            return self.channels[channel as usize].access(now, bytes, write);
        }
        let t = now.get();
        let mut multiplier = 1u64;
        for f in self.faults.iter_mut().filter(|f| f.channel == channel) {
            if let (true, Some(m)) = (f.active_at(t), f.latency_multiplier) {
                multiplier = multiplier.max(u64::from(m));
            }
            // First access served after a finite window closes marks the
            // channel's recovery point.
            if !f.recovered && t >= f.until {
                f.recovered = true;
                self.fault_stats.recovery_cycles += t - f.until;
            }
        }
        self.channels[channel as usize].access_scaled(now, bytes, write, multiplier)
    }

    /// Aggregate statistics summed over every channel.
    pub fn stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for channel in &self.channels {
            total.merge(&channel.stats());
        }
        total
    }

    /// Per-channel statistics, in channel order.
    pub fn per_channel_stats(&self) -> Vec<DramStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }
}

impl NextActivity for MultiChannelDram {
    /// Like the single channel: purely reactive, no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DramConfig {
        DramConfig {
            latency: 10,
            bytes_per_cycle: 8,
            burst_bytes: 32,
            channels: 1,
            interleave_bytes: 256,
        }
    }

    fn dram() -> DramModel {
        DramModel::new(config())
    }

    #[test]
    fn single_access_latency_plus_transfer() {
        let mut d = dram();
        let done = d.access(Cycle::new(0), 32, false);
        assert_eq!(done, Cycle::new(10 + 4));
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes, 32);
    }

    #[test]
    fn small_access_rounds_to_burst() {
        let mut d = dram();
        d.access(Cycle::new(0), 4, true);
        assert_eq!(d.stats().bytes, 32);
        assert_eq!(d.stats().bursts, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn back_to_back_accesses_serialize_on_the_bus() {
        let mut d = dram();
        let first = d.access(Cycle::new(0), 64, false);
        let second = d.access(Cycle::new(0), 64, false);
        assert_eq!(first, Cycle::new(10 + 8));
        // The second transfer's data moves over bus cycles 8..16, but its
        // fixed latency (10) overlapped with the 8-cycle queueing delay, so
        // it completes at max(8, 10) + 8 = 18, not 8 + 10 + 8 = 26.
        assert_eq!(second, Cycle::new(18));
        assert!(d.busy_until() == Cycle::new(16));
    }

    /// Regression test for the latency/queueing double-charge: two requests
    /// issued the same cycle used to each pay the full fixed latency *after*
    /// queueing; now latency overlaps the queue, so the queued request is
    /// delayed only by the bus occupancy it actually waited for.
    #[test]
    fn queued_request_overlaps_latency_with_queueing() {
        let mut d = dram();
        // 32-byte transfers: 4 bus cycles each, 10-cycle latency.
        let first = d.access(Cycle::new(0), 32, false);
        let second = d.access(Cycle::new(0), 32, false);
        assert_eq!(first, Cycle::new(14), "idle channel: latency + transfer");
        // Queued behind 4 bus cycles, but the 10-cycle latency covers that
        // wait entirely: completion stays latency + transfer = 14 instead of
        // the old serial 4 + 10 + 4 = 18.
        assert_eq!(second, Cycle::new(14));
        let third = d.access(Cycle::new(0), 32, false);
        // Bus free at 8; latency floor (10) still dominates: max(8,10)+4.
        assert_eq!(third, Cycle::new(14));
        let fourth = d.access(Cycle::new(0), 32, false);
        // Deep in the queue the bus wait finally dominates: starts at 12,
        // completes at 12 + 4 = 16 (> the latency floor of 14).
        assert_eq!(fourth, Cycle::new(16));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = dram();
        d.access(Cycle::new(0), 32, false);
        let done = d.access(Cycle::new(1000), 32, false);
        assert_eq!(done, Cycle::new(1000 + 10 + 4));
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut d = dram();
        let mut last = Cycle::ZERO;
        for _ in 0..100 {
            last = d.access(Cycle::ZERO, 32, false);
        }
        // 100 bursts × 4 cycles each = 400 cycles of bus occupancy.
        assert!(last.get() >= 400);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = DramModel::new(DramConfig {
            bytes_per_cycle: 0,
            ..config()
        });
    }

    #[test]
    #[should_panic(expected = "at least one DRAM channel")]
    fn zero_channels_rejected() {
        let _ = MultiChannelDram::new(DramConfig {
            channels: 0,
            ..config()
        });
    }

    #[test]
    #[should_panic(expected = "interleave")]
    fn zero_interleave_rejected() {
        let _ = MultiChannelDram::new(DramConfig {
            interleave_bytes: 0,
            ..config()
        });
    }

    #[test]
    fn addresses_stripe_round_robin_across_channels() {
        let d = MultiChannelDram::new(config().with_channels(4));
        assert_eq!(d.channel_for(0), 0);
        assert_eq!(d.channel_for(255), 0);
        assert_eq!(d.channel_for(256), 1);
        assert_eq!(d.channel_for(512), 2);
        assert_eq!(d.channel_for(768), 3);
        assert_eq!(d.channel_for(1024), 0);
    }

    #[test]
    fn distinct_channels_do_not_queue() {
        let mut d = MultiChannelDram::new(config().with_channels(2));
        // 256-byte transfers occupy a bus for 32 cycles — longer than the
        // 10-cycle latency, so queueing is visible in completion times.
        let a = d.access(Cycle::new(0), 0, 256, false);
        let b = d.access(Cycle::new(0), 256, 256, false);
        assert_eq!(a, b, "parallel channels serve same-cycle requests");
        // A third request colliding with channel 0 queues behind `a`'s bus.
        let c = d.access(Cycle::new(0), 512, 256, false);
        assert!(c > a);
    }

    #[test]
    fn aggregate_stats_sum_channels() {
        let mut d = MultiChannelDram::new(config().with_channels(2));
        d.access(Cycle::new(0), 0, 32, false);
        d.access(Cycle::new(0), 256, 64, true);
        let total = d.stats();
        assert_eq!(total.reads, 1);
        assert_eq!(total.writes, 1);
        assert_eq!(total.bytes, 96);
        assert_eq!(total.bursts, 3);
        let per = d.per_channel_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].reads, 1);
        assert_eq!(per[1].writes, 1);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let plan = FaultPlan::default();
        let mut faulty = MultiChannelDram::new(config().with_channels(4));
        faulty.apply_faults(&plan);
        let mut clean = MultiChannelDram::new(config().with_channels(4));
        for i in 0..16u64 {
            let now = Cycle::new(i * 3);
            assert_eq!(
                faulty.access(now, i * 256, 64, i % 2 == 0),
                clean.access(now, i * 256, 64, i % 2 == 0)
            );
        }
        assert_eq!(faulty.fault_stats(), DramFaultStats::default());
        assert_eq!(faulty.stats(), clean.stats());
    }

    #[test]
    fn dead_channel_restripes_onto_survivors() {
        let mut plan = FaultPlan::seeded(7);
        plan = plan.with_event(FaultKind::DramChannelDown { channel: 1 }, 0, 1_000);
        let mut d = MultiChannelDram::new(config().with_channels(4));
        d.apply_faults(&plan);
        // Address 256 homes on channel 1 (down); block 1 re-stripes onto
        // alive[1 % 3] = channel 2.
        assert_eq!(d.route(Cycle::new(10), 256), 2);
        // A healthy home channel routes normally.
        assert_eq!(d.route(Cycle::new(10), 512), 2);
        assert_eq!(d.fault_stats().restriped_accesses, 1);
        // Outside the window the home channel serves again.
        assert_eq!(d.route(Cycle::new(1_000), 256), 1);
        assert_eq!(d.fault_stats().restriped_accesses, 1);
    }

    #[test]
    fn restriping_spreads_displaced_blocks_across_survivors() {
        let mut plan = FaultPlan::seeded(7);
        plan = plan.with_event(FaultKind::DramChannelDown { channel: 0 }, 0, PERMANENT);
        let mut d = MultiChannelDram::new(config().with_channels(4));
        d.apply_faults(&plan);
        // Blocks 0, 4, 8 all home on channel 0; displaced, they stripe over
        // the three survivors instead of piling onto one.
        let a = d.route(Cycle::new(0), 0);
        let b = d.route(Cycle::new(0), 4 * 256);
        let c = d.route(Cycle::new(0), 8 * 256);
        assert_eq!(vec![a, b, c], vec![1, 2, 3]);
    }

    #[test]
    fn all_channels_down_falls_back_to_home_channel() {
        let mut plan = FaultPlan::seeded(7);
        for ch in 0..2 {
            plan = plan.with_event(FaultKind::DramChannelDown { channel: ch }, 0, 100);
        }
        let mut d = MultiChannelDram::new(config().with_channels(2));
        d.apply_faults(&plan);
        assert_eq!(d.route(Cycle::new(5), 256), 1);
        assert_eq!(d.fault_stats().restriped_accesses, 0);
    }

    #[test]
    fn throttled_channel_multiplies_latency() {
        let mut plan = FaultPlan::seeded(7);
        plan = plan.with_event(
            FaultKind::DramChannelThrottle {
                channel: 0,
                latency_multiplier: 3,
            },
            0,
            500,
        );
        let mut d = MultiChannelDram::new(config().with_channels(1));
        d.apply_faults(&plan);
        // Inside the window: 3×10 latency + 4-cycle transfer.
        assert_eq!(d.access(Cycle::new(0), 0, 32, false), Cycle::new(34));
        // Outside the window the latency is healthy again.
        assert_eq!(d.access(Cycle::new(600), 0, 32, false), Cycle::new(614));
    }

    #[test]
    fn recovery_latency_counts_first_access_after_the_window() {
        let mut plan = FaultPlan::seeded(7);
        plan = plan.with_event(FaultKind::DramChannelDown { channel: 0 }, 10, 100);
        let mut d = MultiChannelDram::new(config().with_channels(2));
        d.apply_faults(&plan);
        d.access(Cycle::new(50), 0, 32, false); // re-striped away
        assert_eq!(d.fault_stats().restriped_accesses, 1);
        assert_eq!(d.fault_stats().recovery_cycles, 0);
        d.access(Cycle::new(130), 0, 32, false); // first post-window service
        assert_eq!(d.fault_stats().recovery_cycles, 30);
        d.access(Cycle::new(200), 0, 32, false); // counted once only
        assert_eq!(d.fault_stats().recovery_cycles, 30);
    }

    #[test]
    #[should_panic(expected = "fault on DRAM channel 5")]
    fn fault_on_unknown_channel_is_rejected() {
        let plan =
            FaultPlan::seeded(1).with_event(FaultKind::DramChannelDown { channel: 5 }, 0, 10);
        let mut d = MultiChannelDram::new(config().with_channels(2));
        d.apply_faults(&plan);
    }

    /// A non-32-byte burst configuration counts bursts in `burst_bytes`
    /// units, not hard-coded 32-byte units.
    #[test]
    fn burst_counting_follows_configured_burst_bytes() {
        let mut d = DramModel::new(DramConfig {
            burst_bytes: 64,
            ..config()
        });
        d.access(Cycle::new(0), 96, false);
        assert_eq!(d.stats().bursts, 2, "96 bytes is two 64-byte bursts");
        assert_eq!(d.stats().bytes, 128, "rounded to burst multiples");
    }
}
