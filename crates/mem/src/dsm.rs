//! The inter-cluster distributed-shared-memory (DSM) fabric.
//!
//! Clusters normally interact only through contention on the shared L2/DRAM
//! back-end: a producer cluster's results reach a consumer by a full DRAM
//! round trip. Hopper-style thread-block clusters show that an intra-GPU
//! interconnect with direct SMEM-to-SMEM transfers skips that round trip
//! entirely. This module models that interconnect:
//!
//! * every cluster exposes one **DSM port** (its ingress link) through which
//!   all remote traffic targeting its scratchpad is serialized at
//!   [`DsmConfig::link_bandwidth`] bytes per cycle,
//! * a transfer from cluster `a` to cluster `b` pays a per-hop latency of
//!   [`DsmConfig::remote_latency`] cycles — one hop on an all-to-all
//!   crossbar, the ring distance on a [`DsmTopology::Ring`] — overlapped
//!   with any queueing on `b`'s port (mirroring how the DRAM model overlaps
//!   its fixed latency with channel queueing), and
//! * the fabric keeps the same two-level contention accounting the DRAM
//!   back-end uses: per-requester aggregates plus a per-link breakdown
//!   (mirroring `ChannelContentionStats`), so reports can attribute link
//!   queueing to the cluster that suffered it.
//!
//! The fabric is **disabled by default** ([`DsmConfig::default`]): a
//! disabled fabric refuses traffic, and — crucially for the repo's
//! bit-identity invariant — its mere presence in the machine perturbs no
//! counter of a kernel that never issues remote accesses.

use virgo_sim::fault::{FaultKind, FaultPlan, PERMANENT};
use virgo_sim::{Cycle, NextActivity, StableHash, StableHasher};

/// Bytes per link flit; hop-traversal energy is charged per flit per hop.
pub const DSM_FLIT_BYTES: u64 = 32;

/// How the clusters' DSM ports are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DsmTopology {
    /// A full crossbar: every pair of clusters is one hop apart.
    #[default]
    AllToAll,
    /// A bidirectional ring: the hop count is the shorter ring distance.
    Ring,
}

impl DsmTopology {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DsmTopology::AllToAll => "all-to-all",
            DsmTopology::Ring => "ring",
        }
    }
}

impl std::fmt::Display for DsmTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl StableHash for DsmTopology {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            DsmTopology::AllToAll => 0,
            DsmTopology::Ring => 1,
        });
    }
}

/// Configuration of the inter-cluster DSM fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmConfig {
    /// Whether the fabric accepts traffic at all. Disabled (the default)
    /// keeps the machine bit-identical to the pre-DSM model.
    pub enabled: bool,
    /// Latency of one link hop in cycles (wire + router traversal).
    pub remote_latency: u64,
    /// Bytes one DSM port moves per cycle.
    pub link_bandwidth: u64,
    /// How the ports are wired together.
    pub topology: DsmTopology,
}

impl Default for DsmConfig {
    /// The fabric parameters of [`DsmConfig::enabled_default`], but with the
    /// fabric switched off.
    fn default() -> Self {
        DsmConfig {
            enabled: false,
            ..Self::enabled_default()
        }
    }
}

impl DsmConfig {
    /// An enabled fabric with Hopper-class parameters: a 32-cycle hop over
    /// an all-to-all crossbar, 64 bytes per cycle per cluster port.
    pub fn enabled_default() -> Self {
        DsmConfig {
            enabled: true,
            remote_latency: 32,
            link_bandwidth: 64,
            topology: DsmTopology::AllToAll,
        }
    }

    /// The same parameters on a ring interconnect.
    pub fn enabled_ring() -> Self {
        DsmConfig {
            topology: DsmTopology::Ring,
            ..Self::enabled_default()
        }
    }
}

impl StableHash for DsmConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.enabled.stable_hash(h);
        h.write_u64(self.remote_latency);
        h.write_u64(self.link_bandwidth);
        self.topology.stable_hash(h);
    }
}

/// One requester cluster's traffic over a single DSM ingress link, mirroring
/// the per-channel DRAM breakdown (`ChannelContentionStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmLinkStats {
    /// Remote transfers this cluster pushed through this link.
    pub requests: u64,
    /// Bytes this cluster moved over this link.
    pub bytes: u64,
    /// Exposed queueing cycles this cluster's transfers suffered on this
    /// link (the part of the port backlog the hop latency did not hide).
    pub stall_cycles: u64,
}

impl DsmLinkStats {
    /// Adds the counts of `other` into `self`.
    pub fn merge(&mut self, other: &DsmLinkStats) {
        self.requests += other.requests;
        self.bytes += other.bytes;
        self.stall_cycles += other.stall_cycles;
    }

    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &DsmLinkStats) -> DsmLinkStats {
        DsmLinkStats {
            requests: self.requests.saturating_sub(base.requests),
            bytes: self.bytes.saturating_sub(base.bytes),
            stall_cycles: self.stall_cycles.saturating_sub(base.stall_cycles),
        }
    }
}

/// Per-requester-cluster DSM counters kept by the fabric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterDsmStats {
    /// Remote transfers this cluster issued, summed over links.
    pub requests: u64,
    /// Bytes this cluster moved over the fabric.
    pub bytes: u64,
    /// Exposed link-queueing cycles this cluster's transfers suffered,
    /// summed over links (each transfer occupies exactly one ingress link,
    /// so unlike a split DMA there is no concurrent-sub-transfer max).
    pub stall_cycles: u64,
    /// Flit-hop traversals this cluster's transfers performed
    /// (`hops × ceil(bytes / DSM_FLIT_BYTES)` per transfer) — the energy
    /// model's link-traversal event count.
    pub hop_flits: u64,
    /// Per-ingress-link breakdown, in link (= destination cluster) order.
    pub per_link: Vec<DsmLinkStats>,
}

impl ClusterDsmStats {
    /// An empty counter set sized for a `links`-port fabric.
    pub fn for_links(links: u32) -> Self {
        ClusterDsmStats {
            per_link: vec![DsmLinkStats::default(); links as usize],
            ..Default::default()
        }
    }

    /// Adds the counts of `other` into `self` (used to aggregate requester
    /// slices into a machine-wide view). Both sides must describe the same
    /// fabric geometry.
    pub fn merge(&mut self, other: &ClusterDsmStats) {
        self.requests += other.requests;
        self.bytes += other.bytes;
        self.stall_cycles += other.stall_cycles;
        self.hop_flits += other.hop_flits;
        if self.per_link.len() < other.per_link.len() {
            self.per_link
                .resize(other.per_link.len(), DsmLinkStats::default());
        }
        for (mine, theirs) in self.per_link.iter_mut().zip(&other.per_link) {
            mine.merge(theirs);
        }
    }

    /// The counters accumulated since `base` was captured (saturating; both
    /// sides must describe the same fabric geometry).
    pub fn since(&self, base: &ClusterDsmStats) -> ClusterDsmStats {
        ClusterDsmStats {
            requests: self.requests.saturating_sub(base.requests),
            bytes: self.bytes.saturating_sub(base.bytes),
            stall_cycles: self.stall_cycles.saturating_sub(base.stall_cycles),
            hop_flits: self.hop_flits.saturating_sub(base.hop_flits),
            per_link: self
                .per_link
                .iter()
                .zip(&base.per_link)
                .map(|(now, then)| now.since(then))
                .collect(),
        }
    }
}

/// Degraded-mode counters the fabric keeps while a fault plan is applied
/// (all zero — and untouched — on a healthy fabric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmFaultStats {
    /// Transfers that detoured the long way around the ring because a dead
    /// segment blocked their short path.
    pub rerouted_transfers: u64,
    /// Cycles transfers spent parked waiting for a dead link with no
    /// alternate route (crossbar port outages, or a fully severed ring).
    pub blocked_cycles: u64,
    /// Summed first-use recovery latency: cycles from each finite outage's
    /// end to the first transfer that crossed the recovered link.
    pub recovery_cycles: u64,
}

impl DsmFaultStats {
    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &DsmFaultStats) -> DsmFaultStats {
        DsmFaultStats {
            rerouted_transfers: self
                .rerouted_transfers
                .saturating_sub(base.rerouted_transfers),
            blocked_cycles: self.blocked_cycles.saturating_sub(base.blocked_cycles),
            recovery_cycles: self.recovery_cycles.saturating_sub(base.recovery_cycles),
        }
    }
}

/// One scheduled link fault, resolved against this fabric's geometry.
#[derive(Debug, Clone, Copy)]
struct LinkFaultState {
    /// Ring segment (`link` → `link + 1 mod N`) or crossbar ingress port.
    link: u32,
    from: u64,
    until: u64,
    /// `Some(divisor)` for a slow link, `None` for a dead one.
    slow_divisor: Option<u32>,
    /// Whether the post-outage first use has been accounted (pre-set for
    /// permanent faults, which never recover).
    recovered: bool,
}

impl LinkFaultState {
    fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }

    fn until_clamped(&self) -> u64 {
        self.until.min(virgo_sim::fault::FAR_FUTURE)
    }
}

/// What the router decided for one transfer on a faulted fabric.
struct RouteChoice {
    hops: u64,
    /// Worst bandwidth divisor among the crossed links (1 = full speed).
    divisor: u64,
    /// Earliest start cycle imposed by a dead, un-routable link (0 = none).
    release: u64,
    /// Ring segments the transfer crosses (empty on the crossbar and on
    /// loopback transfers).
    segments: Vec<u32>,
    rerouted: bool,
}

/// Machine-wide fabric aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmFabricStats {
    /// Remote transfers carried by the fabric.
    pub transfers: u64,
    /// Bytes moved cluster-to-cluster.
    pub bytes: u64,
    /// Flit-hop traversals (the per-hop link energy event count).
    pub hop_flits: u64,
    /// Exposed link-queueing cycles, summed over requesters.
    pub stall_cycles: u64,
}

impl DsmFabricStats {
    /// The counters accumulated since `base` was captured (saturating).
    pub fn since(&self, base: &DsmFabricStats) -> DsmFabricStats {
        DsmFabricStats {
            transfers: self.transfers.saturating_sub(base.transfers),
            bytes: self.bytes.saturating_sub(base.bytes),
            hop_flits: self.hop_flits.saturating_sub(base.hop_flits),
            stall_cycles: self.stall_cycles.saturating_sub(base.stall_cycles),
        }
    }
}

/// Everything the fabric has counted, captured at one instant — the
/// fabric-side counterpart of [`crate::BackendAttribution`], captured at job
/// admission and diffed at retirement ([`FabricAttribution::since`]) for
/// per-job attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricAttribution {
    /// Machine-wide fabric aggregates.
    pub stats: DsmFabricStats,
    /// Per-requester-cluster counters, in cluster order.
    pub per_cluster: Vec<ClusterDsmStats>,
    /// Degraded-mode counters.
    pub fault: DsmFaultStats,
}

impl FabricAttribution {
    /// The counters accumulated since `base` was captured (saturating,
    /// element-wise; both snapshots must come from the same fabric).
    pub fn since(&self, base: &FabricAttribution) -> FabricAttribution {
        FabricAttribution {
            stats: self.stats.since(&base.stats),
            per_cluster: self
                .per_cluster
                .iter()
                .zip(&base.per_cluster)
                .map(|(now, then)| now.since(then))
                .collect(),
            fault: self.fault.since(&base.fault),
        }
    }

    /// Machine-wide per-link traffic within this window, summed over
    /// requesters, in link order.
    pub fn per_link_stats(&self) -> Vec<DsmLinkStats> {
        let links = self
            .per_cluster
            .iter()
            .map(|c| c.per_link.len())
            .max()
            .unwrap_or(0);
        let mut out = vec![DsmLinkStats::default(); links];
        for requester in &self.per_cluster {
            for (link, stats) in out.iter_mut().zip(&requester.per_link) {
                link.merge(stats);
            }
        }
        out
    }
}

/// The inter-cluster DSM fabric: one ingress port per cluster, arbitrated
/// like the DRAM channels, with per-requester contention accounting.
///
/// # Example
///
/// ```
/// use virgo_mem::{DsmConfig, DsmFabric};
/// use virgo_sim::Cycle;
///
/// let mut fabric = DsmFabric::new(DsmConfig::enabled_default(), 4);
/// // Cluster 1 pushes a 4 KiB tile into cluster 0's scratchpad.
/// let done = fabric.transfer(Cycle::new(0), 1, 0, 4096);
/// assert!(done.get() >= 32 + 4096 / 64, "hop latency plus streaming time");
/// assert_eq!(fabric.stats().bytes, 4096);
/// assert_eq!(fabric.cluster_stats(1).per_link[0].bytes, 4096);
/// ```
#[derive(Debug, Clone)]
pub struct DsmFabric {
    config: DsmConfig,
    clusters: u32,
    /// Per-ingress-link cycle at which the port is next free.
    link_busy_until: Vec<Cycle>,
    per_cluster: Vec<ClusterDsmStats>,
    stats: DsmFabricStats,
    /// Completion cycles of transfers still in flight, drained by
    /// [`DsmFabric::tick`]; exposes the fabric's event horizon to the
    /// fast-forward driver.
    in_flight: Vec<Cycle>,
    /// Transfers fully delivered (drained from `in_flight`).
    delivered: u64,
    /// Scheduled link faults (empty — the zero-cost path — by default).
    faults: Vec<LinkFaultState>,
    fault_stats: DsmFaultStats,
}

impl DsmFabric {
    /// Creates an idle fabric with one port per cluster.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero, or if an *enabled* configuration has a
    /// zero link bandwidth.
    pub fn new(config: DsmConfig, clusters: u32) -> Self {
        assert!(clusters > 0, "the fabric links at least one cluster");
        assert!(
            !config.enabled || config.link_bandwidth > 0,
            "an enabled DSM fabric needs non-zero link bandwidth"
        );
        DsmFabric {
            config,
            clusters,
            link_busy_until: vec![Cycle::ZERO; clusters as usize],
            per_cluster: vec![ClusterDsmStats::for_links(clusters); clusters as usize],
            stats: DsmFabricStats::default(),
            in_flight: Vec::new(),
            delivered: 0,
            faults: Vec::new(),
            fault_stats: DsmFaultStats::default(),
        }
    }

    /// Installs the DSM link faults scheduled in `plan`. A plan without DSM
    /// events leaves the fabric on its zero-cost healthy path.
    ///
    /// # Panics
    ///
    /// Panics if a fault names a link outside the fabric.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for event in &plan.events {
            let (link, slow_divisor) = match event.kind {
                FaultKind::DsmLinkDown { link } => (link, None),
                FaultKind::DsmLinkSlow {
                    link,
                    bandwidth_divisor,
                } => (link, Some(bandwidth_divisor)),
                _ => continue,
            };
            assert!(
                link < self.clusters,
                "DSM fault on link {link} outside the {}-link fabric",
                self.clusters
            );
            self.faults.push(LinkFaultState {
                link,
                from: event.from,
                until: event.until,
                slow_divisor,
                recovered: event.until == PERMANENT,
            });
        }
    }

    /// The degraded-mode counters (all zero on a healthy fabric).
    pub fn fault_stats(&self) -> DsmFaultStats {
        self.fault_stats
    }

    /// The configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.config
    }

    /// True when the fabric accepts remote traffic.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Number of cluster ports (= links) the fabric connects.
    pub fn links(&self) -> u32 {
        self.clusters
    }

    /// Machine-wide aggregates.
    pub fn stats(&self) -> DsmFabricStats {
        self.stats
    }

    /// Counters for one requester cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_stats(&self, cluster: u32) -> ClusterDsmStats {
        self.per_cluster[cluster as usize].clone()
    }

    /// Counters for every requester cluster, in cluster order.
    pub fn per_cluster_stats(&self) -> &[ClusterDsmStats] {
        &self.per_cluster
    }

    /// Captures every counter the fabric keeps, for windowed per-job
    /// attribution (see [`FabricAttribution`]).
    pub fn attribution(&self) -> FabricAttribution {
        FabricAttribution {
            stats: self.stats,
            per_cluster: self.per_cluster.clone(),
            fault: self.fault_stats,
        }
    }

    /// Machine-wide per-link traffic, summed over requesters, in link order.
    pub fn per_link_stats(&self) -> Vec<DsmLinkStats> {
        let mut links = vec![DsmLinkStats::default(); self.clusters as usize];
        for requester in &self.per_cluster {
            for (link, stats) in links.iter_mut().zip(&requester.per_link) {
                link.merge(stats);
            }
        }
        links
    }

    /// Traffic arriving at `cluster`'s ingress port, summed over requesters
    /// — the per-owner attribution of [`DsmFabric::per_link_stats`]. A
    /// reduction schedule whose ingress bytes concentrate on one cluster is
    /// serialized on that port no matter how many links the fabric has.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn ingress_stats(&self, cluster: u32) -> DsmLinkStats {
        assert!(
            cluster < self.clusters,
            "cluster {cluster} outside the {}-link fabric",
            self.clusters
        );
        let mut total = DsmLinkStats::default();
        for requester in &self.per_cluster {
            total.merge(&requester.per_link[cluster as usize]);
        }
        total
    }

    /// Transfers accepted but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Transfers fully delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Hop count between two clusters under the configured topology (at
    /// least one — a loopback transfer still traverses the port).
    pub fn hops(&self, from: u32, to: u32) -> u64 {
        let distance = match self.config.topology {
            DsmTopology::AllToAll => 1,
            DsmTopology::Ring => {
                let n = u64::from(self.clusters);
                let d = u64::from(from.abs_diff(to)) % n;
                d.min(n - d)
            }
        };
        distance.max(1)
    }

    /// Resolves one transfer's route against the active link faults at
    /// cycle `t`, charging the reroute counter and the first-use recovery
    /// latency of any crossed link whose outage has ended.
    ///
    /// On the ring the transfer prefers the shorter direction and detours
    /// the long way only when a dead segment blocks the short path and the
    /// long one is clear; if both directions are severed it parks until the
    /// short path's last blocking outage clears. On the crossbar there is no
    /// alternate route, so a dead ingress port always parks the transfer.
    fn fault_route(&mut self, t: u64, from: u32, to: u32) -> RouteChoice {
        let mut route = match self.config.topology {
            DsmTopology::AllToAll => {
                let mut divisor = 1u64;
                let mut release = 0u64;
                for f in &self.faults {
                    if f.link != to || !f.active_at(t) {
                        continue;
                    }
                    match f.slow_divisor {
                        Some(d) => divisor = divisor.max(u64::from(d)),
                        None => release = release.max(f.until_clamped()),
                    }
                }
                RouteChoice {
                    hops: 1,
                    divisor,
                    release,
                    segments: vec![to],
                    rerouted: false,
                }
            }
            DsmTopology::Ring => {
                let n = self.clusters;
                let d_cw = (to + n - from) % n;
                if d_cw == 0 {
                    // Loopback stays inside the cluster's own port and
                    // crosses no inter-cluster segment.
                    return RouteChoice {
                        hops: 1,
                        divisor: 1,
                        release: 0,
                        segments: Vec::new(),
                        rerouted: false,
                    };
                }
                let cw: Vec<u32> = (0..d_cw).map(|i| (from + i) % n).collect();
                let ccw: Vec<u32> = (0..(n - d_cw)).map(|i| (to + i) % n).collect();
                let eval = |segments: &[u32]| {
                    let mut blocked = false;
                    let mut divisor = 1u64;
                    let mut clear_at = 0u64;
                    for f in &self.faults {
                        if !segments.contains(&f.link) || !f.active_at(t) {
                            continue;
                        }
                        match f.slow_divisor {
                            Some(d) => divisor = divisor.max(u64::from(d)),
                            None => {
                                blocked = true;
                                clear_at = clear_at.max(f.until_clamped());
                            }
                        }
                    }
                    (blocked, divisor, clear_at)
                };
                let cw_state = eval(&cw);
                let ccw_state = eval(&ccw);
                let (short, short_state, long, long_state) = if cw.len() <= ccw.len() {
                    (cw, cw_state, ccw, ccw_state)
                } else {
                    (ccw, ccw_state, cw, cw_state)
                };
                if short_state.0 && !long_state.0 {
                    RouteChoice {
                        hops: long.len() as u64,
                        divisor: long_state.1,
                        release: 0,
                        segments: long,
                        rerouted: true,
                    }
                } else {
                    RouteChoice {
                        hops: (short.len() as u64).max(1),
                        divisor: short_state.1,
                        release: if short_state.0 { short_state.2 } else { 0 },
                        segments: short,
                        rerouted: false,
                    }
                }
            }
        };
        if route.rerouted {
            self.fault_stats.rerouted_transfers += 1;
        }
        // First use after a finite outage: charge the recovery latency of
        // every crossed link whose window has ended.
        let mut recovered = 0u64;
        for f in &mut self.faults {
            if !f.recovered && t >= f.until && route.segments.contains(&f.link) {
                recovered += t - f.until;
                f.recovered = true;
            }
        }
        self.fault_stats.recovery_cycles += recovered;
        route.divisor = route.divisor.max(1);
        route
    }

    /// Carries `bytes` from `from`'s scratchpad to `to`'s, presented at
    /// `now`; returns the delivery cycle.
    ///
    /// The transfer pays `hops × remote_latency` of wire/router traversal
    /// overlapped with any backlog on `to`'s ingress port, then streams at
    /// the link bandwidth; only the backlog the latency does not hide is
    /// charged as an exposed stall (the same rule the DRAM channels use, so
    /// the two contention metrics are comparable).
    ///
    /// # Panics
    ///
    /// Panics if the fabric is disabled (a kernel issued remote traffic on a
    /// machine without DSM — a kernel-generation bug, never a data-dependent
    /// condition), or if either cluster is out of range.
    pub fn transfer(&mut self, now: Cycle, from: u32, to: u32, bytes: u64) -> Cycle {
        assert!(
            self.config.enabled,
            "kernel issued inter-cluster DSM traffic but the DSM fabric is disabled \
             (enable GpuConfig::dsm or use the DRAM-path kernel variant)"
        );
        assert!(
            from < self.clusters && to < self.clusters,
            "DSM transfer {from} -> {to} outside the {}-cluster fabric",
            self.clusters
        );
        if bytes == 0 {
            return now;
        }
        let (hops, divisor, release) = if self.faults.is_empty() {
            (self.hops(from, to), 1, 0)
        } else {
            let route = self.fault_route(now.get(), from, to);
            (route.hops, route.divisor, route.release)
        };
        let latency = hops * self.config.remote_latency;
        let occupy = bytes.div_ceil(self.config.link_bandwidth).max(1) * divisor;
        // A dead link with no alternate route parks the transfer until the
        // outage clears; the park time then also shows up as exposed stall.
        let busy = self.link_busy_until[to as usize].max(Cycle::new(release));
        self.fault_stats.blocked_cycles += release.saturating_sub(now.get());
        // Exposed queueing: the port backlog beyond what the hop latency
        // hides — exactly the cycles by which delivery slips versus an idle
        // link.
        let stall = busy.get().saturating_sub(now.plus(latency).get());
        let start = now.max(busy);
        self.link_busy_until[to as usize] = start.plus(occupy);
        let done = start.max(now.plus(latency)).plus(occupy);

        let flits = bytes.div_ceil(DSM_FLIT_BYTES).max(1);
        let requester = &mut self.per_cluster[from as usize];
        requester.requests += 1;
        requester.bytes += bytes;
        requester.stall_cycles += stall;
        requester.hop_flits += hops * flits;
        let link = &mut requester.per_link[to as usize];
        link.requests += 1;
        link.bytes += bytes;
        link.stall_cycles += stall;

        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.hop_flits += hops * flits;
        self.stats.stall_cycles += stall;
        self.in_flight.push(done);
        done
    }

    /// Serves one warp's SIMT-level remote load/store (issued through the
    /// remote address window): the same link path as a bulk transfer, sized
    /// to the warp's lane footprint.
    pub fn remote_simt_access(&mut self, now: Cycle, from: u32, to: u32, bytes: u64) -> Cycle {
        self.transfer(now, from, to, bytes)
    }

    /// Retires transfers whose delivery cycle has been reached. Called once
    /// per simulated cycle by the driver (and once at each fast-forward
    /// target, which the horizon below makes sufficient: nothing retires
    /// strictly inside a skipped window).
    pub fn tick(&mut self, now: Cycle) {
        if self.in_flight.is_empty() {
            return;
        }
        let before = self.in_flight.len();
        self.in_flight.retain(|&done| done > now);
        self.delivered += (before - self.in_flight.len()) as u64;
    }

    /// True when no transfer is in flight.
    pub fn quiescent(&self) -> bool {
        self.in_flight.is_empty()
    }
}

impl NextActivity for DsmFabric {
    /// The fabric next acts when its earliest in-flight transfer delivers;
    /// an idle fabric contributes no self-driven events.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.in_flight.iter().copied().min().map(|t| t.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(clusters: u32) -> DsmFabric {
        DsmFabric::new(DsmConfig::enabled_default(), clusters)
    }

    #[test]
    fn disabled_is_the_default() {
        let config = DsmConfig::default();
        assert!(!config.enabled);
        // The parameters still describe the enabled preset, so flipping the
        // switch is the only delta between the A/B machines.
        assert_eq!(
            DsmConfig {
                enabled: true,
                ..config
            },
            DsmConfig::enabled_default()
        );
    }

    #[test]
    fn transfer_pays_latency_and_streaming_time() {
        let mut f = fabric(2);
        let done = f.transfer(Cycle::new(0), 1, 0, 4096);
        // 32-cycle hop + 4096/64 = 64 streaming cycles.
        assert_eq!(done, Cycle::new(32 + 64));
        assert_eq!(f.stats().transfers, 1);
        assert_eq!(f.stats().bytes, 4096);
        assert_eq!(f.stats().hop_flits, 4096 / DSM_FLIT_BYTES);
        assert_eq!(f.cluster_stats(1).per_link[0].bytes, 4096);
        assert_eq!(f.cluster_stats(1).per_link[1].bytes, 0);
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_ingress_link() {
        let mut f = fabric(4);
        let first = f.transfer(Cycle::new(0), 1, 0, 4096);
        // A second producer targeting the same port queues behind the first;
        // the hop latency hides part of the wait, the rest is exposed.
        let second = f.transfer(Cycle::new(0), 2, 0, 4096);
        assert!(second > first);
        assert_eq!(f.cluster_stats(1).stall_cycles, 0);
        let queued = f.cluster_stats(2);
        assert_eq!(queued.stall_cycles, 64 - 32, "backlog minus hidden latency");
        assert_eq!(queued.per_link[0].stall_cycles, queued.stall_cycles);
        // A transfer to a *different* port proceeds unqueued.
        let elsewhere = f.transfer(Cycle::new(0), 1, 3, 4096);
        assert_eq!(elsewhere, first);
    }

    #[test]
    fn ring_topology_pays_distance_hops() {
        let f = DsmFabric::new(DsmConfig::enabled_ring(), 8);
        assert_eq!(f.hops(0, 1), 1);
        assert_eq!(f.hops(0, 4), 4);
        assert_eq!(f.hops(0, 7), 1, "the ring wraps");
        assert_eq!(f.hops(3, 3), 1, "loopback still crosses the port");
        let all = fabric(8);
        assert_eq!(all.hops(0, 7), 1, "crossbar is single-hop");
    }

    #[test]
    fn tick_drains_in_flight_transfers() {
        let mut f = fabric(2);
        let done = f.transfer(Cycle::new(0), 0, 1, 128);
        assert_eq!(f.in_flight(), 1);
        assert_eq!(f.next_activity(Cycle::new(0)), Some(done));
        f.tick(done - Cycle::new(1));
        assert_eq!(f.in_flight(), 1, "not delivered yet");
        f.tick(done);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.delivered(), 1);
        assert!(f.quiescent());
        assert_eq!(f.next_activity(done), None);
    }

    #[test]
    fn per_link_totals_conserve_bytes() {
        let mut f = fabric(4);
        let mut submitted = 0u64;
        for (from, to, bytes) in [(0u32, 1u32, 100u64), (1, 0, 200), (2, 1, 300), (3, 3, 400)] {
            f.transfer(Cycle::new(0), from, to, bytes);
            submitted += bytes;
        }
        assert_eq!(f.stats().bytes, submitted);
        let per_link: u64 = f.per_link_stats().iter().map(|l| l.bytes).sum();
        assert_eq!(per_link, submitted);
        let per_cluster: u64 = f.per_cluster_stats().iter().map(|c| c.bytes).sum();
        assert_eq!(per_cluster, submitted);
    }

    #[test]
    fn ingress_stats_attribute_traffic_to_the_destination() {
        let mut f = fabric(4);
        // Two requesters target port 0, one targets port 2.
        f.transfer(Cycle::new(0), 1, 0, 100);
        f.transfer(Cycle::new(0), 3, 0, 200);
        f.transfer(Cycle::new(0), 1, 2, 400);
        let port0 = f.ingress_stats(0);
        assert_eq!(port0.requests, 2);
        assert_eq!(port0.bytes, 300);
        assert_eq!(f.ingress_stats(1), DsmLinkStats::default());
        assert_eq!(f.ingress_stats(2).bytes, 400);
        // The per-owner view is the transpose of per_link_stats: index c of
        // the machine-wide per-link vector is exactly ingress_stats(c).
        for (c, link) in f.per_link_stats().iter().enumerate() {
            assert_eq!(*link, f.ingress_stats(c as u32));
        }
    }

    #[test]
    fn zero_byte_transfer_is_a_noop() {
        let mut f = fabric(2);
        assert_eq!(f.transfer(Cycle::new(9), 0, 1, 0), Cycle::new(9));
        assert_eq!(f.stats().transfers, 0);
        assert!(f.quiescent());
    }

    #[test]
    #[should_panic(expected = "DSM fabric is disabled")]
    fn disabled_fabric_refuses_traffic() {
        let mut f = DsmFabric::new(DsmConfig::default(), 2);
        let _ = f.transfer(Cycle::new(0), 0, 1, 64);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_cluster_panics() {
        let mut f = fabric(2);
        let _ = f.transfer(Cycle::new(0), 0, 5, 64);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let mut healthy = fabric(4);
        let mut faulted = fabric(4);
        faulted.apply_faults(&FaultPlan::default());
        for (from, to, bytes) in [(1u32, 0u32, 4096u64), (2, 0, 4096), (1, 3, 512)] {
            assert_eq!(
                healthy.transfer(Cycle::new(0), from, to, bytes),
                faulted.transfer(Cycle::new(0), from, to, bytes),
            );
        }
        assert_eq!(healthy.stats(), faulted.stats());
        assert_eq!(faulted.fault_stats(), DsmFaultStats::default());
    }

    #[test]
    fn dead_ring_segment_reroutes_the_long_way() {
        let plan =
            FaultPlan::seeded(0).with_event(FaultKind::DsmLinkDown { link: 1 }, 0, PERMANENT);
        let mut f = DsmFabric::new(DsmConfig::enabled_ring(), 8);
        f.apply_faults(&plan);
        // 1 -> 2 normally crosses exactly segment 1; with it dead the
        // transfer takes the 7-hop detour the other way around.
        let done = f.transfer(Cycle::new(0), 1, 2, 64);
        assert_eq!(done, Cycle::new(7 * 32 + 1));
        assert_eq!(f.fault_stats().rerouted_transfers, 1);
        assert_eq!(f.fault_stats().blocked_cycles, 0);
        // The extra hops are charged as extra flit traversals (energy).
        assert_eq!(f.stats().hop_flits, 7 * 2);
        // A path not crossing segment 1 is untouched.
        let clear = f.transfer(Cycle::new(0), 2, 3, 64);
        assert_eq!(clear, Cycle::new(32 + 1));
        assert_eq!(f.fault_stats().rerouted_transfers, 1);
    }

    #[test]
    fn ring_reroute_respects_the_fault_window() {
        let plan = FaultPlan::seeded(0).with_event(FaultKind::DsmLinkDown { link: 1 }, 100, 200);
        let mut f = DsmFabric::new(DsmConfig::enabled_ring(), 8);
        f.apply_faults(&plan);
        // Before the window: the short path is healthy.
        assert_eq!(f.transfer(Cycle::new(0), 1, 2, 64), Cycle::new(32 + 1));
        // Inside the window: detour.
        let rerouted = f.transfer(Cycle::new(150), 1, 2, 64);
        assert_eq!(rerouted, Cycle::new(150 + 7 * 32 + 1));
        // After the window: healthy again, and the first use charges the
        // recovery latency (250 - 200 cycles).
        assert_eq!(f.transfer(Cycle::new(250), 1, 2, 64), Cycle::new(250 + 33));
        assert_eq!(f.fault_stats().rerouted_transfers, 1);
        assert_eq!(f.fault_stats().recovery_cycles, 50);
    }

    #[test]
    fn dead_crossbar_port_parks_until_recovery() {
        let plan = FaultPlan::seeded(0).with_event(FaultKind::DsmLinkDown { link: 0 }, 0, 1_000);
        let mut f = fabric(4);
        f.apply_faults(&plan);
        // The crossbar has no detour: the transfer waits out the outage.
        let done = f.transfer(Cycle::new(100), 1, 0, 64);
        assert_eq!(done, Cycle::new(1_000 + 1), "parked to the window end");
        assert_eq!(f.fault_stats().blocked_cycles, 900);
        // Ports other than 0 are unaffected.
        assert_eq!(f.transfer(Cycle::new(100), 1, 2, 64), Cycle::new(100 + 33));
    }

    #[test]
    fn slow_link_divides_bandwidth() {
        let plan = FaultPlan::seeded(0).with_event(
            FaultKind::DsmLinkSlow {
                link: 0,
                bandwidth_divisor: 4,
            },
            0,
            PERMANENT,
        );
        let mut f = fabric(2);
        f.apply_faults(&plan);
        // 4096 bytes at 64 B/cyc = 64 streaming cycles, 4x under the fault.
        let done = f.transfer(Cycle::new(0), 1, 0, 4096);
        assert_eq!(done, Cycle::new(32 + 4 * 64));
        assert_eq!(f.fault_stats().rerouted_transfers, 0);
    }

    #[test]
    fn fully_severed_ring_parks_on_the_short_path() {
        // Both directions between 0 and 1 are cut: segment 0 (0->1) and the
        // rest of the ring via segment 1 (1->2, i.e. the detour for 0->1
        // traffic in a 3-ring goes 0->2->1 over segments... the complement).
        let plan = FaultPlan::seeded(0)
            .with_event(FaultKind::DsmLinkDown { link: 0 }, 0, 500)
            .with_event(FaultKind::DsmLinkDown { link: 1 }, 0, 400)
            .with_event(FaultKind::DsmLinkDown { link: 2 }, 0, 400);
        let mut f = DsmFabric::new(DsmConfig::enabled_ring(), 3);
        f.apply_faults(&plan);
        let done = f.transfer(Cycle::new(10), 0, 1, 64);
        // Short path = segment 0, blocked until 500; both detour segments
        // are dead too, so the transfer parks until its own path clears.
        // The hop latency overlaps the park (the same rule that overlaps it
        // with port backlog), so delivery is release + streaming.
        assert_eq!(done, Cycle::new(500 + 1));
        assert!(f.fault_stats().blocked_cycles >= 490);
        assert_eq!(f.fault_stats().rerouted_transfers, 0);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn fault_on_unknown_link_is_rejected() {
        let plan =
            FaultPlan::seeded(0).with_event(FaultKind::DsmLinkDown { link: 9 }, 0, PERMANENT);
        let mut f = fabric(2);
        f.apply_faults(&plan);
    }
}
